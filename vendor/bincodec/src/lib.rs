//! Vendored, dependency-free serde-style binary codec.
//!
//! The container builds offline, so this crate stands in for the usual
//! `serde + bincode` pair with the API subset dynspread needs: a pair of
//! traits ([`Encode`], [`Decode`]) over a fixed, deterministic wire
//! format. The format is *not* self-describing — both sides must agree on
//! the type — which is exactly the property the session wire envelope
//! wants: equal values encode to equal bytes, so seeded replays stay
//! byte-identical through the serialization boundary.
//!
//! Format rules:
//!
//! * fixed-width integers are little-endian (`usize` travels as `u64`);
//! * `bool` is one byte (`0`/`1`; anything else is a decode error);
//! * `Option<T>` is a presence byte followed by the value;
//! * `Vec<T>` / `String` are a `u32` element count followed by the
//!   elements (counts beyond `u32::MAX` panic on encode);
//! * enums (implemented downstream) conventionally start with a tag byte.
//!
//! Decoding is total: malformed input yields a [`DecodeError`], never a
//! panic, and [`from_bytes`] rejects trailing garbage so envelope length
//! mismatches are caught at the boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Why a byte slice failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte had no corresponding variant.
    InvalidTag(u8),
    /// A `bool` byte was neither `0` nor `1`.
    InvalidBool(u8),
    /// A length prefix or integer did not fit the target type.
    InvalidLength,
    /// [`from_bytes`] decoded a value but bytes were left over.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "input ended mid-value"),
            DecodeError::InvalidTag(t) => write!(f, "invalid enum tag {t}"),
            DecodeError::InvalidBool(b) => write!(f, "invalid bool byte {b}"),
            DecodeError::InvalidLength => write!(f, "length out of range"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over the bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
}

/// Serializes a value into the deterministic wire format.
pub trait Encode {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Deserializes a value from the deterministic wire format.
pub trait Decode: Sized {
    /// Reads one value from `r`, advancing the cursor past it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encodes `value` into a fresh byte vector.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes exactly one value spanning all of `bytes`.
///
/// Trailing bytes are an error: the session envelope carries one payload
/// per message, so leftover input means a framing bug, not padding.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(value)
}

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        usize::try_from(u64::decode(r)?).map_err(|_| DecodeError::InvalidLength)
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::InvalidBool(other)),
        }
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(DecodeError::InvalidTag(other)),
        }
    }
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    let len = u32::try_from(len).expect("collection length exceeds u32 wire limit");
    len.encode(out);
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    Ok(u32::decode(r)? as usize)
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(r)?;
        // Guard against hostile prefixes: each element consumes ≥ 1 byte,
        // so a length beyond the remaining input is bogus up front.
        if len > r.remaining() {
            return Err(DecodeError::InvalidLength);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidLength)
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(0xAB_u8);
        roundtrip(0xBEEF_u16);
        roundtrip(0xDEAD_BEEF_u32);
        roundtrip(u64::MAX);
        roundtrip(-7i32);
        roundtrip(usize::MAX >> 1);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(Option::<u32>::None);
        roundtrip(Some(42u32));
        roundtrip(vec![1u16, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip("hello".to_string());
        roundtrip((7u8, vec![Some(1u32), None]));
    }

    #[test]
    fn encoding_is_deterministic_and_little_endian() {
        assert_eq!(to_bytes(&0x0102_0304_u32), vec![4, 3, 2, 1]);
        assert_eq!(to_bytes(&vec![1u8, 2]), vec![2, 0, 0, 0, 1, 2]);
        assert_eq!(to_bytes(&Some(1u8)), vec![1, 1]);
        let a = to_bytes(&(9u64, "x".to_string()));
        let b = to_bytes(&(9u64, "x".to_string()));
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        assert_eq!(from_bytes::<u32>(&[1, 2]), Err(DecodeError::UnexpectedEof));
        assert_eq!(from_bytes::<bool>(&[9]), Err(DecodeError::InvalidBool(9)));
        assert_eq!(
            from_bytes::<Option<u8>>(&[7, 0]),
            Err(DecodeError::InvalidTag(7))
        );
        // Length prefix claims more elements than bytes remain.
        assert_eq!(
            from_bytes::<Vec<u8>>(&[255, 0, 0, 0, 1]),
            Err(DecodeError::InvalidLength)
        );
        // Trailing garbage after a complete value.
        assert_eq!(
            from_bytes::<u8>(&[1, 2]),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn usize_travels_as_u64() {
        let bytes = to_bytes(&3usize);
        assert_eq!(bytes.len(), 8);
        assert_eq!(from_bytes::<usize>(&bytes).unwrap(), 3);
    }
}
