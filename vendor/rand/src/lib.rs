//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements — from scratch, dependency-free — exactly the API subset the
//! dynspread workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (half-open and inclusive integer
//!   and float ranges) and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   SplitMix64,
//! * [`seq::SliceRandom`] with `choose` and `shuffle`,
//! * [`distributions::Distribution`] with [`distributions::Geometric`]
//!   (inverse-CDF sampler; powers the skip-sampling adversaries).
//!
//! Determinism contract: for a fixed seed the generated stream is stable
//! across runs and platforms (the workspace's reproducibility tests rely on
//! this). The streams differ from upstream `rand`'s `StdRng` (ChaCha12);
//! only self-consistency is promised, which is all the simulator needs.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: distributions::uniform::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 uniform mantissa bits, exactly representable in f64.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface; only the `u64` convenience seeder is provided.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform-range sampling machinery (mirrors `rand::distributions::uniform`).
pub mod distributions {
    use crate::RngCore;

    /// A distribution that can be sampled with any RNG (mirrors
    /// `rand::distributions::Distribution`).
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The geometric distribution over `{0, 1, 2, …}`: the number of
    /// failures before the first success in independent trials with success
    /// probability `p` (mirrors `rand_distr::Geometric`).
    ///
    /// The sampler inverts the CDF (`⌊ln(1−U)/ln(1−p)⌋`), so one uniform
    /// draw yields one sample regardless of the skip length — this is what
    /// makes skip-sampling a Bernoulli process over `N` items cost
    /// `O(expected hits)` instead of `O(N)` coin flips.
    #[derive(Clone, Copy, Debug)]
    pub struct Geometric {
        /// Precomputed `ln(1 − p)`; `0.0` encodes the degenerate `p = 1`.
        ln_q: f64,
    }

    impl Geometric {
        /// Creates a geometric distribution with success probability `p`.
        ///
        /// # Panics
        ///
        /// Panics unless `0 < p ≤ 1` (a zero success probability never
        /// terminates; callers gate that case themselves).
        pub fn new(p: f64) -> Self {
            assert!(p > 0.0 && p <= 1.0, "Geometric: p = {p} must be in (0, 1]");
            // ln_1p keeps tiny p exact (1.0 - p would round to 1.0 below
            // ~1e-16, silently turning "almost never" into "always");
            // p = 1 yields −∞, handled explicitly in `sample`.
            Geometric { ln_q: (-p).ln_1p() }
        }
    }

    impl Distribution<u64> for Geometric {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            if self.ln_q == f64::NEG_INFINITY {
                return 0; // p = 1: success on the first trial, always.
            }
            // U uniform in [0, 1); 1 − U in (0, 1] keeps the log finite.
            let u = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
            let s = ((1.0 - u).ln() / self.ln_q).floor();
            if s >= u64::MAX as f64 {
                u64::MAX
            } else {
                s as u64
            }
        }
    }

    /// Range types that [`crate::Rng::gen_range`] accepts.
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Samples one value; panics on an empty range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Multiply-shift bounded uniform integer in `[0, span)`.
        #[inline]
        fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
            debug_assert!(span > 0);
            (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start + bounded(rng, span) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full u64 domain.
                            return rng.next_u64() as $t;
                        }
                        lo + bounded(rng, span) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize);

        macro_rules! impl_signed_range {
            ($($t:ty => $u:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                        self.start.wrapping_add(bounded(rng, span) as $t)
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                        if span == 0 {
                            return rng.next_u64() as $t;
                        }
                        lo.wrapping_add(bounded(rng, span) as $t)
                    }
                }
            )*};
        }
        impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<f32> for Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32);
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    ///
    /// Small, fast, and deterministic; not cryptographically secure (neither
    /// is the upstream `StdRng` contract relied upon anywhere here).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Geometric};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..20u32);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..=5usize);
            assert!(y <= 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn geometric_p_one_is_always_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = Geometric::new(1.0);
        for _ in 0..100 {
            assert_eq!(g.sample(&mut rng), 0);
        }
    }

    #[test]
    fn geometric_mean_matches_theory() {
        // E[Geometric(p)] = (1 − p)/p; p = 0.2 → mean 4.
        let mut rng = StdRng::seed_from_u64(19);
        let g = Geometric::new(0.2);
        let total: u64 = (0..50_000).map(|_| g.sample(&mut rng)).sum();
        let mean = total as f64 / 50_000.0;
        assert!((3.8..4.2).contains(&mean), "mean {mean} far from 4");
    }

    #[test]
    fn geometric_skip_sampling_matches_bernoulli_rate() {
        // Skip-sampling a Bernoulli(p) process over N items must hit
        // ~p·N items.
        let mut rng = StdRng::seed_from_u64(23);
        let p = 0.03;
        let n = 100_000u64;
        let g = Geometric::new(p);
        let mut hits = 0u64;
        let mut i = g.sample(&mut rng);
        while i < n {
            hits += 1;
            i += 1 + g.sample(&mut rng);
        }
        let expected = p * n as f64;
        assert!(
            (hits as f64 - expected).abs() < 0.15 * expected,
            "hits {hits} far from {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn geometric_rejects_zero_p() {
        let _ = Geometric::new(0.0);
    }

    #[test]
    fn geometric_tiny_p_is_not_degenerate() {
        // 1.0 - 5e-17 rounds to 1.0, so a naive ln(1 - p) would collapse
        // tiny p to the p = 1 fast path; ln_1p must keep it huge instead.
        let mut rng = StdRng::seed_from_u64(29);
        let g = Geometric::new(5e-17);
        for _ in 0..50 {
            assert!(g.sample(&mut rng) > 1_000_000, "tiny p must skip far");
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = [1u8, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
