//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the API subset the dynspread benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model (simpler than upstream, adequate for trend tracking):
//! each benchmark runs one warm-up batch, then `sample_size` timed samples;
//! the **median** per-iteration time is reported. Set the environment
//! variable `DYNSPREAD_BENCH_JSON=<path>` to also append every result as a
//! JSON object (one per line) to that file — the workspace's
//! `BENCH_core.json` generator consumes this.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::Instant;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// How `iter_batched` sizes its batches (API-compatible subset).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// One setup value per timed invocation.
    PerIteration,
    /// Small batches (treated as `PerIteration` in this shim).
    SmallInput,
    /// Large batches (treated as `PerIteration` in this shim).
    LargeInput,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    sample_size: usize,
    result_ns: &'a mut Option<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, storing the median per-iteration nanoseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: aim for samples of ≥ ~1ms or 1 iter.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        let iters_per_sample = (1_000_000 / once).clamp(1, 10_000) as usize;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        *self.result_ns = Some(samples[samples.len() / 2]);
    }

    /// Times `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup())); // warm-up
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        *self.result_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one(label: String, sample_size: usize, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut result = None;
    let mut b = Bencher {
        sample_size,
        result_ns: &mut result,
    };
    f(&mut b);
    let ns = result.unwrap_or(f64::NAN);
    println!("bench: {label:<50} median {:>12.0} ns/iter", ns);
    if let Ok(path) = std::env::var("DYNSPREAD_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(file, "{{\"bench\":\"{label}\",\"median_ns\":{ns:.1}}}");
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, mut f: F) {
        run_one(name.to_string(), self.sample_size, &mut f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(label, self.criterion.sample_size, &mut f);
        self
    }

    /// Ends the group (formatting no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); ignore them.
            $( $group(); )+
        }
    };
}
