//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of proptest the dynspread test suites use: the [`proptest!`] macro,
//! `prop_assert*` macros, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], [`strategy::Just`], numeric-range strategies, and the
//! `prop::{bool, option, collection}` modules.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its case index and the fixed
//!   per-test seed; re-running the test deterministically reproduces it.
//! * **Deterministic.** Each generated case is derived from a seed hashed
//!   from the test function's name, so failures are stable across runs.

#![forbid(unsafe_code)]

pub use rand::rngs::StdRng;

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking; a
    /// strategy is simply a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter: predicate too restrictive ({})", self.whence);
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies — the engine of the `prop_oneof!` macro.
    pub struct OneOf<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Builds a [`OneOf`] from boxed arms (used by the `prop_oneof!` macro).
    pub fn one_of<T>(arms: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }

    /// Boxes a strategy, erasing its concrete type (used by the `prop_oneof!` macro).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Runner configuration (`cases` only).
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; we keep CI latency modest.
            ProptestConfig { cases: 64 }
        }
    }
}

/// The `prop::*` strategy namespace.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A uniformly random `bool`.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The canonical `bool` strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen_bool(0.5)
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// See [`of`].
        pub struct OptionStrategy<S>(S);

        /// `None` with probability 1/4, otherwise `Some` of the inner value.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_bool(0.25) {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// See [`vec()`](fn@vec).
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A `Vec` of `element` values with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A `BTreeSet` built from up to `size` sampled elements
        /// (duplicates collapse, so the set may be smaller).
        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a proptest-based test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic per-test seed derived from the test's name (FNV-1a).
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic RNG for a named test (avoids requiring `rand` in callers).
#[doc(hidden)]
pub fn rng_for(name: &str) -> StdRng {
    use rand::SeedableRng;
    StdRng::seed_from_u64(seed_for(name))
}

/// Like `assert!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Like `assert_eq!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Like `assert_ne!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Declares property-based tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` running
/// `cases` deterministic random cases. On failure the panic message is
/// prefixed (via stderr) with the failing case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng: $crate::StdRng = $crate::rng_for(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let run = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        move || $body,
                    ));
                    if let Err(payload) = run {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed (deterministic seed; rerun reproduces)",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
