//! # dynspread — information spreading in adversarial dynamic networks
//!
//! A from-scratch Rust reproduction of *The Communication Cost of
//! Information Spreading in Dynamic Networks* (Ahmadi, Kuhn, Kutten,
//! Molla, Pandurangan; ICDCS 2019): the synchronous adversarial
//! dynamic-network model, all four token-forwarding dissemination
//! algorithms, their baselines, the Section 2 lower-bound adversary, and
//! a benchmark harness regenerating every table and figure.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name and hosts the cross-crate integration tests and runnable
//! examples.
//!
//! * [`graph`] — dynamic graphs, σ-edge stability, `TC(E)` accounting,
//!   generators, oblivious adversaries.
//! * [`sim`] — the synchronous round engines, message metering
//!   (Definition 1.1), token-learning tracking (Definition 1.4).
//! * [`core`] — Algorithms 1 & 2, Multi-Source-Unicast, flooding,
//!   baselines, the potential adversary of Theorem 2.3, random walks.
//! * [`runtime`] — the deterministic discrete-event runtime: virtual
//!   clock, seeded event queue, per-node mailboxes, composable lossy /
//!   latent link models, synchronizer adapters that run the round-based
//!   protocols unchanged (byte-identical to [`sim`] under a perfect
//!   link), the asynchronous `EventProtocol` engine, and native async
//!   ports of the dissemination algorithms with explicit retransmission
//!   (`runtime::protocol`; conformance contract in
//!   `crates/runtime/README.md`).
//! * [`analysis`] — statistics, power-law fits, adversary-competitive
//!   accounting (Definition 1.3), result tables.
//!
//! # Quickstart
//!
//! Disseminate 32 tokens from one source over a dynamic network that
//! rewires to a fresh random tree every 3 rounds:
//!
//! ```
//! use dynspread::core::single_source::SingleSourceNode;
//! use dynspread::graph::{generators::Topology, oblivious::PeriodicRewiring, NodeId};
//! use dynspread::sim::{SimConfig, TokenAssignment, UnicastSim};
//!
//! let (n, k) = (16, 32);
//! let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
//! let adversary = PeriodicRewiring::new(Topology::RandomTree, 3, 42);
//! let mut sim = UnicastSim::new(
//!     "single-source-unicast",
//!     SingleSourceNode::nodes(&assignment),
//!     adversary,
//!     &assignment,
//!     SimConfig::default(),
//! );
//! let report = sim.run_to_completion();
//! assert!(report.completed);
//! // Theorem 3.1: messages − TC(E) = O(n² + nk).
//! assert!(report.competitive_residual(1.0) <= 4.0 * ((n * n + n * k) as f64));
//! ```
//!
//! # Running the experiments and benches
//!
//! The experiment binaries live in the `dynspread-bench` crate; each
//! regenerates one of the paper's quantitative artifacts:
//!
//! ```text
//! cargo run --release -p dynspread-bench --bin table1          # Table 1
//! cargo run --release -p dynspread-bench --bin fig1_free_edges # Figure 1 / Lemma 2.2
//! cargo run --release -p dynspread-bench --bin exp_single_source
//! cargo run --release -p dynspread-bench --bin exp_multi_source
//! # … see crates/bench/src/bin/ for the full exp_* index.
//! ```
//!
//! Every binary fans its independent `n × k × adversary × seed` grid
//! across all CPU cores via `dynspread_bench::par_map` with deterministic
//! per-job seeds — output is byte-identical regardless of core count. Set
//! `DYNSPREAD_THREADS=1` to force serial execution.
//!
//! Criterion-style micro benches and the perf-trajectory summary:
//!
//! ```text
//! cargo bench -p dynspread-bench                                # all benches
//! cargo run --release -p dynspread-bench --bin bench_core       # BENCH_core.json
//! ```
//!
//! `bench_core` rewrites `BENCH_core.json` with the median
//! `DynamicGraph` update + connectivity cost per round at `n = 512` for
//! the frozen seed baseline vs. the delta-applied data plane (plus
//! end-to-end ns/round for flooding and single-source), so future PRs can
//! track regressions. The interactive CLI is `cargo run --release --bin
//! spread -- --help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dynspread_analysis as analysis;
pub use dynspread_core as core;
pub use dynspread_graph as graph;
pub use dynspread_runtime as runtime;
pub use dynspread_sim as sim;
