//! # dynspread — information spreading in adversarial dynamic networks
//!
//! A from-scratch Rust reproduction of *The Communication Cost of
//! Information Spreading in Dynamic Networks* (Ahmadi, Kuhn, Kutten,
//! Molla, Pandurangan; ICDCS 2019): the synchronous adversarial
//! dynamic-network model, all four token-forwarding dissemination
//! algorithms, their baselines, the Section 2 lower-bound adversary, and
//! a benchmark harness regenerating every table and figure.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name and hosts the cross-crate integration tests and runnable
//! examples.
//!
//! * [`graph`] — dynamic graphs, σ-edge stability, `TC(E)` accounting,
//!   generators, oblivious adversaries.
//! * [`sim`] — the synchronous round engines, message metering
//!   (Definition 1.1), token-learning tracking (Definition 1.4).
//! * [`core`] — Algorithms 1 & 2, Multi-Source-Unicast, flooding,
//!   baselines, the potential adversary of Theorem 2.3, random walks.
//! * [`analysis`] — statistics, power-law fits, adversary-competitive
//!   accounting (Definition 1.3), result tables.
//!
//! # Quickstart
//!
//! Disseminate 32 tokens from one source over a dynamic network that
//! rewires to a fresh random tree every 3 rounds:
//!
//! ```
//! use dynspread::core::single_source::SingleSourceNode;
//! use dynspread::graph::{generators::Topology, oblivious::PeriodicRewiring, NodeId};
//! use dynspread::sim::{SimConfig, TokenAssignment, UnicastSim};
//!
//! let (n, k) = (16, 32);
//! let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
//! let adversary = PeriodicRewiring::new(Topology::RandomTree, 3, 42);
//! let mut sim = UnicastSim::new(
//!     "single-source-unicast",
//!     SingleSourceNode::nodes(&assignment),
//!     adversary,
//!     &assignment,
//!     SimConfig::default(),
//! );
//! let report = sim.run_to_completion();
//! assert!(report.completed);
//! // Theorem 3.1: messages − TC(E) = O(n² + nk).
//! assert!(report.competitive_residual(1.0) <= 4.0 * ((n * n + n * k) as f64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dynspread_analysis as analysis;
pub use dynspread_core as core;
pub use dynspread_graph as graph;
pub use dynspread_sim as sim;
