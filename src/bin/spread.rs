//! `spread` — run any dissemination algorithm against any adversary from
//! the command line.
//!
//! ```text
//! Usage: spread [OPTIONS]
//!   --alg  ALG     single-source | multi-source | unicast-flood |
//!                  phased-flood | rlnc | oblivious        [single-source]
//!   --adv  ADV     static:TOPO | rewire:TOPO:PERIOD |
//!                  markov:P_ON:P_OFF:SIGMA | churn:TOPO:C:SIGMA
//!                                                         [rewire:tree:3]
//!   --n    N       nodes                                  [32]
//!   --k    K       tokens                                 [64]
//!   --s    S       sources (multi-source / rlnc / oblivious) [4]
//!   --seed SEED    RNG seed                               [42]
//!   --max-rounds R round cap                              [1000000]
//!   --kt0          charge neighbor-discovery hellos (unicast algorithms)
//!
//! TOPO: path | cycle | star | complete | tree | gnp:P | sparse:C | regular:D
//! ```
//!
//! Examples:
//!
//! ```text
//! spread --alg multi-source --adv churn:sparse:2.0:2:3 --n 40 --k 80 --s 4
//! spread --alg rlnc --adv rewire:tree:1 --n 24 --k 24 --s 24
//! ```

use dynspread::core::baselines::UnicastFlooding;
use dynspread::core::flooding::PhasedFlooding;
use dynspread::core::multi_source::MultiSourceNode;
use dynspread::core::network_coding::RlncNode;
use dynspread::core::oblivious::{run_oblivious_multi_source, ObliviousConfig};
use dynspread::core::single_source::SingleSourceNode;
use dynspread::graph::adversary::Adversary;
use dynspread::graph::generators::Topology;
use dynspread::graph::oblivious::{
    ChurnAdversary, EdgeMarkovian, PeriodicRewiring, StaticAdversary,
};
use dynspread::graph::NodeId;
use dynspread::sim::{BroadcastSim, SimConfig, TokenAssignment, UnicastSim};

/// Parsed CLI configuration.
#[derive(Clone, Debug, PartialEq)]
struct Config {
    alg: String,
    adv: String,
    n: usize,
    k: usize,
    s: usize,
    seed: u64,
    max_rounds: u64,
    kt0: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            alg: "single-source".into(),
            adv: "rewire:tree:3".into(),
            n: 32,
            k: 64,
            s: 4,
            seed: 42,
            max_rounds: 1_000_000,
            kt0: false,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--alg" => cfg.alg = value("--alg")?,
            "--adv" => cfg.adv = value("--adv")?,
            "--n" => cfg.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--k" => cfg.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--s" => cfg.s = value("--s")?.parse().map_err(|e| format!("--s: {e}"))?,
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-rounds" => {
                cfg.max_rounds = value("--max-rounds")?
                    .parse()
                    .map_err(|e| format!("--max-rounds: {e}"))?
            }
            "--kt0" => cfg.kt0 = true,
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cfg.n < 2 {
        return Err("--n must be at least 2".into());
    }
    if cfg.k < 1 {
        return Err("--k must be at least 1".into());
    }
    if cfg.s < 1 || cfg.s > cfg.n {
        return Err("--s must be in 1..=n".into());
    }
    Ok(cfg)
}

fn parse_topology(spec: &str) -> Result<Topology, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["path"] => Ok(Topology::Path),
        ["cycle"] => Ok(Topology::Cycle),
        ["star"] => Ok(Topology::Star),
        ["complete"] => Ok(Topology::Complete),
        ["tree"] => Ok(Topology::RandomTree),
        ["gnp", p] => p
            .parse()
            .map(Topology::Gnp)
            .map_err(|e| format!("gnp probability: {e}")),
        ["sparse", c] => c
            .parse()
            .map(Topology::SparseConnected)
            .map_err(|e| format!("sparse factor: {e}")),
        ["regular", d] => d
            .parse()
            .map(Topology::NearRegular)
            .map_err(|e| format!("regular degree: {e}")),
        _ => Err(format!("unknown topology '{spec}'")),
    }
}

fn parse_adversary(spec: &str, n: usize, seed: u64) -> Result<Box<dyn Adversary>, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "static" => {
            let topo = parse_topology(rest)?;
            Ok(Box::new(StaticAdversary::from_topology(topo, n, seed)))
        }
        "rewire" => {
            let (topo_spec, period) = rest
                .rsplit_once(':')
                .ok_or_else(|| "rewire needs TOPO:PERIOD".to_string())?;
            let topo = parse_topology(topo_spec)?;
            let period: u64 = period.parse().map_err(|e| format!("period: {e}"))?;
            Ok(Box::new(PeriodicRewiring::new(topo, period, seed)))
        }
        "markov" => {
            let parts: Vec<&str> = rest.split(':').collect();
            let [p_on, p_off, sigma] = parts.as_slice() else {
                return Err("markov needs P_ON:P_OFF:SIGMA".into());
            };
            Ok(Box::new(EdgeMarkovian::new(
                p_on.parse().map_err(|e| format!("p_on: {e}"))?,
                p_off.parse().map_err(|e| format!("p_off: {e}"))?,
                sigma.parse().map_err(|e| format!("sigma: {e}"))?,
                seed,
            )))
        }
        "churn" => {
            // churn:TOPO[:..]:C:SIGMA — topology may itself contain ':'.
            let (head, sigma) = rest
                .rsplit_once(':')
                .ok_or_else(|| "churn needs TOPO:C:SIGMA".to_string())?;
            let (topo_spec, churn) = head
                .rsplit_once(':')
                .ok_or_else(|| "churn needs TOPO:C:SIGMA".to_string())?;
            Ok(Box::new(ChurnAdversary::new(
                parse_topology(topo_spec)?,
                churn.parse().map_err(|e| format!("churn: {e}"))?,
                sigma.parse().map_err(|e| format!("sigma: {e}"))?,
                seed,
            )))
        }
        _ => Err(format!("unknown adversary '{spec}'")),
    }
}

fn run(cfg: &Config) -> Result<String, String> {
    let sim_cfg = SimConfig {
        max_rounds: cfg.max_rounds,
        charge_neighbor_discovery: cfg.kt0,
        ..SimConfig::default()
    };
    let adversary = parse_adversary(&cfg.adv, cfg.n, cfg.seed)?;
    let report = match cfg.alg.as_str() {
        "single-source" => {
            let a = TokenAssignment::single_source(cfg.n, cfg.k, NodeId::new(0));
            let mut sim = UnicastSim::new(
                "single-source-unicast",
                SingleSourceNode::nodes(&a),
                adversary,
                &a,
                sim_cfg,
            );
            sim.run_to_completion()
        }
        "multi-source" => {
            let a = TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s);
            let (nodes, _map) = MultiSourceNode::nodes(&a);
            let mut sim = UnicastSim::new("multi-source-unicast", nodes, adversary, &a, sim_cfg);
            sim.run_to_completion()
        }
        "unicast-flood" => {
            let a = TokenAssignment::single_source(cfg.n, cfg.k, NodeId::new(0));
            let mut sim = UnicastSim::new(
                "unicast-flooding",
                UnicastFlooding::nodes(&a),
                adversary,
                &a,
                sim_cfg,
            );
            sim.run_to_completion()
        }
        "phased-flood" => {
            let a = TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s);
            let mut sim = BroadcastSim::new(
                "phased-flooding",
                PhasedFlooding::nodes(&a),
                adversary,
                &a,
                sim_cfg,
            );
            sim.run_to_completion()
        }
        "rlnc" => {
            let a = TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s);
            let mut sim = BroadcastSim::new(
                "rlnc-gossip",
                RlncNode::nodes(&a, cfg.seed),
                adversary,
                &a,
                sim_cfg,
            );
            sim.run_to_completion()
        }
        "oblivious" => {
            let a = TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s);
            let adversary2 = parse_adversary(&cfg.adv, cfg.n, cfg.seed + 1)?;
            let ob_cfg = ObliviousConfig {
                seed: cfg.seed,
                source_threshold: Some((cfg.n as f64).powf(2.0 / 3.0)),
                ..ObliviousConfig::default()
            };
            let out = run_oblivious_multi_source(&a, adversary, adversary2, &ob_cfg);
            let mut text = String::new();
            if let Some(p1) = &out.phase1 {
                text.push_str(&format!("{p1}\n"));
            }
            text.push_str(&format!("{}\n", out.phase2));
            text.push_str(&format!(
                "total: {} messages in {} rounds, amortized {:.1}/token, {} centers",
                out.total_messages(),
                out.total_rounds(),
                out.amortized(),
                out.centers.len()
            ));
            return Ok(text);
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    Ok(report.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cfg) => match run(&cfg) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: spread [--alg ALG] [--adv ADV] [--n N] [--k K] [--s S] \
                 [--seed SEED] [--max-rounds R] [--kt0]\n\
                 ALG:  single-source | multi-source | unicast-flood | phased-flood | rlnc | oblivious\n\
                 ADV:  static:TOPO | rewire:TOPO:PERIOD | markov:P_ON:P_OFF:SIGMA | churn:TOPO:C:SIGMA\n\
                 TOPO: path | cycle | star | complete | tree | gnp:P | sparse:C | regular:D"
            );
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg, Config::default());
    }

    #[test]
    fn flags_override_defaults() {
        let cfg = parse_args(&args("--n 10 --k 5 --s 2 --seed 7 --kt0")).unwrap();
        assert_eq!(cfg.n, 10);
        assert_eq!(cfg.k, 5);
        assert_eq!(cfg.s, 2);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.kt0);
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse_args(&args("--bogus 1")).is_err());
        assert!(parse_args(&args("--n")).is_err());
        assert!(parse_args(&args("--n zero")).is_err());
        assert!(parse_args(&args("--n 1")).is_err());
        assert!(parse_args(&args("--n 4 --s 9")).is_err());
    }

    #[test]
    fn topology_specs_parse() {
        assert_eq!(parse_topology("path").unwrap(), Topology::Path);
        assert_eq!(parse_topology("gnp:0.3").unwrap(), Topology::Gnp(0.3));
        assert_eq!(
            parse_topology("sparse:2.5").unwrap(),
            Topology::SparseConnected(2.5)
        );
        assert_eq!(
            parse_topology("regular:4").unwrap(),
            Topology::NearRegular(4)
        );
        assert!(parse_topology("hex").is_err());
        assert!(parse_topology("gnp:x").is_err());
    }

    #[test]
    fn adversary_specs_parse() {
        assert!(parse_adversary("static:complete", 6, 1).is_ok());
        assert!(parse_adversary("rewire:tree:3", 6, 1).is_ok());
        assert!(parse_adversary("rewire:gnp:0.3:3", 6, 1).is_ok());
        assert!(parse_adversary("markov:0.1:0.2:2", 6, 1).is_ok());
        assert!(parse_adversary("churn:sparse:2.0:2:3", 6, 1).is_ok());
        assert!(parse_adversary("quantum:1", 6, 1).is_err());
        assert!(parse_adversary("rewire:tree", 6, 1).is_err());
    }

    #[test]
    fn end_to_end_small_runs() {
        for alg in [
            "single-source",
            "multi-source",
            "unicast-flood",
            "phased-flood",
            "rlnc",
            "oblivious",
        ] {
            let cfg = Config {
                alg: alg.into(),
                adv: "rewire:tree:3".into(),
                n: 8,
                k: 8,
                s: 4,
                seed: 5,
                max_rounds: 200_000,
                kt0: false,
            };
            let out = run(&cfg).unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(out.contains("completed"), "{alg} output: {out}");
        }
    }

    #[test]
    fn unknown_algorithm_is_an_error() {
        let cfg = Config {
            alg: "teleport".into(),
            ..Config::default()
        };
        assert!(run(&cfg).is_err());
    }
}
