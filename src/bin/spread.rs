//! `spread` — run any dissemination algorithm against any adversary from
//! the command line.
//!
//! ```text
//! Usage: spread [OPTIONS]
//!   --alg  ALG     single-source | multi-source | unicast-flood |
//!                  phased-flood | rlnc | oblivious |
//!                  async-single-source | async-multi-source |
//!                  async-oblivious                        [single-source]
//!   --adv  ADV     static:TOPO | rewire:TOPO:PERIOD |
//!                  markov:P_ON:P_OFF:SIGMA | churn:TOPO:C:SIGMA
//!                                                         [rewire:tree:3]
//!   --n    N       nodes                                  [32]
//!   --k    K       tokens                                 [64]
//!   --s    S       sources (multi-source / rlnc / oblivious) [4]
//!   --seed SEED    RNG seed                               [42]
//!   --max-rounds R round cap                              [1000000]
//!   --kt0          charge neighbor-discovery hellos (unicast algorithms)
//!
//! Scenario flags (async-* algorithms only, backed by the unified
//! `Scenario` builder):
//!   --faults SPEC    comma-separated fault segments:
//!                    stop:FRAC:AT | recover:FRAC:T0:T1[:amnesia|durable]
//!                    | part:T0:T1
//!   --byz FRAC:KIND  uniform misbehavior plan; KIND: false-claims |
//!                    forge-transfers | seq-replay | drop-acks |
//!                    mutate-tokens
//!   --trace-out PATH write the deterministic JSONL trace to PATH
//!   --sessions SRC   multi-session service run (async-single-source
//!                    mux): a trace file of `ARRIVAL SOURCE K [LEAVE]`
//!                    lines, or uniform:SESSIONS:K:SPACING
//!
//! TOPO: path | cycle | star | complete | tree | gnp:P | sparse:C | regular:D
//! ```
//!
//! Examples:
//!
//! ```text
//! spread --alg multi-source --adv churn:sparse:2.0:2:3 --n 40 --k 80 --s 4
//! spread --alg rlnc --adv rewire:tree:1 --n 24 --k 24 --s 24
//! spread --alg async-single-source --faults recover:0.2:50:200,part:80:400 --byz 0.15:false-claims
//! spread --alg async-single-source --sessions uniform:20:8:40 --n 24
//! ```

use dynspread::core::baselines::UnicastFlooding;
use dynspread::core::flooding::PhasedFlooding;
use dynspread::core::multi_source::MultiSourceNode;
use dynspread::core::network_coding::RlncNode;
use dynspread::core::oblivious::{run_oblivious_multi_source, ObliviousConfig};
use dynspread::core::single_source::SingleSourceNode;
use dynspread::graph::adversary::Adversary;
use dynspread::graph::generators::Topology;
use dynspread::graph::oblivious::{
    ChurnAdversary, EdgeMarkovian, PeriodicRewiring, StaticAdversary,
};
use dynspread::graph::NodeId;
use dynspread::runtime::byzantine::{MisbehaviorKind, MisbehaviorPlan};
use dynspread::runtime::faults::{FaultPlan, RecoveryMode};
use dynspread::runtime::protocol::AsyncObliviousConfig;
use dynspread::runtime::trace::JsonlTracer;
use dynspread::runtime::{Scenario, SessionWorkload};
use dynspread::sim::{BroadcastSim, SimConfig, TokenAssignment, UnicastSim};

/// Parsed CLI configuration.
#[derive(Clone, Debug, PartialEq)]
struct Config {
    alg: String,
    adv: String,
    n: usize,
    k: usize,
    s: usize,
    seed: u64,
    max_rounds: u64,
    kt0: bool,
    faults: Option<String>,
    byz: Option<String>,
    trace_out: Option<String>,
    sessions: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            alg: "single-source".into(),
            adv: "rewire:tree:3".into(),
            n: 32,
            k: 64,
            s: 4,
            seed: 42,
            max_rounds: 1_000_000,
            kt0: false,
            faults: None,
            byz: None,
            trace_out: None,
            sessions: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--alg" => cfg.alg = value("--alg")?,
            "--adv" => cfg.adv = value("--adv")?,
            "--n" => cfg.n = value("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--k" => cfg.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--s" => cfg.s = value("--s")?.parse().map_err(|e| format!("--s: {e}"))?,
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--max-rounds" => {
                cfg.max_rounds = value("--max-rounds")?
                    .parse()
                    .map_err(|e| format!("--max-rounds: {e}"))?
            }
            "--kt0" => cfg.kt0 = true,
            "--faults" => cfg.faults = Some(value("--faults")?),
            "--byz" => cfg.byz = Some(value("--byz")?),
            "--trace-out" => cfg.trace_out = Some(value("--trace-out")?),
            "--sessions" => cfg.sessions = Some(value("--sessions")?),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cfg.n < 2 {
        return Err("--n must be at least 2".into());
    }
    if cfg.k < 1 {
        return Err("--k must be at least 1".into());
    }
    if cfg.s < 1 || cfg.s > cfg.n {
        return Err("--s must be in 1..=n".into());
    }
    let scenario_alg = cfg.alg.starts_with("async-");
    if !scenario_alg {
        for (flag, set) in [
            ("--faults", cfg.faults.is_some()),
            ("--byz", cfg.byz.is_some()),
            ("--trace-out", cfg.trace_out.is_some()),
            ("--sessions", cfg.sessions.is_some()),
        ] {
            if set {
                return Err(format!(
                    "{flag} needs an async-* algorithm (the synchronous engines \
                     have no fault/Byzantine/trace axes)"
                ));
            }
        }
    }
    if cfg.sessions.is_some() {
        if cfg.alg != "async-single-source" {
            return Err("--sessions runs the async-single-source session mux".into());
        }
        if cfg.byz.is_some() {
            return Err("--byz does not compose with --sessions yet".into());
        }
    }
    Ok(cfg)
}

/// Parses `--faults` segments: `stop:FRAC:AT`,
/// `recover:FRAC:T0:T1[:amnesia|durable]`, `part:T0:T1`, comma-joined.
fn parse_faults(spec: &str, n: usize, seed: u64) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::none(n);
    for segment in spec.split(',') {
        let parts: Vec<&str> = segment.split(':').collect();
        match parts.as_slice() {
            ["stop", frac, at] => {
                if !plan.is_empty() {
                    return Err("at most one crash segment, before any part".into());
                }
                plan = FaultPlan::crash_stop(
                    n,
                    frac.parse().map_err(|e| format!("stop fraction: {e}"))?,
                    at.parse().map_err(|e| format!("stop time: {e}"))?,
                    seed,
                );
            }
            ["recover", frac, t0, t1, rest @ ..] => {
                if !plan.is_empty() {
                    return Err("at most one crash segment, before any part".into());
                }
                let mode = match rest {
                    [] | ["amnesia"] => RecoveryMode::Amnesia,
                    ["durable"] => RecoveryMode::DurableSnapshot,
                    _ => return Err(format!("unknown recovery mode in '{segment}'")),
                };
                plan = FaultPlan::crash_recovery(
                    n,
                    frac.parse().map_err(|e| format!("recover fraction: {e}"))?,
                    t0.parse().map_err(|e| format!("recover start: {e}"))?,
                    t1.parse().map_err(|e| format!("recover end: {e}"))?,
                    mode,
                    seed,
                );
            }
            ["part", t0, t1] => {
                plan = plan.with_random_partition(
                    t0.parse().map_err(|e| format!("part start: {e}"))?,
                    t1.parse().map_err(|e| format!("part heal: {e}"))?,
                );
            }
            _ => return Err(format!("unknown fault segment '{segment}'")),
        }
    }
    Ok(plan)
}

/// Parses `--byz FRAC:KIND` into a uniform misbehavior plan.
fn parse_byz(spec: &str, n: usize, seed: u64) -> Result<MisbehaviorPlan, String> {
    let (frac, kind) = spec
        .split_once(':')
        .ok_or_else(|| "byz needs FRAC:KIND".to_string())?;
    let kind = match kind {
        "false-claims" => MisbehaviorKind::FalseClaims,
        "forge-transfers" => MisbehaviorKind::ForgeTransfers,
        "seq-replay" => MisbehaviorKind::SeqReplay,
        "drop-acks" => MisbehaviorKind::DropAcks,
        "mutate-tokens" => MisbehaviorKind::MutateTokens,
        other => return Err(format!("unknown misbehavior kind '{other}'")),
    };
    Ok(MisbehaviorPlan::uniform(
        n,
        frac.parse().map_err(|e| format!("byz fraction: {e}"))?,
        kind,
        seed,
    ))
}

/// Parses `--sessions`: `uniform:SESSIONS:K:SPACING` or a trace-file
/// path (one `ARRIVAL SOURCE K [LEAVE]` line per session).
fn parse_sessions(spec: &str, n: usize, seed: u64) -> Result<SessionWorkload, String> {
    if let Some(rest) = spec.strip_prefix("uniform:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [sessions, k, spacing] = parts.as_slice() else {
            return Err("uniform needs SESSIONS:K:SPACING".into());
        };
        return Ok(SessionWorkload::uniform(
            n,
            sessions.parse().map_err(|e| format!("sessions: {e}"))?,
            k.parse().map_err(|e| format!("session k: {e}"))?,
            spacing.parse().map_err(|e| format!("spacing: {e}"))?,
            seed,
        ));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("reading {spec}: {e}"))?;
    SessionWorkload::parse(n, &text)
}

fn parse_topology(spec: &str) -> Result<Topology, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["path"] => Ok(Topology::Path),
        ["cycle"] => Ok(Topology::Cycle),
        ["star"] => Ok(Topology::Star),
        ["complete"] => Ok(Topology::Complete),
        ["tree"] => Ok(Topology::RandomTree),
        ["gnp", p] => p
            .parse()
            .map(Topology::Gnp)
            .map_err(|e| format!("gnp probability: {e}")),
        ["sparse", c] => c
            .parse()
            .map(Topology::SparseConnected)
            .map_err(|e| format!("sparse factor: {e}")),
        ["regular", d] => d
            .parse()
            .map(Topology::NearRegular)
            .map_err(|e| format!("regular degree: {e}")),
        _ => Err(format!("unknown topology '{spec}'")),
    }
}

fn parse_adversary(spec: &str, n: usize, seed: u64) -> Result<Box<dyn Adversary>, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "static" => {
            let topo = parse_topology(rest)?;
            Ok(Box::new(StaticAdversary::from_topology(topo, n, seed)))
        }
        "rewire" => {
            let (topo_spec, period) = rest
                .rsplit_once(':')
                .ok_or_else(|| "rewire needs TOPO:PERIOD".to_string())?;
            let topo = parse_topology(topo_spec)?;
            let period: u64 = period.parse().map_err(|e| format!("period: {e}"))?;
            Ok(Box::new(PeriodicRewiring::new(topo, period, seed)))
        }
        "markov" => {
            let parts: Vec<&str> = rest.split(':').collect();
            let [p_on, p_off, sigma] = parts.as_slice() else {
                return Err("markov needs P_ON:P_OFF:SIGMA".into());
            };
            Ok(Box::new(EdgeMarkovian::new(
                p_on.parse().map_err(|e| format!("p_on: {e}"))?,
                p_off.parse().map_err(|e| format!("p_off: {e}"))?,
                sigma.parse().map_err(|e| format!("sigma: {e}"))?,
                seed,
            )))
        }
        "churn" => {
            // churn:TOPO[:..]:C:SIGMA — topology may itself contain ':'.
            let (head, sigma) = rest
                .rsplit_once(':')
                .ok_or_else(|| "churn needs TOPO:C:SIGMA".to_string())?;
            let (topo_spec, churn) = head
                .rsplit_once(':')
                .ok_or_else(|| "churn needs TOPO:C:SIGMA".to_string())?;
            Ok(Box::new(ChurnAdversary::new(
                parse_topology(topo_spec)?,
                churn.parse().map_err(|e| format!("churn: {e}"))?,
                sigma.parse().map_err(|e| format!("sigma: {e}"))?,
                seed,
            )))
        }
        _ => Err(format!("unknown adversary '{spec}'")),
    }
}

/// Builds the Scenario axes shared by every async-* algorithm, runs
/// `go`, and flushes the trace file if one was requested.
fn run_scenario(cfg: &Config, assignment: TokenAssignment) -> Result<String, String> {
    let adversary = parse_adversary(&cfg.adv, cfg.n, cfg.seed)?;
    let mut scenario = Scenario::from_assignment(assignment)
        .topology(adversary)
        .seed(cfg.seed)
        .max_time(cfg.max_rounds);
    if let Some(spec) = &cfg.faults {
        scenario = scenario.faults(parse_faults(spec, cfg.n, cfg.seed ^ 0xFA17)?);
    }
    if let Some(spec) = &cfg.byz {
        scenario = scenario.byzantine(parse_byz(spec, cfg.n, cfg.seed ^ 0xB42)?);
    }
    let tracer = JsonlTracer::new();
    if cfg.trace_out.is_some() {
        scenario = scenario.trace(tracer.clone());
    }

    let mut text = String::new();
    match cfg.alg.as_str() {
        "async-single-source" if cfg.sessions.is_some() => {
            let spec = cfg.sessions.as_deref().expect("checked above");
            let workload = parse_sessions(spec, cfg.n, cfg.seed)?;
            let out = scenario.workload(&workload).run_sessions();
            text.push_str(&format!("{}\n", out.report));
            for s in &out.sessions {
                match s.latency {
                    Some(lat) => text.push_str(&format!(
                        "session {:>8}: arrival {:>8} latency {:>8} messages {:>8}\n",
                        s.label, s.arrival, lat, s.messages
                    )),
                    None => text.push_str(&format!(
                        "session {:>8}: arrival {:>8} incomplete messages {:>8}\n",
                        s.label, s.arrival, s.messages
                    )),
                }
            }
            text.push_str(&format!(
                "sessions: {}/{} complete, p50 latency {:?}, p95 latency {:?}, \
                 {} session messages, {} decode errors, {} foreign drops",
                out.completed_sessions(),
                out.sessions.len(),
                out.latency_percentile(0.50),
                out.latency_percentile(0.95),
                out.total_session_messages(),
                out.decode_errors,
                out.foreign_drops
            ));
        }
        "async-single-source" | "async-multi-source" => {
            let out = if cfg.alg == "async-single-source" {
                scenario.run_single_source()
            } else {
                scenario.run_multi_source()
            };
            text.push_str(&format!("{}\n", out.report));
            text.push_str(&format!(
                "live coverage {:.3}, honest coverage {:.3}, {} violations, {} injected",
                out.live_coverage,
                out.honest_coverage,
                out.evidence.len(),
                out.injected
            ));
        }
        "async-oblivious" => {
            let adversary2 = parse_adversary(&cfg.adv, cfg.n, cfg.seed + 1)?;
            let ob_cfg = AsyncObliviousConfig {
                seed: cfg.seed,
                ..AsyncObliviousConfig::default()
            };
            let faults2 = cfg
                .faults
                .as_deref()
                .map(|spec| parse_faults(spec, cfg.n, cfg.seed ^ 0xFA172))
                .transpose()?;
            let out = scenario.run_oblivious(
                adversary2,
                dynspread::runtime::link::PerfectLink,
                &ob_cfg,
                faults2.as_ref(),
            );
            text.push_str(&format!("{}\n", out.report));
            text.push_str(&format!(
                "{} centers, {} sources, {} stranded, {} reclaimed, {} recovered, \
                 live coverage {:.3}, honest coverage {:.3}",
                out.centers.len(),
                out.sources.len(),
                out.stranded_tokens,
                out.crash_reclaimed,
                out.stolen_recovered,
                out.live_coverage,
                out.honest_coverage
            ));
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    }

    if let Some(path) = &cfg.trace_out {
        std::fs::write(path, tracer.take_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(text)
}

fn run(cfg: &Config) -> Result<String, String> {
    if cfg.alg.starts_with("async-") {
        let assignment = match cfg.alg.as_str() {
            "async-single-source" => TokenAssignment::single_source(cfg.n, cfg.k, NodeId::new(0)),
            _ => TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s),
        };
        return run_scenario(cfg, assignment);
    }
    let sim_cfg = SimConfig {
        max_rounds: cfg.max_rounds,
        charge_neighbor_discovery: cfg.kt0,
        ..SimConfig::default()
    };
    let adversary = parse_adversary(&cfg.adv, cfg.n, cfg.seed)?;
    let report = match cfg.alg.as_str() {
        "single-source" => {
            let a = TokenAssignment::single_source(cfg.n, cfg.k, NodeId::new(0));
            let mut sim = UnicastSim::new(
                "single-source-unicast",
                SingleSourceNode::nodes(&a),
                adversary,
                &a,
                sim_cfg,
            );
            sim.run_to_completion()
        }
        "multi-source" => {
            let a = TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s);
            let (nodes, _map) = MultiSourceNode::nodes(&a);
            let mut sim = UnicastSim::new("multi-source-unicast", nodes, adversary, &a, sim_cfg);
            sim.run_to_completion()
        }
        "unicast-flood" => {
            let a = TokenAssignment::single_source(cfg.n, cfg.k, NodeId::new(0));
            let mut sim = UnicastSim::new(
                "unicast-flooding",
                UnicastFlooding::nodes(&a),
                adversary,
                &a,
                sim_cfg,
            );
            sim.run_to_completion()
        }
        "phased-flood" => {
            let a = TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s);
            let mut sim = BroadcastSim::new(
                "phased-flooding",
                PhasedFlooding::nodes(&a),
                adversary,
                &a,
                sim_cfg,
            );
            sim.run_to_completion()
        }
        "rlnc" => {
            let a = TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s);
            let mut sim = BroadcastSim::new(
                "rlnc-gossip",
                RlncNode::nodes(&a, cfg.seed),
                adversary,
                &a,
                sim_cfg,
            );
            sim.run_to_completion()
        }
        "oblivious" => {
            let a = TokenAssignment::round_robin_sources(cfg.n, cfg.k, cfg.s);
            let adversary2 = parse_adversary(&cfg.adv, cfg.n, cfg.seed + 1)?;
            let ob_cfg = ObliviousConfig {
                seed: cfg.seed,
                source_threshold: Some((cfg.n as f64).powf(2.0 / 3.0)),
                ..ObliviousConfig::default()
            };
            let out = run_oblivious_multi_source(&a, adversary, adversary2, &ob_cfg);
            let mut text = String::new();
            if let Some(p1) = &out.phase1 {
                text.push_str(&format!("{p1}\n"));
            }
            text.push_str(&format!("{}\n", out.phase2));
            text.push_str(&format!(
                "total: {} messages in {} rounds, amortized {:.1}/token, {} centers",
                out.total_messages(),
                out.total_rounds(),
                out.amortized(),
                out.centers.len()
            ));
            return Ok(text);
        }
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    Ok(report.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cfg) => match run(&cfg) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}\n");
            }
            eprintln!(
                "usage: spread [--alg ALG] [--adv ADV] [--n N] [--k K] [--s S] \
                 [--seed SEED] [--max-rounds R] [--kt0]\n\
                 \x20             [--faults SPEC] [--byz FRAC:KIND] [--trace-out PATH] [--sessions SRC]\n\
                 ALG:  single-source | multi-source | unicast-flood | phased-flood | rlnc | oblivious\n\
                 \x20     | async-single-source | async-multi-source | async-oblivious\n\
                 ADV:  static:TOPO | rewire:TOPO:PERIOD | markov:P_ON:P_OFF:SIGMA | churn:TOPO:C:SIGMA\n\
                 TOPO: path | cycle | star | complete | tree | gnp:P | sparse:C | regular:D\n\
                 SPEC: stop:FRAC:AT | recover:FRAC:T0:T1[:amnesia|durable] | part:T0:T1 (comma-joined)\n\
                 SRC:  a trace file (`ARRIVAL SOURCE K [LEAVE]` lines) | uniform:SESSIONS:K:SPACING"
            );
            std::process::exit(if e == "help" { 0 } else { 2 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg, Config::default());
    }

    #[test]
    fn flags_override_defaults() {
        let cfg = parse_args(&args("--n 10 --k 5 --s 2 --seed 7 --kt0")).unwrap();
        assert_eq!(cfg.n, 10);
        assert_eq!(cfg.k, 5);
        assert_eq!(cfg.s, 2);
        assert_eq!(cfg.seed, 7);
        assert!(cfg.kt0);
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse_args(&args("--bogus 1")).is_err());
        assert!(parse_args(&args("--n")).is_err());
        assert!(parse_args(&args("--n zero")).is_err());
        assert!(parse_args(&args("--n 1")).is_err());
        assert!(parse_args(&args("--n 4 --s 9")).is_err());
    }

    #[test]
    fn topology_specs_parse() {
        assert_eq!(parse_topology("path").unwrap(), Topology::Path);
        assert_eq!(parse_topology("gnp:0.3").unwrap(), Topology::Gnp(0.3));
        assert_eq!(
            parse_topology("sparse:2.5").unwrap(),
            Topology::SparseConnected(2.5)
        );
        assert_eq!(
            parse_topology("regular:4").unwrap(),
            Topology::NearRegular(4)
        );
        assert!(parse_topology("hex").is_err());
        assert!(parse_topology("gnp:x").is_err());
    }

    #[test]
    fn adversary_specs_parse() {
        assert!(parse_adversary("static:complete", 6, 1).is_ok());
        assert!(parse_adversary("rewire:tree:3", 6, 1).is_ok());
        assert!(parse_adversary("rewire:gnp:0.3:3", 6, 1).is_ok());
        assert!(parse_adversary("markov:0.1:0.2:2", 6, 1).is_ok());
        assert!(parse_adversary("churn:sparse:2.0:2:3", 6, 1).is_ok());
        assert!(parse_adversary("quantum:1", 6, 1).is_err());
        assert!(parse_adversary("rewire:tree", 6, 1).is_err());
    }

    #[test]
    fn end_to_end_small_runs() {
        for alg in [
            "single-source",
            "multi-source",
            "unicast-flood",
            "phased-flood",
            "rlnc",
            "oblivious",
        ] {
            let cfg = Config {
                alg: alg.into(),
                adv: "rewire:tree:3".into(),
                n: 8,
                k: 8,
                s: 4,
                seed: 5,
                max_rounds: 200_000,
                ..Config::default()
            };
            let out = run(&cfg).unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(out.contains("completed"), "{alg} output: {out}");
        }
    }

    #[test]
    fn unknown_algorithm_is_an_error() {
        let cfg = Config {
            alg: "teleport".into(),
            ..Config::default()
        };
        assert!(run(&cfg).is_err());
        let cfg = Config {
            alg: "async-teleport".into(),
            ..Config::default()
        };
        assert!(run(&cfg).is_err());
    }

    #[test]
    fn scenario_flags_need_async_algorithms() {
        assert!(parse_args(&args("--faults stop:0.2:40")).is_err());
        assert!(parse_args(&args("--byz 0.2:drop-acks")).is_err());
        assert!(parse_args(&args("--trace-out /tmp/x.jsonl")).is_err());
        assert!(parse_args(&args("--sessions uniform:4:4:40")).is_err());
        assert!(parse_args(&args("--alg async-single-source --faults stop:0.2:40")).is_ok());
        // Sessions only multiplex the single-source port, without byz.
        assert!(parse_args(&args("--alg async-multi-source --sessions uniform:4:4:40")).is_err());
        assert!(parse_args(&args(
            "--alg async-single-source --sessions uniform:4:4:40 --byz 0.2:drop-acks"
        ))
        .is_err());
    }

    #[test]
    fn fault_and_byz_specs_parse() {
        assert!(parse_faults("stop:0.2:40", 8, 1).is_ok());
        assert!(parse_faults("recover:0.2:30:120", 8, 1).is_ok());
        assert!(parse_faults("recover:0.2:30:120:durable,part:60:400", 8, 1).is_ok());
        assert!(parse_faults("part:60:400", 8, 1).is_ok());
        assert!(parse_faults("stop:0.2:40,recover:0.1:1:2", 8, 1).is_err());
        assert!(parse_faults("melt:0.2", 8, 1).is_err());
        assert!(parse_byz("0.25:false-claims", 8, 1).is_ok());
        assert!(parse_byz("0.25:mind-control", 8, 1).is_err());
        assert!(parse_byz("drop-acks", 8, 1).is_err());
    }

    #[test]
    fn session_specs_parse() {
        let w = parse_sessions("uniform:5:4:40", 8, 3).unwrap();
        assert_eq!(w.len(), 5);
        assert!(parse_sessions("uniform:5:4", 8, 3).is_err());
        assert!(parse_sessions("/nonexistent/trace.txt", 8, 3).is_err());
    }

    #[test]
    fn async_algorithms_run_end_to_end() {
        for alg in [
            "async-single-source",
            "async-multi-source",
            "async-oblivious",
        ] {
            let cfg = Config {
                alg: alg.into(),
                n: 8,
                k: 8,
                s: 4,
                seed: 5,
                max_rounds: 200_000,
                ..Config::default()
            };
            let out = run(&cfg).unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(out.contains("completed"), "{alg} output: {out}");
        }
    }

    #[test]
    fn composed_axes_run_through_the_cli() {
        let cfg = Config {
            alg: "async-single-source".into(),
            n: 12,
            k: 6,
            seed: 7,
            faults: Some("recover:0.2:50:200,part:80:400".into()),
            byz: Some("0.15:false-claims".into()),
            ..Config::default()
        };
        let out = run(&cfg).unwrap();
        assert!(out.contains("honest coverage"), "{out}");
    }

    #[test]
    fn session_service_runs_through_the_cli() {
        let cfg = Config {
            alg: "async-single-source".into(),
            n: 12,
            seed: 7,
            sessions: Some("uniform:4:4:40".into()),
            ..Config::default()
        };
        let out = run(&cfg).unwrap();
        assert!(out.contains("sessions: 4/4 complete"), "{out}");
        assert!(out.contains("p50 latency"), "{out}");
    }
}
