//! Additional strongly adaptive unicast adversaries.
//!
//! The strongly adaptive adversary in the unicast model commits the round
//! graph knowing the full execution history — in particular, which edges
//! carried token requests in the previous round. [`RequestCuttingAdversary`]
//! weaponizes this: it deletes exactly those edges, preventing the
//! requested tokens from being delivered.
//!
//! This is the worst case for the type-3 (request) messages in the proof
//! of Theorem 3.1: every killed request forces a re-request, but also costs
//! the adversary one deletion (and a matching insertion somewhere else to
//! restore connectivity/density) — so the 1-adversary-competitive residual
//! `M − TC(E)` stays bounded even when the adversary delays termination
//! indefinitely. The ablation experiments (`exp_priority_ablation`) use it
//! to show why the algorithm's new > idle > contributive request priority
//! matters.

use dynspread_graph::connectivity::connect_components;
use dynspread_graph::generators::Topology;
use dynspread_graph::{Edge, Graph, NodeId, Round};
use dynspread_sim::adversary::{SentRecord, UnicastAdversary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// View of a protocol message as a potential token request.
pub trait RequestView {
    /// Whether this message is a token request.
    fn is_request(&self) -> bool;
}

impl RequestView for crate::single_source::SsMsg {
    fn is_request(&self) -> bool {
        matches!(self, crate::single_source::SsMsg::Request(_))
    }
}

impl RequestView for crate::multi_source::MsMsg {
    fn is_request(&self) -> bool {
        matches!(self, crate::multi_source::MsMsg::Request(_))
    }
}

/// A strongly adaptive adversary that cuts the edges which carried token
/// requests in the previous round (up to a per-round budget), then repairs
/// connectivity and tops the graph back up with random edges.
///
/// With an unbounded budget it can stall the Single-Source algorithm
/// forever — while its own `TC(E)` grows at the same rate as the
/// algorithm's message count, which is exactly the regime Definition 1.3
/// prices correctly.
pub struct RequestCuttingAdversary {
    topology: Topology,
    /// Maximum request-carrying edges cut per round (`usize::MAX` = all).
    budget: usize,
    /// Random replacement edges added per round.
    replacement_edges: usize,
    rng: StdRng,
    current: Option<Graph>,
}

impl RequestCuttingAdversary {
    /// Creates the adversary starting from a sample of `topology`.
    pub fn new(topology: Topology, budget: usize, replacement_edges: usize, seed: u64) -> Self {
        RequestCuttingAdversary {
            topology,
            budget,
            replacement_edges,
            rng: StdRng::seed_from_u64(seed),
            current: None,
        }
    }
}

impl<M: RequestView> UnicastAdversary<M> for RequestCuttingAdversary {
    fn graph_for_round(
        &mut self,
        _round: Round,
        prev: &Graph,
        prev_sent: &[SentRecord<M>],
    ) -> Graph {
        let n = prev.node_count();
        let mut g = match self.current.take() {
            Some(g) => g,
            None => self.topology.sample(n, &mut self.rng),
        };
        // Cut the edges that carried requests last round.
        let mut cut = 0usize;
        for rec in prev_sent {
            if cut >= self.budget {
                break;
            }
            if rec.msg.is_request() && g.remove_edge(Edge::new(rec.from, rec.to)) {
                cut += 1;
            }
        }
        // Top up with random fresh edges, then repair connectivity.
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < self.replacement_edges && attempts < 50 * self.replacement_edges + 50 {
            attempts += 1;
            let u = self.rng.gen_range(0..n as u32);
            let v = self.rng.gen_range(0..n as u32);
            if u != v && g.insert_edge(Edge::new(NodeId::new(u), NodeId::new(v))) {
                added += 1;
            }
        }
        connect_components(&mut g, &mut self.rng);
        self.current = Some(g.clone());
        g
    }

    fn name(&self) -> &str {
        "request-cutting"
    }
}

/// A σ-edge-stable strongly adaptive adversary: cuts edges that carried
/// requests in the previous round, **but only once they are σ rounds old**
/// (so the produced schedule is σ-edge-stable), and keeps the graph topped
/// up with fresh random edges.
///
/// This is the adversary implicit in Lemmas 3.2/3.3: requests assigned to
/// *new* edges are safe (the edge must survive ≥ σ = 3 rounds, long enough
/// for the request → token handshake), while requests on old idle or
/// contributive edges can be killed the moment they are sent. It therefore
/// separates Algorithm 1's new > idle > contributive priority from naive
/// edge choice — the `exp_priority_ablation` experiment.
pub struct StableRequestCutter {
    sigma: u64,
    target_edges: usize,
    rng: StdRng,
    /// Birth round of every currently present edge.
    births: std::collections::BTreeMap<Edge, Round>,
}

impl StableRequestCutter {
    /// Creates the adversary with stability parameter `sigma` and a target
    /// edge density.
    pub fn new(sigma: u64, target_edges: usize, seed: u64) -> Self {
        StableRequestCutter {
            sigma,
            target_edges,
            rng: StdRng::seed_from_u64(seed),
            births: std::collections::BTreeMap::new(),
        }
    }
}

impl<M: RequestView> UnicastAdversary<M> for StableRequestCutter {
    fn graph_for_round(
        &mut self,
        round: Round,
        prev: &Graph,
        prev_sent: &[SentRecord<M>],
    ) -> Graph {
        let n = prev.node_count();
        // Cut mature request-carrying edges (σ-stability permitting).
        for rec in prev_sent {
            if rec.msg.is_request() {
                let e = Edge::new(rec.from, rec.to);
                if let Some(&birth) = self.births.get(&e) {
                    if round - birth >= self.sigma {
                        self.births.remove(&e);
                    }
                }
            }
        }
        let mut g = Graph::empty(n);
        for e in self.births.keys() {
            g.insert_edge(*e);
        }
        // Top up with fresh random edges.
        let mut attempts = 0usize;
        while g.edge_count() < self.target_edges && attempts < 100 * self.target_edges + 100 {
            attempts += 1;
            let u = self.rng.gen_range(0..n as u32);
            let v = self.rng.gen_range(0..n as u32);
            if u != v {
                let e = Edge::new(NodeId::new(u), NodeId::new(v));
                if g.insert_edge(e) {
                    self.births.insert(e, round);
                }
            }
        }
        for e in connect_components(&mut g, &mut self.rng) {
            self.births.insert(e, round);
        }
        g
    }

    fn name(&self) -> &str {
        "stable-request-cutting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single_source::{SingleSourceNode, SsMsg};
    use dynspread_sim::message::MessageClass;
    use dynspread_sim::sim::{SimConfig, UnicastSim};
    use dynspread_sim::token::TokenAssignment;

    #[test]
    fn request_view_classifies_messages() {
        use crate::multi_source::MsMsg;
        use dynspread_sim::token::TokenId;
        assert!(SsMsg::Request(TokenId::new(0)).is_request());
        assert!(!SsMsg::Completeness.is_request());
        assert!(!SsMsg::Token(TokenId::new(0)).is_request());
        assert!(MsMsg::Request(TokenId::new(1)).is_request());
        assert!(!MsMsg::Completeness(NodeId::new(0)).is_request());
    }

    #[test]
    fn unbounded_cutting_stalls_but_residual_stays_bounded() {
        // Theorem 3.1 in its sharpest form: the adversary may prevent
        // completion indefinitely, but M − TC(E) remains O(n² + nk).
        let (n, k) = (10, 6);
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let adv = RequestCuttingAdversary::new(Topology::SparseConnected(2.0), usize::MAX, 2, 7);
        let mut sim = UnicastSim::new(
            "single-source-unicast",
            SingleSourceNode::nodes(&a),
            adv,
            &a,
            SimConfig::with_max_rounds(2_000),
        );
        let report = sim.run_to_completion();
        // Whether or not it completed, the competitive bound must hold.
        let residual = report.competitive_residual(1.0);
        let bound = 6.0 * ((n * n) as f64 + (n * k) as f64);
        assert!(
            residual <= bound,
            "residual {residual} > 6(n²+nk) = {bound}: {report}"
        );
        // The adversary really does interfere: requests far exceed tokens.
        assert!(report.class(MessageClass::Request) > report.class(MessageClass::Token));
    }

    #[test]
    fn bounded_cutting_allows_completion() {
        let (n, k) = (8, 4);
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        // Budget 1: at most one request killed per round; with several
        // parallel requests per round dissemination gets through.
        let adv = RequestCuttingAdversary::new(Topology::SparseConnected(2.5), 1, 1, 11);
        let mut sim = UnicastSim::new(
            "single-source-unicast",
            SingleSourceNode::nodes(&a),
            adv,
            &a,
            SimConfig::with_max_rounds(100_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
    }

    #[test]
    fn stable_cutter_produces_sigma_stable_schedules() {
        use dynspread_graph::stability::StabilityChecker;
        let n = 12;
        let sigma = 3;
        let mut adv = StableRequestCutter::new(sigma, 3 * n, 9);
        let mut checker = StabilityChecker::new(sigma);
        let mut prev = Graph::empty(n);
        // Drive it with synthetic request traffic on every present edge.
        for r in 1..=40u64 {
            let sent: Vec<SentRecord<SsMsg>> = prev
                .edges()
                .iter()
                .map(|e| SentRecord {
                    from: e.lo(),
                    to: e.hi(),
                    msg: SsMsg::Request(dynspread_sim::token::TokenId::new(0)),
                })
                .collect();
            let g = UnicastAdversary::graph_for_round(&mut adv, r, &prev, &sent);
            assert!(g.is_connected(), "round {r} disconnected");
            checker.observe(&g).expect("must be σ-stable");
            prev = g;
        }
    }

    #[test]
    fn single_source_completes_against_stable_cutter() {
        // With σ = 3, requests on new edges cannot be cut before they are
        // answered, so the prioritized algorithm always makes progress.
        let (n, k) = (12, 6);
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let adv = StableRequestCutter::new(3, 3 * n, 21);
        let mut sim = UnicastSim::new(
            "single-source-unicast",
            SingleSourceNode::nodes(&a),
            adv,
            &a,
            SimConfig::with_max_rounds(100_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
    }

    #[test]
    fn cutting_is_deterministic_per_seed() {
        let (n, k) = (8, 4);
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let run = |seed: u64| {
            let adv =
                RequestCuttingAdversary::new(Topology::SparseConnected(2.0), usize::MAX, 1, seed);
            let mut sim = UnicastSim::new(
                "ss",
                SingleSourceNode::nodes(&a),
                adv,
                &a,
                SimConfig::with_max_rounds(500),
            );
            let r = sim.run_to_completion();
            (r.total_messages, r.tc(), r.completed)
        };
        assert_eq!(run(3), run(3));
    }
}
