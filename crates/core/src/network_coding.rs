//! Random linear network-coding gossip (the paper's Section 1.2 contrast).
//!
//! "Recent work of \[28, 29\] presents information spreading algorithms
//! based on network coding. … the k-gossip problem on the adversarial model
//! of \[32\] can be solved using network coding in `O(n + k)` rounds
//! assuming the token sizes are sufficiently large (`Ω(n log n)` bits)."
//!
//! This module implements RLNC gossip over GF(2) so the repository can
//! measure that contrast: each node maintains the subspace of coefficient
//! vectors it has received ([`crate::gf2::Gf2Basis`]); every round it
//! locally broadcasts a uniformly random vector of its subspace; a node is
//! complete when its subspace has full rank `k`.
//!
//! **Model caveat (why this is not a token-forwarding algorithm):** a coded
//! packet carries a `k`-bit coefficient header on top of the token payload,
//! so it only fits the paper's `O(log n)`-bit-overhead messages when tokens
//! are large — exactly the paper's caveat. The meter counts each coded
//! broadcast as one message; the comparison of interest is **rounds**
//! (`O(n + k)` for RLNC vs `Ω(nk/log n)` for token forwarding).

use crate::gf2::{Gf2Basis, Gf2Vector};
use dynspread_graph::{NodeId, Round};
use dynspread_sim::message::{MessageClass, MessagePayload};
use dynspread_sim::protocol::BroadcastProtocol;
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A coded packet: one GF(2) combination of tokens (the coefficient
/// vector; payloads are implicit since token-forwarding semantics never
/// inspects them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodedMsg(pub Gf2Vector);

impl MessagePayload for CodedMsg {
    fn token_count(&self) -> usize {
        // One token-sized payload per packet (plus the k-bit header the
        // large-token regime absorbs).
        1
    }

    fn class(&self) -> MessageClass {
        MessageClass::Token
    }
}

/// Per-node RLNC gossip state.
#[derive(Clone, Debug)]
pub struct RlncNode {
    basis: Gf2Basis,
    /// Decoded-unit view for the tracker (unit vectors in the span).
    decoded: TokenSet,
    rng: StdRng,
}

impl RlncNode {
    /// Creates node `v` holding the unit vectors of its initial tokens.
    pub fn new(v: NodeId, assignment: &TokenAssignment, seed: u64) -> Self {
        let k = assignment.token_count();
        let mut basis = Gf2Basis::new(k);
        for t in assignment.initial_knowledge(v).iter() {
            basis.insert(Gf2Vector::unit(k, t.index()));
        }
        let mut node = RlncNode {
            basis,
            decoded: TokenSet::new(k),
            rng: StdRng::seed_from_u64(
                seed ^ (0xd134_2543_de82_ef95u64.wrapping_mul(v.value() as u64 + 1)),
            ),
        };
        node.refresh_decoded();
        node
    }

    /// Builds all `n` node protocols.
    pub fn nodes(assignment: &TokenAssignment, seed: u64) -> Vec<RlncNode> {
        NodeId::all(assignment.node_count())
            .map(|v| RlncNode::new(v, assignment, seed))
            .collect()
    }

    /// Current rank of the node's subspace.
    pub fn rank(&self) -> usize {
        self.basis.rank()
    }

    fn refresh_decoded(&mut self) {
        for i in self.basis.decodable_units() {
            self.decoded.insert(TokenId::new(i as u32));
        }
    }

    /// A uniformly random nonzero vector of the node's subspace (`None`
    /// if the subspace is trivial).
    fn random_combination(&mut self) -> Option<Gf2Vector> {
        let rows = self.basis.rows();
        if rows.is_empty() {
            return None;
        }
        // Random subset of basis rows; retry on the (probability 2^-rank)
        // zero combination by forcing one row in.
        let mut combo = Gf2Vector::zero(self.basis.dim());
        for row in rows {
            if self.rng.gen_bool(0.5) {
                combo.xor_assign(row);
            }
        }
        if combo.is_zero() {
            let idx = self.rng.gen_range(0..rows.len());
            combo = rows[idx].clone();
        }
        Some(combo)
    }
}

impl BroadcastProtocol for RlncNode {
    type Msg = CodedMsg;

    fn broadcast(&mut self, _round: Round) -> Option<CodedMsg> {
        // Keep broadcasting until everyone is done; the simulator's global
        // observer terminates the run (matching the coded-gossip analyses,
        // which bound rounds, not a distributed stopping rule).
        self.random_combination().map(CodedMsg)
    }

    fn receive(&mut self, _round: Round, _from: NodeId, msg: &CodedMsg) {
        if self.basis.insert(msg.0.clone()) {
            self.refresh_decoded();
        }
    }

    fn known_tokens(&self) -> &TokenSet {
        &self.decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};
    use dynspread_graph::Graph;
    use dynspread_sim::sim::{BroadcastSim, SimConfig};

    fn run_rlnc<A>(
        assignment: &TokenAssignment,
        adversary: A,
        max_rounds: Round,
    ) -> dynspread_sim::RunReport
    where
        A: dynspread_sim::adversary::BroadcastAdversary<CodedMsg>,
    {
        let mut sim = BroadcastSim::new(
            "rlnc-gossip",
            RlncNode::nodes(assignment, 77),
            adversary,
            assignment,
            SimConfig::with_max_rounds(max_rounds),
        );
        // Completion = full rank everywhere = all tokens decoded everywhere.
        sim.run_to_completion()
    }

    #[test]
    fn coded_msg_is_one_token_payload() {
        let m = CodedMsg(Gf2Vector::unit(4, 1));
        assert_eq!(m.token_count(), 1);
        assert_eq!(m.class(), MessageClass::Token);
    }

    #[test]
    fn rlnc_completes_n_gossip_on_static_clique() {
        let n = 12;
        let a = TokenAssignment::n_gossip(n);
        let report = run_rlnc(&a, StaticAdversary::new(Graph::complete(n)), 10_000);
        assert!(report.completed, "{report}");
    }

    #[test]
    fn rlnc_completes_under_rewiring() {
        let n = 12;
        let a = TokenAssignment::n_gossip(n);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 1, 5);
        let report = run_rlnc(&a, adv, 50_000);
        assert!(report.completed, "{report}");
    }

    #[test]
    fn rlnc_round_complexity_is_near_linear() {
        // O(n + k) rounds on dynamic graphs (here n = k): far below the
        // token-forwarding Ω(nk/log n) barrier.
        let n = 16;
        let a = TokenAssignment::n_gossip(n);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 1, 9);
        let report = run_rlnc(&a, adv, 50_000);
        assert!(report.completed);
        let budget = 12 * (n + n) as u64; // generous constant
        assert!(
            report.rounds <= budget,
            "RLNC took {} rounds > {budget}",
            report.rounds
        );
    }

    #[test]
    fn decoded_set_grows_monotonically_to_full() {
        let n = 10;
        let a = TokenAssignment::n_gossip(n);
        let mut sim = BroadcastSim::new(
            "rlnc",
            RlncNode::nodes(&a, 3),
            StaticAdversary::new(Graph::cycle(n)),
            &a,
            SimConfig::with_max_rounds(10_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed);
        for v in NodeId::all(n) {
            assert_eq!(sim.node(v).rank(), n);
            assert!(sim.node(v).known_tokens().is_full());
        }
        // Learnings are exactly n(n−1): decoding milestones counted once.
        assert_eq!(report.learnings, (n * (n - 1)) as u64);
    }

    #[test]
    fn single_holder_node_broadcasts_its_unit() {
        let a = TokenAssignment::n_gossip(3);
        let mut node = RlncNode::new(NodeId::new(1), &a, 1);
        let msg = node.broadcast(1).expect("has a vector");
        assert_eq!(msg.0, Gf2Vector::unit(3, 1));
        // A node with nothing stays silent.
        let empty_assignment = TokenAssignment::single_source(3, 2, NodeId::new(0));
        let mut empty = RlncNode::new(NodeId::new(2), &empty_assignment, 1);
        assert!(empty.broadcast(1).is_none());
    }
}
