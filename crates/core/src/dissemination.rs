//! Transport-agnostic decision state of the token-dissemination algorithms.
//!
//! Algorithm 1 and its multi-source extension are specified over
//! synchronous rounds, but their *decisions* — which tokens are still
//! worth requesting, which peers are known complete, who has been informed
//! of our own completeness — do not depend on the round structure at all.
//! This module extracts that state so the same logic drives both
//! execution models:
//!
//! * the round-based [`UnicastProtocol`](dynspread_sim::protocol::UnicastProtocol)
//!   nodes ([`SingleSourceNode`](crate::single_source::SingleSourceNode),
//!   [`MultiSourceNode`](crate::multi_source::MultiSourceNode)), where one
//!   request is assigned per eligible edge per round and reliability is
//!   the model's (every sent message arrives);
//! * the asynchronous `EventProtocol` ports in `dynspread-runtime`
//!   (`AsyncSingleSource`, `AsyncMultiSource`), where the same assignment
//!   engine feeds per-neighbor retransmission windows and reliability is
//!   the protocol's (explicit retransmission + receiver-side dedup).
//!
//! Two pieces:
//!
//! * [`DisseminationCore`] — token knowledge `K_v`, the in-flight request
//!   set, and the distinct-missing-token assignment queue ("assign each
//!   eligible channel a *different* missing token, consumed front to
//!   back" — Algorithm 1 lines 13–19).
//! * [`CompletenessLedger`] — the paper's `R_v` (whom we have informed of
//!   our completeness) and `S_v` (who announced completeness to us), both
//!   *monotone*: bits are only ever set. In the async port `R_v` doubles
//!   as acknowledgment state (set on `Ack`, not on send), which is what
//!   makes announcement retransmission idempotent.

use dynspread_graph::NodeId;
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};

/// Token knowledge plus the distinct-missing-token request assigner shared
/// by every dissemination protocol, round-based or asynchronous.
///
/// # Examples
///
/// ```
/// use dynspread_core::dissemination::DisseminationCore;
/// use dynspread_graph::NodeId;
/// use dynspread_sim::token::{TokenAssignment, TokenId};
///
/// let a = TokenAssignment::single_source(3, 2, NodeId::new(0));
/// let mut core = DisseminationCore::from_assignment(NodeId::new(1), &a);
/// assert!(!core.is_complete());
///
/// // Assign distinct missing tokens to two channels.
/// core.refill();
/// let first = core.assign_next().unwrap();
/// let second = core.assign_next().unwrap();
/// assert_ne!(first, second);
/// assert!(core.assign_next().is_none());
///
/// // The answered token leaves the in-flight set; the other stays.
/// assert!(core.accept_token(first));
/// core.release(first);
/// core.refill();
/// assert!(core.assign_next().is_none(), "t1 is still in flight");
/// ```
#[derive(Clone, Debug)]
pub struct DisseminationCore {
    /// `K_v`: the tokens this node holds. Monotone — tokens are never
    /// forgotten.
    know: TokenSet,
    /// Tokens with an outstanding (live) request on some channel.
    in_flight: TokenSet,
    /// Requestable tokens of the current assignment pass, consumed front
    /// to back (reused across passes to avoid per-pass allocation).
    queue: Vec<TokenId>,
    /// Next unassigned index into `queue`.
    cursor: usize,
}

impl DisseminationCore {
    /// Creates the core for node `v` with its initial knowledge from
    /// `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the assignment.
    pub fn from_assignment(v: NodeId, assignment: &TokenAssignment) -> Self {
        assert!(v.index() < assignment.node_count(), "node out of range");
        DisseminationCore::with_knowledge(assignment.initial_knowledge(v))
    }

    /// Creates the core with an explicit knowledge set (phase handoffs and
    /// tests).
    pub fn with_knowledge(know: TokenSet) -> Self {
        DisseminationCore {
            in_flight: TokenSet::new(know.universe()),
            know,
            queue: Vec::new(),
            cursor: 0,
        }
    }

    /// The node's current token knowledge `K_v`.
    pub fn known_tokens(&self) -> &TokenSet {
        &self.know
    }

    /// Whether the node is complete (Definition 3.1).
    pub fn is_complete(&self) -> bool {
        self.know.is_full()
    }

    /// Applies a received token: inserts it into `K_v`, returning whether
    /// it was new. Duplicate deliveries (retransmissions, duplicating
    /// links) return `false` — application is at-most-once by
    /// construction.
    pub fn accept_token(&mut self, t: TokenId) -> bool {
        self.know.insert(t)
    }

    /// Whether `t` currently has an outstanding request on some channel.
    pub fn in_flight(&self, t: TokenId) -> bool {
        self.in_flight.contains(t)
    }

    /// Retires an outstanding request for `t`: the token arrived (or its
    /// channel died), so it becomes assignable again.
    pub fn release(&mut self, t: TokenId) {
        self.in_flight.remove(t);
    }

    /// Mutable access to the in-flight set, for callers that keep it in
    /// sync with their own channel bookkeeping (the round-based nodes'
    /// [`EdgeTracker`](crate::edge_history::EdgeTracker) drains dead
    /// edges' pending queues directly into it).
    pub fn in_flight_mut(&mut self) -> &mut TokenSet {
        &mut self.in_flight
    }

    /// Starts an assignment pass over **all** missing tokens without an
    /// outstanding request, in increasing token order.
    pub fn refill(&mut self) {
        self.queue.clear();
        self.cursor = 0;
        let in_flight = &self.in_flight;
        // Split borrows: `queue` is disjoint from `know`/`in_flight`.
        let know = &self.know;
        self.queue
            .extend(know.missing().filter(|&t| !in_flight.contains(t)));
    }

    /// Starts an assignment pass over the requestable subset of
    /// `candidates` (missing and not in flight), preserving their order —
    /// the multi-source algorithms restrict each pass to the active
    /// source's tokens.
    pub fn refill_from(&mut self, candidates: &[TokenId]) {
        self.queue.clear();
        self.cursor = 0;
        let know = &self.know;
        let in_flight = &self.in_flight;
        self.queue.extend(
            candidates
                .iter()
                .copied()
                .filter(|&t| !know.contains(t) && !in_flight.contains(t)),
        );
    }

    /// Whether the current pass has tokens left to assign.
    pub fn has_assignable(&self) -> bool {
        self.cursor < self.queue.len()
    }

    /// Assigns the next token of the current pass to a channel: marks it
    /// in flight and returns it, or `None` when the pass is exhausted.
    /// Successive calls within one pass always return *distinct* tokens.
    pub fn assign_next(&mut self) -> Option<TokenId> {
        let t = *self.queue.get(self.cursor)?;
        self.cursor += 1;
        self.in_flight.insert(t);
        Some(t)
    }
}

/// The paper's per-node completeness bookkeeping: `R_v` (informed peers)
/// and `S_v` (peers known to be complete), as monotone bit vectors.
///
/// The single-source algorithm keeps one ledger; the multi-source
/// algorithms keep one per source (`R_v(x)`, `S_v(x)`). The asynchronous
/// ports reuse `R_v` as *acknowledgment* state: a peer is marked informed
/// only when its `Ack` arrives, so unacked announcements keep being
/// retransmitted and the at-most-once "announce ever" budget of the
/// synchronous algorithm becomes an at-most-once *acknowledged* budget.
///
/// # Examples
///
/// ```
/// use dynspread_core::dissemination::CompletenessLedger;
/// use dynspread_graph::NodeId;
///
/// let mut ledger = CompletenessLedger::new(3);
/// let u = NodeId::new(2);
/// assert!(ledger.note_peer_complete(u), "first announcement is news");
/// assert!(!ledger.note_peer_complete(u), "repeats are not");
/// assert!(ledger.peer_complete(u));
/// assert!(ledger.needs_inform(u));
/// assert!(ledger.mark_informed(u));
/// assert!(!ledger.needs_inform(u));
/// ```
#[derive(Clone, Debug)]
pub struct CompletenessLedger {
    /// Number of nodes the ledger covers.
    n: usize,
    /// `R_v`: peers informed of (async: that acknowledged) our
    /// completeness, word-packed (bit `i % 64` of word `i / 64`).
    informed: Vec<u64>,
    /// `S_v`: peers that announced completeness to us, word-packed.
    known_complete: Vec<u64>,
}

/// Sets bit `i`; returns `true` iff it was previously clear.
#[inline]
fn set_bit(words: &mut [u64], i: usize) -> bool {
    let mask = 1u64 << (i % 64);
    let was = words[i / 64] & mask != 0;
    words[i / 64] |= mask;
    !was
}

#[inline]
fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

impl CompletenessLedger {
    /// Creates an empty ledger for an `n`-node network.
    ///
    /// Word-packed: a ledger costs `2 ⌈n/64⌉` words per node instead of
    /// `2n` bytes — the difference between 16 MB and 134 MB of ledger
    /// state across all nodes at `n = 8192`.
    pub fn new(n: usize) -> Self {
        CompletenessLedger {
            n,
            informed: vec![0; n.div_ceil(64)],
            known_complete: vec![0; n.div_ceil(64)],
        }
    }

    /// Records that `u` announced its completeness. Returns `true` iff
    /// this was news (monotone: never unset).
    pub fn note_peer_complete(&mut self, u: NodeId) -> bool {
        debug_assert!(u.index() < self.n, "{u} out of range");
        set_bit(&mut self.known_complete, u.index())
    }

    /// Whether `u` is known to be complete (`u ∈ S_v`).
    pub fn peer_complete(&self, u: NodeId) -> bool {
        debug_assert!(u.index() < self.n, "{u} out of range");
        get_bit(&self.known_complete, u.index())
    }

    /// Whether any peer is known complete (`S_v ≠ ∅`).
    pub fn any_peer_complete(&self) -> bool {
        self.known_complete.iter().any(|&w| w != 0)
    }

    /// The peers known complete, in increasing ID order.
    pub fn complete_peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.known_complete
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| {
                // Peel set bits low-to-high: `w & (w - 1)` clears the
                // lowest one.
                std::iter::successors((word != 0).then_some(word), |&w| {
                    let rest = w & (w - 1);
                    (rest != 0).then_some(rest)
                })
                .map(move |w| NodeId::new((wi * 64) as u32 + w.trailing_zeros()))
            })
    }

    /// Whether `u` still needs to be informed of our completeness
    /// (`u ∉ R_v`).
    pub fn needs_inform(&self, u: NodeId) -> bool {
        debug_assert!(u.index() < self.n, "{u} out of range");
        !get_bit(&self.informed, u.index())
    }

    /// Records that `u` has been informed (async: has acknowledged).
    /// Returns `true` iff this was news (monotone: never unset).
    pub fn mark_informed(&mut self, u: NodeId) -> bool {
        debug_assert!(u.index() < self.n, "{u} out of range");
        set_bit(&mut self.informed, u.index())
    }

    /// Number of informed peers — monotone over any execution.
    pub fn informed_count(&self) -> usize {
        self.informed.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Forgets everything: clears both `R_v` and `S_v`.
    ///
    /// This models **crash-amnesia** in the fault harness — the ledgers
    /// are volatile state, so a node rejoining without a durable snapshot
    /// starts them blank and re-earns every bit through the announce/ack
    /// and probe paths (both idempotent, so peers tolerate the repeats).
    /// The monotonicity contract above holds *within one incarnation* of
    /// the node; `reset` is the incarnation boundary.
    pub fn reset(&mut self) {
        self.informed.fill(0);
        self.known_complete.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn assignment_pass_is_distinct_and_in_order() {
        let a = TokenAssignment::single_source(2, 5, NodeId::new(0));
        let mut core = DisseminationCore::from_assignment(NodeId::new(1), &a);
        core.refill();
        let pass: Vec<TokenId> = std::iter::from_fn(|| core.assign_next()).collect();
        assert_eq!(pass, (0..5).map(tid).collect::<Vec<_>>());
        // Everything is now in flight: a fresh pass assigns nothing.
        core.refill();
        assert!(!core.has_assignable());
        assert!(core.assign_next().is_none());
    }

    #[test]
    fn release_makes_tokens_assignable_again() {
        let a = TokenAssignment::single_source(2, 3, NodeId::new(0));
        let mut core = DisseminationCore::from_assignment(NodeId::new(1), &a);
        core.refill();
        while core.assign_next().is_some() {}
        core.release(tid(1));
        core.refill();
        assert_eq!(core.assign_next(), Some(tid(1)));
        assert_eq!(core.assign_next(), None);
    }

    #[test]
    fn accept_token_is_at_most_once() {
        let a = TokenAssignment::single_source(2, 2, NodeId::new(0));
        let mut core = DisseminationCore::from_assignment(NodeId::new(1), &a);
        assert!(core.accept_token(tid(0)));
        assert!(!core.accept_token(tid(0)), "duplicate application");
        assert!(!core.is_complete());
        assert!(core.accept_token(tid(1)));
        assert!(core.is_complete());
    }

    #[test]
    fn refill_from_respects_scope_and_flight() {
        let a = TokenAssignment::round_robin_sources(3, 4, 2);
        let mut core = DisseminationCore::from_assignment(NodeId::new(2), &a);
        // Scope: tokens {0, 2} (source 0's tokens under round-robin s=2).
        core.refill_from(&[tid(0), tid(2)]);
        assert_eq!(core.assign_next(), Some(tid(0)));
        assert_eq!(core.assign_next(), Some(tid(2)));
        assert_eq!(core.assign_next(), None);
        // Both in flight now; the full refill only offers {1, 3}.
        core.refill();
        assert_eq!(core.assign_next(), Some(tid(1)));
        assert_eq!(core.assign_next(), Some(tid(3)));
    }

    #[test]
    fn source_is_born_complete() {
        let a = TokenAssignment::single_source(2, 4, NodeId::new(0));
        let core = DisseminationCore::from_assignment(NodeId::new(0), &a);
        assert!(core.is_complete());
        assert_eq!(core.known_tokens().count(), 4);
    }

    #[test]
    fn ledger_bit_iteration_crosses_word_boundaries() {
        let mut ledger = CompletenessLedger::new(200);
        let peers = [0u32, 63, 64, 127, 128, 199];
        for &p in peers.iter().rev() {
            assert!(ledger.note_peer_complete(NodeId::new(p)));
        }
        assert_eq!(
            ledger.complete_peers().collect::<Vec<_>>(),
            peers.iter().map(|&p| NodeId::new(p)).collect::<Vec<_>>(),
            "ascending ID order across words"
        );
        for &p in &peers {
            assert!(ledger.peer_complete(NodeId::new(p)));
            assert!(!ledger.note_peer_complete(NodeId::new(p)));
        }
        assert!(!ledger.peer_complete(NodeId::new(65)));
        assert_eq!(ledger.informed_count(), 0);
        assert!(ledger.mark_informed(NodeId::new(64)));
        assert!(ledger.mark_informed(NodeId::new(130)));
        assert_eq!(ledger.informed_count(), 2);
        assert!(!ledger.needs_inform(NodeId::new(64)));
        assert!(ledger.needs_inform(NodeId::new(63)));
    }

    #[test]
    fn ledger_reset_clears_both_sides() {
        let mut ledger = CompletenessLedger::new(70);
        assert!(ledger.note_peer_complete(NodeId::new(69)));
        assert!(ledger.mark_informed(NodeId::new(1)));
        ledger.reset();
        assert!(!ledger.any_peer_complete());
        assert_eq!(ledger.informed_count(), 0);
        assert!(ledger.needs_inform(NodeId::new(1)));
        // A fresh incarnation re-earns the bits normally.
        assert!(ledger.note_peer_complete(NodeId::new(69)));
    }

    #[test]
    fn ledger_is_monotone() {
        let mut ledger = CompletenessLedger::new(4);
        assert!(!ledger.any_peer_complete());
        assert!(ledger.note_peer_complete(NodeId::new(3)));
        assert!(ledger.any_peer_complete());
        assert_eq!(
            ledger.complete_peers().collect::<Vec<_>>(),
            vec![NodeId::new(3)]
        );
        assert_eq!(ledger.informed_count(), 0);
        assert!(ledger.mark_informed(NodeId::new(1)));
        assert!(!ledger.mark_informed(NodeId::new(1)));
        assert_eq!(ledger.informed_count(), 1);
    }
}
