//! Leader election under the adversary-competitive measure.
//!
//! The paper's conclusion proposes the adversary-competitive model as "a
//! useful alternative … in analyzing various other important problems such
//! as leader election and agreement in dynamic networks". This module
//! provides that extension: max-ID leader election on always-connected
//! dynamic graphs, in two message disciplines, with the Definition 1.3
//! accounting applied to both.
//!
//! * [`ElectionMode::Eager`] — every node broadcasts its current candidate
//!   every round: `Θ(n)` messages per round, `Θ(n²)` total for the `n`
//!   rounds needed in the worst case. Robust but wasteful.
//! * [`ElectionMode::OnChange`] — a node broadcasts in the round after
//!   its candidate improved, in the round after it heard a *lower*
//!   candidate (helping the laggard), and on a sparse heartbeat (once
//!   every `n` rounds, staggered by ID). The heartbeat is unavoidable: in
//!   the local-broadcast model a node discovers neighbors only by
//!   *receiving* from them, so a fully quiescent protocol can never react
//!   to a topology change. Heartbeats cost `≤ 1` amortized broadcast per
//!   round network-wide per `n` rounds; the reactive announcements are
//!   bounded by candidate improvements (`≤ n` per node) plus the lower-
//!   candidate repairs triggered by topological changes — the
//!   Definition 1.3 pattern again.
//!
//! Correctness: the eager mode converges within `n − 1` rounds outright
//! (by connectivity, the knower set of the max ID grows every round). The
//! on-change mode converges under any oblivious dynamics because a
//! non-converged cut eventually carries a heartbeat, which triggers a
//! repair announcement across it.

use dynspread_graph::{NodeId, Round};
use dynspread_sim::message::{MessageClass, MessagePayload};
use dynspread_sim::protocol::BroadcastProtocol;
use dynspread_sim::token::TokenSet;

/// A candidate announcement (an ID: `O(log n)` bits, a control message).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateMsg(pub NodeId);

impl MessagePayload for CandidateMsg {
    fn token_count(&self) -> usize {
        0
    }

    fn class(&self) -> MessageClass {
        MessageClass::Control
    }
}

/// Message discipline of the election protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElectionMode {
    /// Broadcast the candidate every round.
    Eager,
    /// Broadcast only after the candidate improved or the neighborhood
    /// changed (detected via received announcements from unknown senders).
    OnChange,
}

/// Per-node max-ID election state.
#[derive(Clone, Debug)]
pub struct ElectionNode {
    id: NodeId,
    n: u64,
    candidate: NodeId,
    mode: ElectionMode,
    /// Whether to broadcast next round (OnChange mode).
    announce_pending: bool,
    /// Empty token universe: the tracker plays no role in election runs.
    no_tokens: TokenSet,
}

impl ElectionNode {
    /// Creates node `v`.
    pub fn new(v: NodeId, n: usize, mode: ElectionMode) -> Self {
        ElectionNode {
            id: v,
            n: n as u64,
            candidate: v,
            mode,
            announce_pending: true,
            no_tokens: TokenSet::new(0),
        }
    }

    /// Builds all `n` node protocols.
    pub fn nodes(n: usize, mode: ElectionMode) -> Vec<ElectionNode> {
        NodeId::all(n)
            .map(|v| ElectionNode::new(v, n, mode))
            .collect()
    }

    /// This node's ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current leader candidate (the maximum ID it has seen).
    pub fn candidate(&self) -> NodeId {
        self.candidate
    }
}

impl BroadcastProtocol for ElectionNode {
    type Msg = CandidateMsg;

    fn broadcast(&mut self, round: Round) -> Option<CandidateMsg> {
        match self.mode {
            ElectionMode::Eager => Some(CandidateMsg(self.candidate)),
            ElectionMode::OnChange => {
                let heartbeat_due = round % self.n == self.id.value() as u64 % self.n;
                if self.announce_pending || heartbeat_due {
                    self.announce_pending = false;
                    Some(CandidateMsg(self.candidate))
                } else {
                    None
                }
            }
        }
    }

    fn receive(&mut self, _round: Round, _from: NodeId, msg: &CandidateMsg) {
        if msg.0 > self.candidate {
            self.candidate = msg.0;
            self.announce_pending = true;
        } else if msg.0 < self.candidate {
            // Help the laggard: announce our better candidate next round.
            self.announce_pending = true;
        }
    }

    fn known_tokens(&self) -> &TokenSet {
        &self.no_tokens
    }
}

/// Runs an election to convergence: all candidates equal `max ID = n − 1`.
///
/// Returns the run report (messages are all [`MessageClass::Control`]) and
/// whether the election converged within the round cap.
///
/// # Examples
///
/// ```
/// use dynspread_core::leader_election::{run_election, ElectionMode};
/// use dynspread_graph::{oblivious::StaticAdversary, Graph};
///
/// let (report, converged) = run_election(
///     6,
///     ElectionMode::Eager,
///     StaticAdversary::new(Graph::star(6)),
///     100,
/// );
/// assert!(converged);
/// assert!(report.rounds <= 6);
/// ```
pub fn run_election<A>(
    n: usize,
    mode: ElectionMode,
    adversary: A,
    max_rounds: Round,
) -> (dynspread_sim::RunReport, bool)
where
    A: dynspread_sim::adversary::BroadcastAdversary<CandidateMsg>,
{
    use dynspread_sim::sim::{BroadcastSim, SimConfig};
    use dynspread_sim::token::TokenAssignment;

    let assignment = TokenAssignment::empty(n, 0);
    let leader = NodeId::new(n as u32 - 1);
    let mut sim = BroadcastSim::new(
        match mode {
            ElectionMode::Eager => "election(eager)",
            ElectionMode::OnChange => "election(on-change)",
        },
        ElectionNode::nodes(n, mode),
        adversary,
        &assignment,
        SimConfig::with_max_rounds(max_rounds),
    );
    let report = sim.run_until(|s| s.nodes().iter().all(|node| node.candidate() == leader));
    let converged = sim.nodes().iter().all(|node| node.candidate() == leader);
    (report, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::{
        ChurnAdversary, EdgeMarkovian, PeriodicRewiring, StaticAdversary,
    };
    use dynspread_graph::Graph;

    #[test]
    fn candidate_msg_is_control_traffic() {
        let m = CandidateMsg(NodeId::new(3));
        assert_eq!(m.token_count(), 0);
        assert_eq!(m.class(), MessageClass::Control);
    }

    #[test]
    fn eager_converges_on_static_path_in_n_rounds() {
        let n = 12;
        let (report, converged) = run_election(
            n,
            ElectionMode::Eager,
            StaticAdversary::new(Graph::path(n)),
            1000,
        );
        assert!(converged);
        // Max ID sits at one end of the path: exactly n−1 rounds.
        assert_eq!(report.rounds, (n - 1) as Round);
        // Eager cost: n broadcasts per round.
        assert_eq!(report.total_messages, ((n - 1) * n) as u64);
    }

    #[test]
    fn on_change_converges_and_is_cheaper_on_static_graphs() {
        // Max ID at the path's end is the worst case for both modes; the
        // on-change mode still strictly undercuts eager, and the gap grows
        // on low-diameter topologies.
        let n = 16;
        let (eager, c1) = run_election(
            n,
            ElectionMode::Eager,
            StaticAdversary::new(Graph::path(n)),
            1000,
        );
        let (lazy, c2) = run_election(
            n,
            ElectionMode::OnChange,
            StaticAdversary::new(Graph::path(n)),
            1000,
        );
        assert!(c1 && c2);
        assert!(
            lazy.total_messages < eager.total_messages,
            "on-change ({}) should undercut eager ({}) on the path",
            lazy.total_messages,
            eager.total_messages
        );
        // Star: eager pays n per round; on-change pays ~2 announcements per
        // node total.
        let (eager_star, c3) = run_election(
            n,
            ElectionMode::Eager,
            StaticAdversary::new(Graph::star(n)),
            1000,
        );
        let (lazy_star, c4) = run_election(
            n,
            ElectionMode::OnChange,
            StaticAdversary::new(Graph::star(n)),
            1000,
        );
        assert!(c3 && c4);
        assert!(
            lazy_star.total_messages <= eager_star.total_messages,
            "on-change ({}) vs eager ({}) on the star",
            lazy_star.total_messages,
            eager_star.total_messages
        );
    }

    #[test]
    fn both_modes_converge_under_rewiring() {
        for mode in [ElectionMode::Eager, ElectionMode::OnChange] {
            let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 5);
            let (report, converged) = run_election(14, mode, adv, 20_000);
            assert!(converged, "{mode:?} failed: {report}");
        }
    }

    #[test]
    fn both_modes_converge_under_churn_and_markovian_dynamics() {
        for mode in [ElectionMode::Eager, ElectionMode::OnChange] {
            let adv = ChurnAdversary::new(Topology::SparseConnected(2.0), 2, 3, 7);
            let (_, converged) = run_election(12, mode, adv, 50_000);
            assert!(converged, "{mode:?} failed under churn");
            let adv = EdgeMarkovian::new(0.1, 0.2, 2, 9);
            let (_, converged) = run_election(12, mode, adv, 50_000);
            assert!(converged, "{mode:?} failed under edge-Markovian dynamics");
        }
    }

    #[test]
    fn on_change_competitive_residual_is_small_under_heavy_churn() {
        // The extra re-announcements of the on-change mode are triggered by
        // topology changes; Definition 1.3 prices them against TC(E).
        let n = 16;
        let adv = EdgeMarkovian::new(0.15, 0.3, 1, 11);
        let (report, converged) = run_election(n, ElectionMode::OnChange, adv, 50_000);
        assert!(converged);
        let residual = report.total_messages as f64 - report.tc() as f64;
        assert!(
            residual <= (4 * n * n) as f64,
            "residual {residual} exceeds 4n²: {report}"
        );
    }

    #[test]
    fn single_node_is_its_own_leader() {
        let (report, converged) = run_election(
            1,
            ElectionMode::OnChange,
            StaticAdversary::new(Graph::empty(1)),
            10,
        );
        assert!(converged);
        assert_eq!(report.rounds, 0);
    }
}
