//! The Oblivious-Multi-Source-Unicast algorithm (Algorithm 2,
//! Section 3.2.2).
//!
//! For instances with many sources (`s > n^{2/3} log^{5/3} n`) and few
//! tokens (`k = o(n²)`), the Multi-Source algorithm's `O(n²s)` announcement
//! cost dominates. Against an **oblivious** adversary, Algorithm 2 first
//! *reduces the number of sources*:
//!
//! * **Phase 1** — each node marks itself a *center* with probability
//!   `f/n`, where `f = n^{1/2} k^{1/4} log^{5/4} n`. Every token performs a
//!   lazy random walk on the virtual `n`-regular multigraph (a node of
//!   degree `d` forwards a token with probability `d/n`, staying put
//!   otherwise; at most one walk step per edge per round — congested tokens
//!   are *passive*). Nodes whose degree is at least `γ = (n log n)/f` are
//!   *high-degree*: w.h.p. they have a neighboring center, and they hand
//!   one owned token per neighboring center per round. A token that
//!   reaches a center stays there.
//! * **Phase 2** — run Multi-Source-Unicast with the centers as sources.
//!
//! Theorem 3.8: total message complexity `O(n^{5/2} k^{1/4} log^{5/4} n)`,
//! i.e. amortized `O(n^{5/2} log^{5/4} n / k^{3/4})` — Table 1.
//!
//! ## Reproduction notes (see DESIGN.md)
//!
//! * Centers announce themselves once per inserted adjacent edge (class
//!   [`MessageClass::CenterAnnounce`]); this cost is bounded by `TC(E)` and
//!   reported separately. The paper assumes neighboring centers are
//!   recognizable but does not charge for it.
//! * The paper runs phase 1 for a fixed `ℓ = k^{1/4} n^{5/2} log^{9/4} n`
//!   rounds, chosen so every walk hits a center w.h.p. We stop phase 1 as
//!   soon as every token is owned by a center (global observation), with
//!   `ℓ` as a configurable hard cap; any token still in transit at the cap
//!   makes its current owner a phase-2 source (a conservative fallback).
//! * At laptop scale the paper's asymptotic constants make `f/n ≥ 1`;
//!   [`ObliviousConfig::center_probability`] optionally overrides the
//!   center-election probability so experiments can sweep it.

use crate::multi_source::{MultiSourceNode, SourceMap};
use crate::walk::{elect_centers, WalkCore};
use dynspread_graph::adversary::Adversary;
use dynspread_graph::{NodeId, Round};
use dynspread_sim::message::{MessageClass, MessagePayload};
use dynspread_sim::protocol::{Outbox, UnicastProtocol};
use dynspread_sim::sim::{SimConfig, UnicastSim};
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};
use dynspread_sim::RunReport;
use std::sync::Arc;

/// The paper's source-count threshold `n^{2/3} log^{5/3} n` below which
/// plain Multi-Source-Unicast is used (natural logarithm).
pub fn source_threshold(n: usize) -> f64 {
    let n = n as f64;
    n.powf(2.0 / 3.0) * n.ln().max(1.0).powf(5.0 / 3.0)
}

/// The paper's center count `f = n^{1/2} k^{1/4} log^{5/4} n`.
pub fn center_count(n: usize, k: usize) -> f64 {
    let nf = n as f64;
    nf.sqrt() * (k as f64).powf(0.25) * nf.ln().max(1.0).powf(1.25)
}

/// The paper's degree threshold `γ = (n log n)/f` separating low- from
/// high-degree nodes in phase 1.
pub fn degree_threshold(n: usize, f: f64) -> f64 {
    let nf = n as f64;
    nf * nf.ln().max(1.0) / f.max(1.0)
}

/// Messages of phase 1 (the random-walk phase).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalkMsg {
    /// "I am a center" — sent once per inserted adjacent edge.
    CenterAnnounce,
    /// One random-walk step of a token (ownership moves with it).
    Walk(TokenId),
}

impl MessagePayload for WalkMsg {
    fn token_count(&self) -> usize {
        match self {
            WalkMsg::Walk(_) => 1,
            WalkMsg::CenterAnnounce => 0,
        }
    }

    fn class(&self) -> MessageClass {
        match self {
            WalkMsg::Walk(_) => MessageClass::Walk,
            WalkMsg::CenterAnnounce => MessageClass::CenterAnnounce,
        }
    }
}

/// Per-node protocol of phase 1.
///
/// Non-center nodes forward their owned tokens as lazy random-walk steps;
/// centers collect every token they receive and never forward. The
/// decisions live in the transport-agnostic [`WalkCore`] (shared with the
/// asynchronous `AsyncOblivious` port in `dynspread-runtime`); this type
/// adds the round-model carriage: steps are sent and delivered within the
/// round, so every planned transfer detaches ownership immediately.
#[derive(Clone, Debug)]
pub struct WalkNode {
    core: WalkCore,
    prev_neighbors: Vec<NodeId>,
}

impl WalkNode {
    /// Creates node `v`. `gamma` is the high-degree threshold; `seed` is
    /// the shared seed the node's private walk randomness is split from.
    pub fn new(
        v: NodeId,
        assignment: &TokenAssignment,
        is_center: bool,
        gamma: f64,
        seed: u64,
    ) -> Self {
        WalkNode {
            core: WalkCore::new(
                v,
                assignment.initial_knowledge(v),
                is_center,
                assignment.node_count(),
                gamma,
                seed,
            ),
            prev_neighbors: Vec::new(),
        }
    }

    /// Whether this node is a center.
    pub fn is_center(&self) -> bool {
        self.core.is_center()
    }

    /// This node's ID.
    pub fn id(&self) -> NodeId {
        self.core.id()
    }

    /// Number of tokens owned and still *in transit* (0 for centers, whose
    /// holdings are final).
    pub fn tokens_in_transit(&self) -> usize {
        self.core.tokens_in_transit()
    }

    /// The tokens this node currently owns.
    pub fn owned_tokens(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.core.responsible_tokens()
    }
}

impl UnicastProtocol for WalkNode {
    type Msg = WalkMsg;

    fn send(&mut self, _round: Round, neighbors: &[NodeId], out: &mut Outbox<WalkMsg>) {
        // Center self-announcement, once per inserted adjacent edge.
        if self.core.is_center() {
            for &u in neighbors {
                if self.prev_neighbors.binary_search(&u).is_err() {
                    out.send(u, WalkMsg::CenterAnnounce);
                }
            }
        }
        self.prev_neighbors = neighbors.to_vec();
        // Round model: delivery is certain, so every planned step is sent
        // and ownership detaches with it.
        self.core.plan(neighbors, true, |u, t| {
            out.send(u, WalkMsg::Walk(t));
            true
        });
    }

    fn receive(&mut self, _round: Round, from: NodeId, msg: &WalkMsg) {
        match msg {
            WalkMsg::CenterAnnounce => {
                self.core.note_center(from);
            }
            WalkMsg::Walk(t) => {
                self.core.accept(*t);
            }
        }
    }

    fn known_tokens(&self) -> &TokenSet {
        self.core.known_tokens()
    }
}

/// Configuration of the two-phase oblivious algorithm.
#[derive(Clone, Debug)]
pub struct ObliviousConfig {
    /// Seed for center election and walk randomness.
    pub seed: u64,
    /// Hard cap on phase-1 rounds (the paper's `ℓ`); phase 1 also stops as
    /// soon as every token is center-owned.
    pub phase1_max_rounds: Round,
    /// Hard cap on phase-2 rounds.
    pub phase2_max_rounds: Round,
    /// Override for the center-election probability (default `f/n` with
    /// the paper's `f`, clamped to `[0, 1]`).
    pub center_probability: Option<f64>,
    /// Override for the high-degree threshold γ (default `(n log n)/f`).
    pub degree_threshold: Option<f64>,
    /// Override for the source-count threshold deciding whether phase 1
    /// runs at all (default `n^{2/3} log^{5/3} n`).
    pub source_threshold: Option<f64>,
}

impl Default for ObliviousConfig {
    fn default() -> Self {
        ObliviousConfig {
            seed: 0,
            phase1_max_rounds: 200_000,
            phase2_max_rounds: 1_000_000,
            center_probability: None,
            degree_threshold: None,
            source_threshold: None,
        }
    }
}

/// Result of a full two-phase run.
#[derive(Clone, Debug)]
pub struct ObliviousOutcome {
    /// Phase-1 report (absent when the source count was below threshold
    /// and the algorithm went straight to Multi-Source).
    pub phase1: Option<RunReport>,
    /// Phase-2 (Multi-Source) report.
    pub phase2: RunReport,
    /// The elected centers (or the original sources if phase 1 was
    /// skipped).
    pub centers: Vec<NodeId>,
    /// Tokens still in transit when phase 1 hit its round cap (their
    /// owners became fallback phase-2 sources).
    pub stranded_tokens: usize,
}

impl ObliviousOutcome {
    /// Total messages across both phases.
    pub fn total_messages(&self) -> u64 {
        self.phase2.total_messages + self.phase1.as_ref().map_or(0, |r| r.total_messages)
    }

    /// Total rounds across both phases.
    pub fn total_rounds(&self) -> Round {
        self.phase2.rounds + self.phase1.as_ref().map_or(0, |r| r.rounds)
    }

    /// Total `TC(E)` across both phases.
    pub fn total_tc(&self) -> u64 {
        self.phase2.tc() + self.phase1.as_ref().map_or(0, |r| r.tc())
    }

    /// Amortized messages per token.
    pub fn amortized(&self) -> f64 {
        self.total_messages() as f64 / self.phase2.k.max(1) as f64
    }

    /// Whether dissemination completed.
    pub fn completed(&self) -> bool {
        self.phase2.completed
    }
}

/// Runs the full Oblivious-Multi-Source-Unicast algorithm.
///
/// `adversary1` drives phase 1 and `adversary2` phase 2; both must be
/// oblivious (they implement the state-blind [`Adversary`] trait, which is
/// exactly the obliviousness guarantee).
///
/// # Examples
///
/// ```
/// use dynspread_core::oblivious::{run_oblivious_multi_source, ObliviousConfig};
/// use dynspread_graph::{generators::Topology, oblivious::PeriodicRewiring};
/// use dynspread_sim::TokenAssignment;
///
/// // n-gossip with every node a source; force the two-phase path at this
/// // small scale and elect ~25% of nodes as centers.
/// let assignment = TokenAssignment::n_gossip(12);
/// let cfg = ObliviousConfig {
///     seed: 7,
///     source_threshold: Some(1.0),
///     center_probability: Some(0.25),
///     ..ObliviousConfig::default()
/// };
/// let out = run_oblivious_multi_source(
///     &assignment,
///     PeriodicRewiring::new(Topology::Gnp(0.3), 3, 1),
///     PeriodicRewiring::new(Topology::RandomTree, 3, 2),
///     &cfg,
/// );
/// assert!(out.completed());
/// assert!(!out.centers.is_empty());
/// ```
///
/// # Panics
///
/// Panics if the assignment gives any token more than one initial holder.
pub fn run_oblivious_multi_source<A1, A2>(
    assignment: &TokenAssignment,
    adversary1: A1,
    adversary2: A2,
    cfg: &ObliviousConfig,
) -> ObliviousOutcome
where
    A1: Adversary,
    A2: Adversary,
{
    let n = assignment.node_count();
    let k = assignment.token_count();
    let s = assignment.sources().len();
    let threshold = cfg.source_threshold.unwrap_or_else(|| source_threshold(n));

    if (s as f64) <= threshold {
        // Few sources: Multi-Source-Unicast directly (the paper's line 1-2).
        let (nodes, _map) = MultiSourceNode::nodes(assignment);
        let mut sim = UnicastSim::new(
            "oblivious-multi-source(direct)",
            nodes,
            adversary2,
            assignment,
            SimConfig::with_max_rounds(cfg.phase2_max_rounds),
        );
        let phase2 = sim.run_to_completion();
        return ObliviousOutcome {
            phase1: None,
            phase2,
            centers: assignment.sources(),
            stranded_tokens: 0,
        };
    }

    // ---- Phase 1: reduce the number of sources to the centers. ----
    let f = center_count(n, k);
    let p_center = cfg
        .center_probability
        .unwrap_or_else(|| (f / n as f64).min(1.0));
    let gamma = cfg
        .degree_threshold
        .unwrap_or_else(|| degree_threshold(n, f));
    let is_center = elect_centers(n, p_center, cfg.seed);
    let nodes: Vec<WalkNode> = NodeId::all(n)
        .map(|v| WalkNode::new(v, assignment, is_center[v.index()], gamma, cfg.seed))
        .collect();
    let mut sim1 = UnicastSim::new(
        "oblivious-multi-source(phase1)",
        nodes,
        adversary1,
        assignment,
        SimConfig::with_max_rounds(cfg.phase1_max_rounds),
    );
    let phase1 = sim1.run_until(|s| s.nodes().iter().all(|node| node.tokens_in_transit() == 0));

    // ---- Hand-off: ownership + knowledge snapshot. ----
    let mut ownership = TokenAssignment::empty(n, k);
    let mut knowledge = TokenAssignment::empty(n, k);
    let mut stranded = 0usize;
    for node in sim1.nodes() {
        for t in node.owned_tokens() {
            ownership.add_holder(t, node.id());
            if !node.is_center() {
                stranded += 1;
            }
        }
        for t in node.known_tokens().iter() {
            knowledge.add_holder(t, node.id());
        }
    }
    debug_assert!(ownership.is_valid(), "every token must have an owner");
    let map = Arc::new(SourceMap::from_assignment(&ownership));
    let centers: Vec<NodeId> = NodeId::all(n).filter(|v| is_center[v.index()]).collect();

    // ---- Phase 2: Multi-Source-Unicast from the centers. ----
    let nodes2: Vec<MultiSourceNode> = sim1
        .nodes()
        .iter()
        .map(|node| {
            MultiSourceNode::with_knowledge(
                node.id(),
                n,
                node.known_tokens().clone(),
                Arc::clone(&map),
            )
        })
        .collect();
    let mut sim2 = UnicastSim::new(
        "oblivious-multi-source(phase2)",
        nodes2,
        adversary2,
        &knowledge,
        SimConfig::with_max_rounds(cfg.phase2_max_rounds),
    );
    let phase2 = sim2.run_to_completion();

    ObliviousOutcome {
        phase1: Some(phase1),
        phase2,
        centers,
        stranded_tokens: stranded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};
    use dynspread_graph::Graph;

    #[test]
    fn parameter_formulas_match_paper() {
        let n = 1024usize;
        // s-threshold = n^{2/3} (ln n)^{5/3}.
        let thr = source_threshold(n);
        let expect = (1024f64).powf(2.0 / 3.0) * (1024f64).ln().powf(5.0 / 3.0);
        assert!((thr - expect).abs() < 1e-6);
        // f = √n k^{1/4} (ln n)^{5/4}, γ = n ln n / f.
        let f = center_count(n, 256);
        let expect_f = 32.0 * 4.0 * (1024f64).ln().powf(1.25);
        assert!((f - expect_f).abs() < 1e-6);
        let g = degree_threshold(n, f);
        assert!((g - 1024.0 * (1024f64).ln() / f).abs() < 1e-6);
    }

    #[test]
    fn walk_msg_payloads() {
        assert_eq!(WalkMsg::Walk(TokenId::new(0)).token_count(), 1);
        assert_eq!(WalkMsg::CenterAnnounce.token_count(), 0);
        assert_eq!(WalkMsg::Walk(TokenId::new(0)).class(), MessageClass::Walk);
        assert_eq!(
            WalkMsg::CenterAnnounce.class(),
            MessageClass::CenterAnnounce
        );
    }

    fn many_source_assignment(n: usize, k: usize) -> TokenAssignment {
        // Every node a source: k tokens round-robin over all n nodes.
        TokenAssignment::round_robin_sources(n, k, n.min(k))
    }

    #[test]
    fn below_threshold_skips_phase_one() {
        // s = 2 sources is far below n^{2/3} log^{5/3} n for n = 10.
        let a = TokenAssignment::round_robin_sources(10, 8, 2);
        let out = run_oblivious_multi_source(
            &a,
            StaticAdversary::new(Graph::path(10)),
            PeriodicRewiring::new(Topology::RandomTree, 3, 5),
            &ObliviousConfig::default(),
        );
        assert!(out.phase1.is_none());
        assert!(out.completed(), "{}", out.phase2);
        assert_eq!(out.centers, a.sources());
    }

    #[test]
    fn full_two_phase_run_completes() {
        let n = 16;
        let k = 16;
        let a = many_source_assignment(n, k);
        let cfg = ObliviousConfig {
            seed: 11,
            // Force phase 1 at this small scale.
            source_threshold: Some(1.0),
            center_probability: Some(0.25),
            ..ObliviousConfig::default()
        };
        let out = run_oblivious_multi_source(
            &a,
            PeriodicRewiring::new(Topology::Gnp(0.3), 3, 7),
            PeriodicRewiring::new(Topology::RandomTree, 3, 9),
            &cfg,
        );
        assert!(out.phase1.is_some());
        assert!(out.completed(), "{}", out.phase2);
        let p1 = out.phase1.as_ref().unwrap();
        // Phase 1 sends only walk steps and center announcements.
        assert_eq!(
            p1.total_messages,
            p1.class(MessageClass::Walk) + p1.class(MessageClass::CenterAnnounce)
        );
        assert_eq!(out.stranded_tokens, 0);
    }

    #[test]
    fn phase1_reduces_sources_to_centers() {
        let n = 20;
        let k = 20;
        let a = many_source_assignment(n, k);
        let cfg = ObliviousConfig {
            seed: 3,
            source_threshold: Some(1.0),
            center_probability: Some(0.2),
            ..ObliviousConfig::default()
        };
        let out = run_oblivious_multi_source(
            &a,
            PeriodicRewiring::new(Topology::Gnp(0.4), 2, 13),
            PeriodicRewiring::new(Topology::RandomTree, 3, 15),
            &cfg,
        );
        assert!(out.completed());
        assert!(
            out.centers.len() < n,
            "expected fewer centers than nodes, got {}",
            out.centers.len()
        );
        assert!(!out.centers.is_empty());
    }

    #[test]
    fn center_announcements_bounded_by_tc() {
        let n = 16;
        let k = 8;
        let a = many_source_assignment(n, k);
        let cfg = ObliviousConfig {
            seed: 29,
            source_threshold: Some(1.0),
            center_probability: Some(0.3),
            ..ObliviousConfig::default()
        };
        let out = run_oblivious_multi_source(
            &a,
            PeriodicRewiring::new(Topology::Gnp(0.3), 3, 17),
            PeriodicRewiring::new(Topology::RandomTree, 3, 19),
            &cfg,
        );
        assert!(out.completed());
        let p1 = out.phase1.as_ref().unwrap();
        // One announcement per (center, inserted adjacent edge): at most
        // 2·TC(E) endpoints, so announcements ≤ 2·TC.
        assert!(
            p1.class(MessageClass::CenterAnnounce) <= 2 * p1.tc(),
            "announcements {} > 2·TC {}",
            p1.class(MessageClass::CenterAnnounce),
            2 * p1.tc()
        );
    }

    #[test]
    fn walk_node_congestion_allows_one_token_per_edge() {
        // A node owning many tokens with a single neighbor can move at most
        // one token per round.
        let n = 4;
        let a = TokenAssignment::single_source(n, 6, NodeId::new(0));
        let mut node = WalkNode::new(NodeId::new(0), &a, false, f64::INFINITY, 5);
        let neighbors = [NodeId::new(1)];
        let mut total_moved = 0usize;
        for r in 1..=200 {
            let mut out = Outbox::new();
            node.send(r, &neighbors, &mut out);
            assert!(
                out.len() <= 1,
                "round {r}: more than one walk step on one edge"
            );
            total_moved += out.len();
        }
        assert!(total_moved > 0, "lazy walk should eventually move tokens");
    }

    #[test]
    fn center_collects_and_never_forwards() {
        let n = 4;
        let a = TokenAssignment::single_source(n, 2, NodeId::new(1));
        let mut center = WalkNode::new(NodeId::new(0), &a, true, 1.0, 5);
        center.receive(1, NodeId::new(1), &WalkMsg::Walk(TokenId::new(0)));
        center.receive(1, NodeId::new(1), &WalkMsg::Walk(TokenId::new(1)));
        assert_eq!(center.tokens_in_transit(), 0);
        assert_eq!(center.owned_tokens().count(), 2);
        let mut out = Outbox::new();
        center.send(2, &[NodeId::new(1), NodeId::new(2)], &mut out);
        // Only center announcements, never walk steps.
        assert!(out
            .into_messages()
            .iter()
            .all(|(_, m)| matches!(m, WalkMsg::CenterAnnounce)));
    }

    #[test]
    fn high_degree_node_hands_tokens_to_known_centers() {
        let n = 8;
        let a = TokenAssignment::single_source(n, 3, NodeId::new(0));
        // γ = 2: degree ≥ 2 counts as high-degree.
        let mut node = WalkNode::new(NodeId::new(0), &a, false, 2.0, 5);
        node.receive(1, NodeId::new(3), &WalkMsg::CenterAnnounce);
        let neighbors = [NodeId::new(2), NodeId::new(3), NodeId::new(4)];
        let mut out = Outbox::new();
        node.send(2, &neighbors, &mut out);
        let msgs = out.into_messages();
        let walks: Vec<_> = msgs
            .iter()
            .filter(|(_, m)| matches!(m, WalkMsg::Walk(_)))
            .collect();
        assert_eq!(walks.len(), 1, "one token per neighboring center");
        assert_eq!(walks[0].0, NodeId::new(3));
        assert_eq!(node.tokens_in_transit(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 12;
        let k = 12;
        let a = many_source_assignment(n, k);
        let run = |seed: u64| {
            let cfg = ObliviousConfig {
                seed,
                source_threshold: Some(1.0),
                center_probability: Some(0.25),
                ..ObliviousConfig::default()
            };
            let out = run_oblivious_multi_source(
                &a,
                PeriodicRewiring::new(Topology::Gnp(0.3), 3, 100),
                PeriodicRewiring::new(Topology::RandomTree, 3, 101),
                &cfg,
            );
            (
                out.total_messages(),
                out.total_rounds(),
                out.centers.clone(),
            )
        };
        assert_eq!(run(42), run(42));
    }
}
