//! GF(2) linear algebra for network-coded gossip.
//!
//! The paper's related-work discussion (Section 1.2, citing Haeupler and
//! Haeupler–Karger) contrasts token-forwarding with *network coding*: with
//! sufficiently large tokens, random linear network coding solves k-gossip
//! in `O(n + k)` rounds on the same adversarial dynamic networks where
//! token-forwarding needs `Ω(nk/log n)`. To make that comparison executable
//! we need a coefficient-vector algebra over GF(2); this module provides a
//! word-packed vector type and an online row-echelon basis with O(k²/64)
//! insertion.

/// A GF(2) vector of fixed dimension `k`, packed into 64-bit words.
#[derive(Clone, PartialEq, Eq)]
pub struct Gf2Vector {
    words: Vec<u64>,
    dim: usize,
}

impl Gf2Vector {
    /// The zero vector of dimension `k`.
    pub fn zero(k: usize) -> Self {
        Gf2Vector {
            words: vec![0; k.div_ceil(64)],
            dim: k,
        }
    }

    /// The unit vector `e_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn unit(k: usize, i: usize) -> Self {
        assert!(i < k, "unit index {i} out of dimension {k}");
        let mut v = Gf2Vector::zero(k);
        v.set(i, true);
        v
    }

    /// Dimension `k`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The coefficient at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.dim, "index {i} out of dimension {}", self.dim);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets the coefficient at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.dim, "index {i} out of dimension {}", self.dim);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Whether this is the zero vector.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place XOR (GF(2) addition).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn xor_assign(&mut self, other: &Gf2Vector) {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= b;
        }
    }

    /// Index of the leading (lowest-index) 1, if any.
    pub fn leading_one(&self) -> Option<usize> {
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                return (i < self.dim).then_some(i);
            }
        }
        None
    }

    /// Number of ones (Hamming weight).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl std::fmt::Debug for Gf2Vector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gf2Vector[")?;
        for i in 0..self.dim {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

/// An online row-echelon basis of a subspace of GF(2)^k.
///
/// Rows are kept reduced so that each stored row has a unique pivot column;
/// insertion, membership, and rank are all `O(k²/64)` or better.
///
/// # Examples
///
/// ```
/// use dynspread_core::gf2::{Gf2Basis, Gf2Vector};
///
/// let mut basis = Gf2Basis::new(3);
/// assert!(basis.insert(Gf2Vector::unit(3, 0)));
/// let mut v = Gf2Vector::unit(3, 0);
/// v.set(2, true); // v = e0 + e2
/// assert!(basis.insert(v));
/// assert_eq!(basis.rank(), 2);
/// assert!(basis.contains(&Gf2Vector::unit(3, 2)));
/// assert!(!basis.contains(&Gf2Vector::unit(3, 1)));
/// ```
#[derive(Clone, Debug)]
pub struct Gf2Basis {
    /// Rows with distinct pivots, sorted by pivot column.
    rows: Vec<Gf2Vector>,
    dim: usize,
}

impl Gf2Basis {
    /// The empty basis of dimension `k`.
    pub fn new(k: usize) -> Self {
        Gf2Basis {
            rows: Vec::new(),
            dim: k,
        }
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current rank.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Whether the basis spans all of GF(2)^k.
    pub fn is_full(&self) -> bool {
        self.rank() == self.dim
    }

    /// Reduces `v` by the basis rows (in place); the result is zero iff
    /// `v` is in the span.
    fn reduce(&self, v: &mut Gf2Vector) {
        for row in &self.rows {
            let pivot = row.leading_one().expect("stored rows are nonzero");
            if v.get(pivot) {
                v.xor_assign(row);
            }
        }
    }

    /// Whether `v` lies in the span.
    pub fn contains(&self, v: &Gf2Vector) -> bool {
        let mut r = v.clone();
        self.reduce(&mut r);
        r.is_zero()
    }

    /// Inserts `v`; returns `true` iff it increased the rank (i.e. `v` was
    /// linearly independent of the current basis — "innovative" in the
    /// network-coding sense).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn insert(&mut self, mut v: Gf2Vector) -> bool {
        assert_eq!(v.dim(), self.dim, "dimension mismatch");
        self.reduce(&mut v);
        let Some(pivot) = v.leading_one() else {
            return false;
        };
        // Back-substitute so every stored row keeps a unique pivot column.
        for row in &mut self.rows {
            if row.get(pivot) {
                row.xor_assign(&v);
            }
        }
        let pos = self
            .rows
            .partition_point(|r| r.leading_one().expect("nonzero") < pivot);
        self.rows.insert(pos, v);
        true
    }

    /// The rows of the (reduced) basis.
    pub fn rows(&self) -> &[Gf2Vector] {
        &self.rows
    }

    /// The set of unit vectors `e_i` currently decodable (in the span).
    ///
    /// When the basis is kept in reduced row-echelon form (as `insert`
    /// does), `e_i` is decodable iff some row equals `e_i` exactly —
    /// equivalently, iff `i` is a pivot column and that row has weight 1.
    pub fn decodable_units(&self) -> Vec<usize> {
        self.rows
            .iter()
            .filter(|r| r.weight() == 1)
            .map(|r| r.leading_one().expect("nonzero"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn vector_basics() {
        let mut v = Gf2Vector::zero(70);
        assert!(v.is_zero());
        v.set(69, true);
        v.set(3, true);
        assert!(v.get(69));
        assert!(!v.get(4));
        assert_eq!(v.leading_one(), Some(3));
        assert_eq!(v.weight(), 2);
        v.set(3, false);
        assert_eq!(v.leading_one(), Some(69));
    }

    #[test]
    fn xor_is_gf2_addition() {
        let mut a = Gf2Vector::unit(8, 1);
        let b = Gf2Vector::unit(8, 1);
        a.xor_assign(&b);
        assert!(a.is_zero());
        let mut c = Gf2Vector::unit(8, 2);
        c.xor_assign(&Gf2Vector::unit(8, 5));
        assert_eq!(c.weight(), 2);
    }

    #[test]
    #[should_panic(expected = "out of dimension")]
    fn unit_out_of_range_panics() {
        let _ = Gf2Vector::unit(4, 4);
    }

    #[test]
    fn basis_rejects_dependent_vectors() {
        let mut basis = Gf2Basis::new(4);
        assert!(basis.insert(Gf2Vector::unit(4, 0)));
        assert!(basis.insert(Gf2Vector::unit(4, 1)));
        // e0 + e1 is dependent.
        let mut v = Gf2Vector::unit(4, 0);
        v.xor_assign(&Gf2Vector::unit(4, 1));
        assert!(!basis.insert(v));
        assert_eq!(basis.rank(), 2);
    }

    #[test]
    fn basis_becomes_full_with_units() {
        let k = 9;
        let mut basis = Gf2Basis::new(k);
        for i in 0..k {
            assert!(basis.insert(Gf2Vector::unit(k, i)));
        }
        assert!(basis.is_full());
        assert_eq!(basis.decodable_units(), (0..k).collect::<Vec<_>>());
    }

    #[test]
    fn decodable_units_track_rref() {
        let k = 3;
        let mut basis = Gf2Basis::new(k);
        // Insert e0+e1 and e1+e2: rank 2, nothing decodable.
        let mut a = Gf2Vector::unit(k, 0);
        a.xor_assign(&Gf2Vector::unit(k, 1));
        let mut b = Gf2Vector::unit(k, 1);
        b.xor_assign(&Gf2Vector::unit(k, 2));
        basis.insert(a);
        basis.insert(b);
        assert_eq!(basis.rank(), 2);
        assert!(basis.decodable_units().is_empty());
        // Insert e2: now everything is decodable.
        basis.insert(Gf2Vector::unit(k, 2));
        assert!(basis.is_full());
        assert_eq!(basis.decodable_units().len(), k);
    }

    #[test]
    fn contains_matches_brute_force_on_random_subspaces() {
        let k = 12;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let mut basis = Gf2Basis::new(k);
            let mut generators: Vec<Gf2Vector> = Vec::new();
            for _ in 0..6 {
                let mut v = Gf2Vector::zero(k);
                for i in 0..k {
                    if rng.gen_bool(0.5) {
                        v.set(i, true);
                    }
                }
                generators.push(v.clone());
                basis.insert(v);
            }
            // Every XOR-combination of generators must be contained.
            for mask in 0u32..64 {
                let mut combo = Gf2Vector::zero(k);
                for (i, g) in generators.iter().enumerate() {
                    if mask >> i & 1 == 1 {
                        combo.xor_assign(g);
                    }
                }
                assert!(basis.contains(&combo));
            }
        }
    }

    #[test]
    fn rank_never_exceeds_dimension() {
        let k = 8;
        let mut rng = StdRng::seed_from_u64(2);
        let mut basis = Gf2Basis::new(k);
        for _ in 0..100 {
            let mut v = Gf2Vector::zero(k);
            for i in 0..k {
                if rng.gen_bool(0.5) {
                    v.set(i, true);
                }
            }
            basis.insert(v);
            assert!(basis.rank() <= k);
        }
        assert!(basis.is_full(), "100 random vectors span GF(2)^8 w.h.p.");
    }

    #[test]
    fn rows_stay_in_reduced_echelon_form() {
        let k = 10;
        let mut rng = StdRng::seed_from_u64(3);
        let mut basis = Gf2Basis::new(k);
        for _ in 0..30 {
            let mut v = Gf2Vector::zero(k);
            for i in 0..k {
                if rng.gen_bool(0.4) {
                    v.set(i, true);
                }
            }
            basis.insert(v);
            // Each pivot appears in exactly one row.
            let pivots: Vec<usize> = basis
                .rows()
                .iter()
                .map(|r| r.leading_one().expect("nonzero"))
                .collect();
            for (i, &p) in pivots.iter().enumerate() {
                for (j, row) in basis.rows().iter().enumerate() {
                    if i != j {
                        assert!(!row.get(p), "pivot column {p} not unique");
                    }
                }
            }
            // Pivots strictly increasing.
            assert!(pivots.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
