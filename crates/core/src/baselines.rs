//! Baseline algorithms the paper compares against (Section 1).
//!
//! * [`UnicastFlooding`] — the trivial `O(n²)`-amortized unicast upper
//!   bound: "each node sends each token at most once to each other node".
//! * [`TreeBroadcastStatic`] — the classic static-network baseline: build a
//!   BFS spanning tree from the source (`O(m) ⊆ O(n²)` messages in KT0),
//!   then pipeline the `k` tokens down the tree (`k(n−1)` token messages),
//!   for `O(n²/k + n)` amortized messages — optimal `O(n)` when `k = Ω(n)`.
//!   Correct on **static** topologies only; dynamic rewiring breaks the
//!   tree, which is precisely the paper's motivation.

use dynspread_graph::{NodeId, Round};
use dynspread_sim::message::{MessageClass, MessagePayload};
use dynspread_sim::protocol::{Outbox, UnicastProtocol};
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};

/// Message of [`UnicastFlooding`]: a bare token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FloodTokenMsg(pub TokenId);

impl MessagePayload for FloodTokenMsg {
    fn token_count(&self) -> usize {
        1
    }

    fn class(&self) -> MessageClass {
        MessageClass::Token
    }
}

/// Naive unicast flooding: every node sends every token it knows to every
/// other node at most once (one token per neighbor per round under the
/// bandwidth constraint).
///
/// Message complexity is at most `n` sends per (node, token) pair →
/// `O(n²k)` total, `O(n²)` amortized — the unicast upper bound the paper
/// improves on via the adversary-competitive measure.
#[derive(Clone, Debug)]
pub struct UnicastFlooding {
    know: TokenSet,
    /// `sent[u]` = tokens already sent to node `u`.
    sent: Vec<TokenSet>,
}

impl UnicastFlooding {
    /// Creates node `v`.
    pub fn new(v: NodeId, assignment: &TokenAssignment) -> Self {
        let n = assignment.node_count();
        let k = assignment.token_count();
        UnicastFlooding {
            know: assignment.initial_knowledge(v),
            sent: (0..n).map(|_| TokenSet::new(k)).collect(),
        }
    }

    /// Builds all `n` node protocols.
    pub fn nodes(assignment: &TokenAssignment) -> Vec<UnicastFlooding> {
        NodeId::all(assignment.node_count())
            .map(|v| UnicastFlooding::new(v, assignment))
            .collect()
    }
}

impl UnicastProtocol for UnicastFlooding {
    type Msg = FloodTokenMsg;

    fn send(&mut self, _round: Round, neighbors: &[NodeId], out: &mut Outbox<FloodTokenMsg>) {
        for &u in neighbors {
            // One message per neighbor per round: the first known token not
            // yet sent to u.
            let next = self
                .know
                .iter()
                .find(|&t| !self.sent[u.index()].contains(t));
            if let Some(t) = next {
                self.sent[u.index()].insert(t);
                out.send(u, FloodTokenMsg(t));
            }
        }
    }

    fn receive(&mut self, _round: Round, from: NodeId, msg: &FloodTokenMsg) {
        self.know.insert(msg.0);
        // No need to echo the token back to its sender.
        self.sent[from.index()].insert(msg.0);
    }

    fn known_tokens(&self) -> &TokenSet {
        &self.know
    }
}

/// Messages of [`TreeBroadcastStatic`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeMsg {
    /// BFS-tree construction wave from the root.
    Join,
    /// "You are my parent."
    Child,
    /// A token pipelined down the tree.
    Token(TokenId),
}

impl MessagePayload for TreeMsg {
    fn token_count(&self) -> usize {
        match self {
            TreeMsg::Token(_) => 1,
            _ => 0,
        }
    }

    fn class(&self) -> MessageClass {
        match self {
            TreeMsg::Token(_) => MessageClass::Token,
            _ => MessageClass::Control,
        }
    }
}

/// Spanning-tree pipelining on a **static** network: the `O(n² + nk)`-
/// message baseline of Section 1.
///
/// Round 1: the source floods `Join`. A node adopting a parent replies
/// `Child` and floods `Join` onward. Tokens are then forwarded down the
/// tree in arrival order, one token per child edge per round — classic
/// pipelining, `O(n + k)` rounds on a static graph.
///
/// **Only correct on static topologies**: a rewired edge orphans the
/// subtree below it. Run it under
/// [`dynspread_graph::oblivious::StaticAdversary`].
#[derive(Clone, Debug)]
pub struct TreeBroadcastStatic {
    id: NodeId,
    know: TokenSet,
    /// Tokens in forwarding order (the pipeline).
    pipeline: Vec<TokenId>,
    /// Parent in the BFS tree (root: itself).
    parent: Option<NodeId>,
    /// Children discovered via `Child` messages.
    children: Vec<NodeId>,
    /// Per-child cursor into `pipeline` (next index to send).
    child_cursor: Vec<usize>,
    /// Whether we still owe the onward `Join` flood (sent the round after
    /// adopting a parent, to every neighbor except the parent).
    need_join_flood: bool,
    /// Whether this node has joined the tree.
    joined: bool,
    /// Pending `Child` reply.
    reply_parent: Option<NodeId>,
}

impl TreeBroadcastStatic {
    /// Creates node `v`; `root` must be the single source of `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment's sources are not exactly `[root]`.
    pub fn new(v: NodeId, root: NodeId, assignment: &TokenAssignment) -> Self {
        assert_eq!(
            assignment.sources(),
            vec![root],
            "tree broadcast requires the single-source case"
        );
        let know = assignment.initial_knowledge(v);
        let pipeline: Vec<TokenId> = know.iter().collect();
        TreeBroadcastStatic {
            id: v,
            know,
            pipeline,
            parent: (v == root).then_some(root),
            children: Vec::new(),
            child_cursor: Vec::new(),
            need_join_flood: v == root,
            joined: v == root,
            reply_parent: None,
        }
    }

    /// Builds all `n` node protocols.
    pub fn nodes(root: NodeId, assignment: &TokenAssignment) -> Vec<TreeBroadcastStatic> {
        NodeId::all(assignment.node_count())
            .map(|v| TreeBroadcastStatic::new(v, root, assignment))
            .collect()
    }

    /// The node's parent in the constructed tree, if adopted.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The node's children in the constructed tree.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }
}

impl UnicastProtocol for TreeBroadcastStatic {
    type Msg = TreeMsg;

    fn send(&mut self, _round: Round, neighbors: &[NodeId], out: &mut Outbox<TreeMsg>) {
        // One message per neighbor per round; priorities: Child reply >
        // Join wave > token pipeline.
        let mut used: Vec<NodeId> = Vec::new();
        if let Some(p) = self.reply_parent.take() {
            if neighbors.contains(&p) {
                out.send(p, TreeMsg::Child);
                used.push(p);
            }
        }
        if self.need_join_flood {
            self.need_join_flood = false;
            for &u in neighbors {
                if Some(u) != self.parent.filter(|&p| p != self.id) && !used.contains(&u) {
                    out.send(u, TreeMsg::Join);
                    used.push(u);
                }
            }
        }
        // Token pipeline: next unsent token per child.
        for (ci, &c) in self.children.clone().iter().enumerate() {
            if used.contains(&c) || !neighbors.contains(&c) {
                continue;
            }
            let cursor = self.child_cursor[ci];
            if cursor < self.pipeline.len() {
                out.send(c, TreeMsg::Token(self.pipeline[cursor]));
                self.child_cursor[ci] += 1;
            }
        }
    }

    fn receive(&mut self, _round: Round, from: NodeId, msg: &TreeMsg) {
        match msg {
            TreeMsg::Join => {
                if !self.joined {
                    self.joined = true;
                    self.parent = Some(from);
                    self.reply_parent = Some(from);
                    self.need_join_flood = true;
                }
            }
            TreeMsg::Child => {
                if !self.children.contains(&from) {
                    self.children.push(from);
                    self.child_cursor.push(0);
                }
            }
            TreeMsg::Token(t) => {
                if self.know.insert(*t) {
                    self.pipeline.push(*t);
                }
            }
        }
    }

    fn end_round(&mut self, _round: Round) {}

    fn known_tokens(&self) -> &TokenSet {
        &self.know
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};
    use dynspread_graph::Graph;
    use dynspread_sim::sim::{SimConfig, UnicastSim};

    #[test]
    fn unicast_flooding_completes_on_static_path() {
        let n = 6;
        let k = 3;
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let mut sim = UnicastSim::new(
            "unicast-flooding",
            UnicastFlooding::nodes(&a),
            StaticAdversary::new(Graph::path(n)),
            &a,
            SimConfig::with_max_rounds(10_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
    }

    #[test]
    fn unicast_flooding_completes_under_rewiring() {
        let n = 10;
        let k = 5;
        let a = TokenAssignment::round_robin_sources(n, k, 5);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 2, 3);
        let mut sim = UnicastSim::new(
            "unicast-flooding",
            UnicastFlooding::nodes(&a),
            adv,
            &a,
            SimConfig::with_max_rounds(100_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
    }

    #[test]
    fn unicast_flooding_message_bound() {
        let n = 8;
        let k = 4;
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let mut sim = UnicastSim::new(
            "unicast-flooding",
            UnicastFlooding::nodes(&a),
            StaticAdversary::new(Graph::complete(n)),
            &a,
            SimConfig::with_max_rounds(100_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed);
        // Each (sender, token, receiver) triple at most once.
        assert!(report.total_messages <= (n * n * k) as u64);
        assert!(report.amortized() <= (n * n) as f64);
    }

    #[test]
    fn tree_broadcast_completes_and_is_message_lean() {
        let n = 12;
        let k = 24;
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let g = Graph::cycle(n);
        let m = g.edge_count();
        let mut sim = UnicastSim::new(
            "tree-broadcast",
            TreeBroadcastStatic::nodes(NodeId::new(0), &a),
            StaticAdversary::new(g),
            &a,
            SimConfig::with_max_rounds(10_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
        // Control ≤ 2m + n; tokens exactly k(n−1).
        assert_eq!(report.class(MessageClass::Token), (k * (n - 1)) as u64);
        assert!(report.class(MessageClass::Control) <= (2 * m + n) as u64);
        // Amortized per token approaches n for k ≫ n.
        assert!(report.amortized() < 1.5 * n as f64);
    }

    #[test]
    fn tree_broadcast_pipelines_in_n_plus_k_rounds() {
        let n = 10;
        let k = 20;
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let mut sim = UnicastSim::new(
            "tree-broadcast",
            TreeBroadcastStatic::nodes(NodeId::new(0), &a),
            StaticAdversary::new(Graph::path(n)),
            &a,
            SimConfig::with_max_rounds(10_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed);
        assert!(
            report.rounds <= (3 * (n + k)) as Round,
            "pipelining took {} rounds",
            report.rounds
        );
    }

    #[test]
    fn tree_structure_is_a_spanning_tree() {
        let n = 9;
        let a = TokenAssignment::single_source(n, 2, NodeId::new(0));
        let mut sim = UnicastSim::new(
            "tree-broadcast",
            TreeBroadcastStatic::nodes(NodeId::new(0), &a),
            StaticAdversary::new(Graph::cycle(n)),
            &a,
            SimConfig::with_max_rounds(1000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed);
        // Every non-root node has a parent; child links mirror parents.
        let mut child_edges = 0;
        for v in NodeId::all(n) {
            let node = sim.node(v);
            if v != NodeId::new(0) {
                assert!(node.parent().is_some(), "{v} never joined the tree");
            }
            child_edges += node.children().len();
        }
        assert_eq!(child_edges, n - 1);
    }

    #[test]
    #[should_panic(expected = "single-source")]
    fn tree_broadcast_rejects_multi_source() {
        let a = TokenAssignment::round_robin_sources(4, 4, 2);
        let _ = TreeBroadcastStatic::new(NodeId::new(0), NodeId::new(0), &a);
    }
}
