//! The Single-Source-Unicast algorithm (Algorithm 1, Section 3.1).
//!
//! All `k` tokens start at one source node. Only *complete* nodes (nodes
//! holding all `k` tokens, Definition 3.1) ever send tokens. The protocol is
//! a request/response handshake driven by the incomplete nodes:
//!
//! * every complete node announces its completeness to each neighbor at most
//!   once, ever (set `R_v` of already-informed nodes);
//! * every incomplete node remembers which nodes announced completeness to
//!   it (set `S_v`) and, each round, assigns at most one distinct
//!   missing-token request per adjacent edge leading to a known-complete
//!   neighbor — prioritizing **new** edges, then **idle** edges, then
//!   **contributive** edges (see [`EdgeCategory`]);
//! * a complete node receiving `Request(i)` in round `r − 1` sends back the
//!   `i`-th token in round `r`, if the edge still exists.
//!
//! Theorem 3.1: the algorithm has 1-adversary-competitive message
//! complexity `O(n² + nk)` against a strongly adaptive adversary.
//! Theorem 3.4: on 3-edge-stable dynamic graphs it terminates in `O(nk)`
//! rounds.

use crate::dissemination::{CompletenessLedger, DisseminationCore};
use crate::edge_history::{EdgeCategory, EdgeTracker};
use dynspread_graph::{NodeId, Round};
use dynspread_sim::message::{MessageClass, MessagePayload};
use dynspread_sim::protocol::{Outbox, UnicastProtocol};
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};

/// Messages of the Single-Source-Unicast algorithm.
///
/// Each variant carries at most one token plus O(log n) bits, respecting the
/// bandwidth constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SsMsg {
    /// "I am complete" (type-2 message in Theorem 3.1).
    Completeness,
    /// "Please send me token `i`" (type-3 message).
    Request(TokenId),
    /// The requested token (type-1 message).
    Token(TokenId),
}

impl MessagePayload for SsMsg {
    fn token_count(&self) -> usize {
        match self {
            SsMsg::Token(_) => 1,
            _ => 0,
        }
    }

    fn class(&self) -> MessageClass {
        match self {
            SsMsg::Completeness => MessageClass::Completeness,
            SsMsg::Request(_) => MessageClass::Request,
            SsMsg::Token(_) => MessageClass::Token,
        }
    }
}

/// How an incomplete node assigns token requests to eligible edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RequestPolicy {
    /// The paper's careful strategy: new edges first, then idle, then
    /// contributive (Algorithm 1).
    #[default]
    Prioritized,
    /// Ablation: ignore edge categories and assign in neighbor-ID order.
    /// Loses the futile-round argument behind Theorem 3.4.
    Unprioritized,
}

/// Per-node state of the Single-Source-Unicast algorithm.
///
/// Construct one per node via [`SingleSourceNode::from_assignment`] and run
/// under [`dynspread_sim::UnicastSim`].
///
/// # Examples
///
/// ```
/// use dynspread_core::single_source::SingleSourceNode;
/// use dynspread_graph::{oblivious::StaticAdversary, Graph, NodeId};
/// use dynspread_sim::{SimConfig, TokenAssignment, UnicastSim};
///
/// let assignment = TokenAssignment::single_source(4, 2, NodeId::new(0));
/// let mut sim = UnicastSim::new(
///     "single-source-unicast",
///     SingleSourceNode::nodes(&assignment),
///     StaticAdversary::new(Graph::path(4)),
///     &assignment,
///     SimConfig::default(),
/// );
/// let report = sim.run_to_completion();
/// assert!(report.completed);
/// ```
#[derive(Clone, Debug)]
pub struct SingleSourceNode {
    policy: RequestPolicy,
    id: NodeId,
    /// Transport-agnostic decision state: `K_v`, the in-flight request
    /// set, and the distinct-missing-token assigner (shared with the
    /// asynchronous port in `dynspread-runtime`).
    core: DisseminationCore,
    /// `R_v` / `S_v` completeness bookkeeping.
    ledger: CompletenessLedger,
    /// Requests received this round (answered next round).
    requests_arriving: Vec<(NodeId, TokenId)>,
    /// Requests received last round (answered this round).
    requests_to_answer: Vec<(NodeId, TokenId)>,
    /// Local edge histories and outstanding-request queues.
    edges: EdgeTracker,
    /// Cumulative requests sent per edge category (indexed new/idle/
    /// contributive) — instrumentation for the futile-round analysis
    /// (Definition 3.3, Lemmas 3.2/3.3).
    requests_by_category: [u64; 3],
}

/// Dense index of an [`EdgeCategory`] for instrumentation arrays.
fn category_index(c: EdgeCategory) -> usize {
    match c {
        EdgeCategory::New => 0,
        EdgeCategory::Idle => 1,
        EdgeCategory::Contributive => 2,
    }
}

impl SingleSourceNode {
    /// Creates the node `v` with its initial knowledge from `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the assignment.
    pub fn from_assignment(v: NodeId, assignment: &TokenAssignment) -> Self {
        SingleSourceNode::with_policy(v, assignment, RequestPolicy::Prioritized)
    }

    /// Creates the node `v` with an explicit [`RequestPolicy`] (the
    /// priority-ablation experiments compare the two).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the assignment.
    pub fn with_policy(v: NodeId, assignment: &TokenAssignment, policy: RequestPolicy) -> Self {
        let n = assignment.node_count();
        assert!(v.index() < n, "node out of range");
        SingleSourceNode {
            policy,
            id: v,
            core: DisseminationCore::from_assignment(v, assignment),
            ledger: CompletenessLedger::new(n),
            requests_arriving: Vec::new(),
            requests_to_answer: Vec::new(),
            edges: EdgeTracker::new(n),
            requests_by_category: [0; 3],
        }
    }

    /// Builds the full vector of per-node protocols for an assignment.
    pub fn nodes(assignment: &TokenAssignment) -> Vec<SingleSourceNode> {
        NodeId::all(assignment.node_count())
            .map(|v| SingleSourceNode::from_assignment(v, assignment))
            .collect()
    }

    /// Whether this node is complete (Definition 3.1).
    pub fn is_complete(&self) -> bool {
        self.core.is_complete()
    }

    /// This node's ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The nodes that have announced completeness to this node (`S_v`).
    pub fn known_complete_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ledger.complete_peers()
    }

    /// Classifies the edge to current neighbor `u` in round `round`.
    pub fn classify_edge(&self, u: NodeId, round: Round) -> EdgeCategory {
        self.edges.classify(u, round)
    }

    /// Cumulative requests sent over new / idle / contributive edges —
    /// the inputs to the futile-round analysis (Definition 3.3: a round is
    /// futile if no request travels over a contributive edge and no token
    /// is learned in the following two rounds).
    pub fn requests_sent_by_category(&self) -> [u64; 3] {
        self.requests_by_category
    }

    /// Complete-node behavior: announce to the uninformed, answer last
    /// round's requests (one message per neighbor per round, announcement
    /// first — Algorithm 1 lines 1–6).
    fn send_complete(&mut self, neighbors: &[NodeId], out: &mut Outbox<SsMsg>) {
        // Disjoint field borrows: `requests_to_answer` is only read while
        // the ledger is written, so no buffer needs to be taken (and thus
        // dropped) per round.
        for &u in neighbors {
            if self.ledger.needs_inform(u) {
                out.send(u, SsMsg::Completeness);
                self.ledger.mark_informed(u);
            } else if let Some(&(_, t)) = self.requests_to_answer.iter().find(|(w, _)| *w == u) {
                out.send(u, SsMsg::Token(t));
            }
        }
        // Requests from neighbors the adversary disconnected die here, as
        // before: any unanswered leftovers are discarded.
        self.requests_to_answer.clear();
    }

    /// Incomplete-node behavior: assign distinct missing-token requests to
    /// eligible edges, new first, then idle, then contributive
    /// (Algorithm 1 lines 7–20).
    fn send_incomplete(&mut self, round: Round, neighbors: &[NodeId], out: &mut Outbox<SsMsg>) {
        // One assignment pass over the requestable tokens, consumed front
        // to back across the category sweeps.
        self.core.refill();
        if self.core.has_assignable() {
            // One pass per category (a single pass in ID order for the
            // unprioritized ablation — modeled as every category matching).
            let passes: &[Option<EdgeCategory>] = match self.policy {
                RequestPolicy::Prioritized => &[
                    Some(EdgeCategory::New),
                    Some(EdgeCategory::Idle),
                    Some(EdgeCategory::Contributive),
                ],
                RequestPolicy::Unprioritized => &[None],
            };
            'outer: for &category in passes {
                for &u in neighbors {
                    if !self.core.has_assignable() {
                        break 'outer;
                    }
                    if !self.ledger.peer_complete(u) {
                        continue;
                    }
                    if let Some(c) = category {
                        if self.edges.classify(u, round) != c {
                            continue;
                        }
                    }
                    let t = self.core.assign_next().expect("has_assignable");
                    out.send(u, SsMsg::Request(t));
                    self.edges.push_pending(u, t);
                    self.requests_by_category[category_index(self.edges.classify(u, round))] += 1;
                }
            }
        }
    }
}

impl UnicastProtocol for SingleSourceNode {
    type Msg = SsMsg;

    fn send(&mut self, round: Round, neighbors: &[NodeId], out: &mut Outbox<SsMsg>) {
        self.edges
            .refresh(round, neighbors, self.core.in_flight_mut());
        if self.is_complete() {
            self.send_complete(neighbors, out);
        } else {
            self.send_incomplete(round, neighbors, out);
        }
    }

    fn receive(&mut self, _round: Round, from: NodeId, msg: &SsMsg) {
        match msg {
            SsMsg::Completeness => {
                self.ledger.note_peer_complete(from);
            }
            SsMsg::Request(t) => {
                self.requests_arriving.push((from, *t));
            }
            SsMsg::Token(t) => {
                self.core.accept_token(*t);
                self.edges.note_token(from);
                if self.edges.retire_pending(from, *t) {
                    self.core.release(*t);
                }
            }
        }
    }

    fn end_round(&mut self, _round: Round) {
        // Swap (not take) so both buffers' capacity survives the round.
        std::mem::swap(&mut self.requests_to_answer, &mut self.requests_arriving);
        self.requests_arriving.clear();
        if self.is_complete() {
            // A node that just completed stops requesting; clear the
            // bookkeeping of its incomplete phase.
            let SingleSourceNode { edges, core, .. } = self;
            edges.clear_all_pending(core.in_flight_mut());
        }
    }

    fn known_tokens(&self) -> &TokenSet {
        self.core.known_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::adversary::FnAdversary;
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::{ChurnAdversary, PeriodicRewiring, StaticAdversary};
    use dynspread_graph::Graph;
    use dynspread_sim::sim::{SimConfig, UnicastSim};

    fn run_single_source<A>(
        n: usize,
        k: usize,
        adversary: A,
        max_rounds: Round,
    ) -> dynspread_sim::RunReport
    where
        A: dynspread_sim::adversary::UnicastAdversary<SsMsg>,
    {
        let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
        let nodes = SingleSourceNode::nodes(&assignment);
        let mut sim = UnicastSim::new(
            "single-source-unicast",
            nodes,
            adversary,
            &assignment,
            SimConfig::with_max_rounds(max_rounds),
        );
        sim.run_to_completion()
    }

    #[test]
    fn message_classes_and_sizes() {
        assert_eq!(SsMsg::Completeness.token_count(), 0);
        assert_eq!(SsMsg::Request(TokenId::new(0)).token_count(), 0);
        assert_eq!(SsMsg::Token(TokenId::new(0)).token_count(), 1);
        assert_eq!(SsMsg::Completeness.class(), MessageClass::Completeness);
        assert_eq!(
            SsMsg::Request(TokenId::new(0)).class(),
            MessageClass::Request
        );
        assert_eq!(SsMsg::Token(TokenId::new(0)).class(), MessageClass::Token);
    }

    #[test]
    fn completes_on_static_path() {
        let report = run_single_source(6, 4, StaticAdversary::new(Graph::path(6)), 100_000);
        assert!(report.completed, "did not complete: {report}");
        assert_eq!(report.learnings, 4 * 5);
    }

    #[test]
    fn completes_on_static_star() {
        let report = run_single_source(8, 5, StaticAdversary::new(Graph::star(8)), 100_000);
        assert!(report.completed);
    }

    #[test]
    fn completes_on_static_clique() {
        let report = run_single_source(7, 6, StaticAdversary::new(Graph::complete(7)), 100_000);
        assert!(report.completed);
    }

    #[test]
    fn completes_under_periodic_rewiring() {
        let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 99);
        let report = run_single_source(10, 8, adv, 200_000);
        assert!(report.completed, "did not complete: {report}");
    }

    #[test]
    fn completes_under_churn() {
        let adv = ChurnAdversary::new(Topology::SparseConnected(2.0), 2, 3, 5);
        let report = run_single_source(12, 10, adv, 200_000);
        assert!(report.completed, "did not complete: {report}");
    }

    #[test]
    fn token_messages_bounded_by_nk() {
        let n = 9;
        let k = 7;
        let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 7);
        let report = run_single_source(n, k, adv, 200_000);
        assert!(report.completed);
        // Each node receives each token at most once → ≤ nk token messages.
        assert!(report.class(MessageClass::Token) <= (n * k) as u64);
        // Every received token is a learning; tokens are never re-sent.
        assert_eq!(report.class(MessageClass::Token), report.learnings);
    }

    #[test]
    fn completeness_messages_bounded_by_n_squared() {
        let n = 10;
        let adv = PeriodicRewiring::new(Topology::Gnp(0.3), 3, 21);
        let report = run_single_source(n, 5, adv, 200_000);
        assert!(report.completed);
        assert!(report.class(MessageClass::Completeness) <= (n * (n - 1)) as u64);
    }

    #[test]
    fn theorem_3_1_competitive_bound_holds() {
        // M_total ≤ c(n² + nk) + TC(E) with a generous constant c = 4.
        for (n, k, seed) in [(8, 6, 1u64), (12, 20, 2), (16, 4, 3)] {
            let adv = PeriodicRewiring::new(Topology::RandomTree, 3, seed);
            let report = run_single_source(n, k, adv, 400_000);
            assert!(report.completed);
            let residual = report.competitive_residual(1.0);
            let bound = 4.0 * ((n * n) as f64 + (n * k) as f64);
            assert!(
                residual <= bound,
                "residual {residual} exceeds 4(n²+nk) = {bound} for n={n}, k={k}"
            );
        }
    }

    #[test]
    fn terminates_fast_on_three_stable_graphs() {
        // Theorem 3.4: O(nk) rounds under 3-edge stability. Constant 8 is
        // generous for these sizes.
        let (n, k) = (10, 6);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 17);
        let report = run_single_source(n, k, adv, 200_000);
        assert!(report.completed);
        assert!(
            report.rounds <= (8 * n * k) as Round,
            "took {} rounds > 8nk = {}",
            report.rounds,
            8 * n * k
        );
    }

    #[test]
    fn single_token_single_pair() {
        // Minimal instance: n = 2, k = 1 on a static edge.
        let report = run_single_source(2, 1, StaticAdversary::new(Graph::path(2)), 100);
        assert!(report.completed);
        // Round 1: source announces. Round 2: node 1 requests.
        // Round 3: source sends the token.
        assert_eq!(report.rounds, 3);
        assert_eq!(report.total_messages, 3);
    }

    #[test]
    fn request_dies_with_edge_and_token_is_rerequested() {
        // Adversary: path 0-1-2 normally, but in round 3 — exactly when the
        // first request would be answered — it swaps edge {0,1} for {0,2}.
        // The token must still arrive eventually.
        let n = 3;
        let adv = FnAdversary::new("cutter", move |r, _prev: &Graph| {
            let mut g = Graph::path(n);
            if r == 3 {
                g.remove_edge(dynspread_graph::Edge::new(NodeId::new(0), NodeId::new(1)));
                g.insert_edge(dynspread_graph::Edge::new(NodeId::new(0), NodeId::new(2)));
            }
            g
        });
        let report = run_single_source(n, 2, adv, 1000);
        assert!(report.completed);
    }

    #[test]
    fn no_token_sent_without_request() {
        let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 31);
        let report = run_single_source(9, 5, adv, 200_000);
        assert!(report.completed);
        assert!(report.class(MessageClass::Request) >= report.class(MessageClass::Token));
    }

    #[test]
    fn nodes_builder_covers_all_nodes() {
        let assignment = TokenAssignment::single_source(5, 3, NodeId::new(2));
        let nodes = SingleSourceNode::nodes(&assignment);
        assert_eq!(nodes.len(), 5);
        assert!(nodes[2].is_complete());
        assert!(!nodes[0].is_complete());
        assert_eq!(nodes[3].id(), NodeId::new(3));
    }

    #[test]
    fn edge_classification_lifecycle_through_protocol() {
        let assignment = TokenAssignment::single_source(3, 2, NodeId::new(0));
        let mut node = SingleSourceNode::from_assignment(NodeId::new(1), &assignment);
        let n0 = NodeId::new(0);
        let mut out = Outbox::new();
        node.send(1, &[n0], &mut out);
        assert_eq!(node.classify_edge(n0, 1), EdgeCategory::New);
        node.send(2, &[n0], &mut out);
        assert_eq!(node.classify_edge(n0, 2), EdgeCategory::New);
        node.send(3, &[n0], &mut out);
        assert_eq!(node.classify_edge(n0, 3), EdgeCategory::Idle);
        node.receive(3, n0, &SsMsg::Token(TokenId::new(0)));
        node.send(4, &[n0], &mut out);
        assert_eq!(node.classify_edge(n0, 4), EdgeCategory::Contributive);
    }
}
