//! # dynspread-core — the paper's algorithms and adversaries
//!
//! Token-forwarding information-spreading algorithms from *The
//! Communication Cost of Information Spreading in Dynamic Networks*
//! (Ahmadi, Kuhn, Kutten, Molla, Pandurangan; ICDCS 2019), plus the
//! baselines they are compared against and the Section 2 lower-bound
//! adversary:
//!
//! * [`flooding`] — naive local-broadcast flooding, the `O(n²)`-amortized
//!   upper bound of Section 1/2.
//! * [`single_source`] — the Single-Source-Unicast algorithm
//!   (Algorithm 1, Section 3.1): 1-adversary-competitive `O(n² + nk)`
//!   messages (Theorem 3.1), `O(nk)` rounds under 3-edge stability
//!   (Theorem 3.4).
//! * [`multi_source`] — the Multi-Source-Unicast algorithm
//!   (Section 3.2.1): 1-adversary-competitive `O(n²s + nk)` messages
//!   (Theorem 3.5).
//! * [`oblivious`] — the Oblivious-Multi-Source-Unicast algorithm
//!   (Algorithm 2, Section 3.2.2): random-walk center election, then
//!   Multi-Source; `O(n^{5/2} k^{1/4} log^{5/4} n)` messages against an
//!   oblivious adversary (Theorem 3.8).
//! * [`baselines`] — naive unicast flooding and the static spanning-tree
//!   pipeline.
//! * [`lower_bound`] — the Section 2 machinery: `K'_v` sets, free edges,
//!   the potential `Φ`, and the strongly adaptive [`lower_bound::PotentialAdversary`]
//!   behind the `Ω(n²/log²n)` amortized lower bound (Theorem 2.3).
//! * [`adaptive`] — additional adaptive unicast adversaries (request
//!   cutting) used by the ablation experiments.
//! * [`random_walk`] — lazy random walks on dynamic graphs and the
//!   visit-count experiment for Lemma 3.7.
//! * [`dissemination`] — the transport-agnostic decision core
//!   ([`dissemination::DisseminationCore`],
//!   [`dissemination::CompletenessLedger`]) shared by the round-based
//!   nodes here and the asynchronous `EventProtocol` ports in
//!   `dynspread-runtime`.
//! * [`walk`] — the transport-agnostic random-walk phase core
//!   ([`walk::WalkCore`], [`walk::elect_centers`]) shared by the
//!   round-based [`oblivious::WalkNode`] and the asynchronous
//!   `AsyncOblivious` port in `dynspread-runtime`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod baselines;
pub mod dissemination;
pub mod edge_history;
pub mod flooding;
pub mod gf2;
pub mod leader_election;
pub mod lower_bound;
pub mod multi_source;
pub mod network_coding;
pub mod oblivious;
pub mod random_walk;
pub mod single_source;
pub mod walk;

pub use adaptive::{RequestCuttingAdversary, StableRequestCutter};
pub use baselines::{TreeBroadcastStatic, UnicastFlooding};
pub use dissemination::{CompletenessLedger, DisseminationCore};
pub use edge_history::EdgeCategory;
pub use flooding::{BcastMsg, FloodingBroadcast, PhasedFlooding, RoundRobinBroadcast};
pub use leader_election::{ElectionMode, ElectionNode};
pub use lower_bound::{LaggedPotentialAdversary, PotentialAdversary};
pub use multi_source::{MsMsg, MultiSourceNode, SourceMap};
pub use network_coding::RlncNode;
pub use oblivious::{run_oblivious_multi_source, ObliviousConfig, ObliviousOutcome, WalkNode};
pub use single_source::{RequestPolicy, SingleSourceNode, SsMsg};
pub use walk::{elect_centers, WalkCore};
