//! Lazy random walks on dynamic graphs (Lemma 3.7 substrate).
//!
//! Algorithm 2's analysis rests on a visit-count bound for random walks on
//! `d`-regular dynamic graphs controlled by an oblivious adversary
//! (Lemma 3.7, from Das Sarma–Molla–Pandurangan): the number of visits of a
//! `t`-step walk to any fixed vertex is `O(d √t log n)` w.h.p., hence a
//! walk of length `L` visits `Ω(√L/(d log n))` **distinct** nodes.
//!
//! This module simulates the same lazy walk the algorithm uses — on the
//! virtual `n`-regular multigraph, a node of degree `d` forwards the walker
//! with probability `d/n` — and reports visit statistics so the experiment
//! harness can check the bound's shape empirically.

use dynspread_graph::adversary::Adversary;
use dynspread_graph::{Graph, NodeId, Round};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Statistics of one simulated walk.
#[derive(Clone, Debug)]
pub struct WalkStats {
    /// Rounds simulated (virtual steps, including lazy self-loops).
    pub rounds: u64,
    /// Actual edge traversals (the message-costing steps).
    pub actual_steps: u64,
    /// Number of distinct nodes visited (including the start).
    pub distinct_visits: usize,
    /// Visit count per node (for the `N_t^x(y)` bound).
    pub visit_counts: Vec<u64>,
    /// Final position of the walker.
    pub end: NodeId,
}

impl WalkStats {
    /// The maximum number of visits to any single node.
    pub fn max_visits(&self) -> u64 {
        self.visit_counts.iter().copied().max().unwrap_or(0)
    }
}

/// Simulates a lazy random walk for `rounds` rounds on the dynamic graph
/// produced by `adversary`, starting at `start`.
///
/// Each round the adversary commits the next (connected) graph; the walker
/// at a node of degree `d` moves to a uniformly random neighbor with
/// probability `d/n` and stays put otherwise — exactly the walk on the
/// virtual `n`-regular multigraph of Section 3.2.2.
///
/// # Examples
///
/// ```
/// use dynspread_core::random_walk::lazy_walk;
/// use dynspread_graph::{oblivious::StaticAdversary, Graph, NodeId};
///
/// let mut adversary = StaticAdversary::new(Graph::cycle(8));
/// let stats = lazy_walk(&mut adversary, 8, NodeId::new(0), 500, 42);
/// assert_eq!(stats.visit_counts.iter().sum::<u64>(), stats.actual_steps + 1);
/// assert!(stats.distinct_visits >= 1);
/// ```
pub fn lazy_walk<A: Adversary>(
    adversary: &mut A,
    n: usize,
    start: NodeId,
    rounds: u64,
    seed: u64,
) -> WalkStats {
    assert!(start.index() < n, "start out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::empty(n);
    let mut pos = start;
    let mut visit_counts = vec![0u64; n];
    visit_counts[pos.index()] += 1;
    let mut actual_steps = 0u64;
    for r in 1..=rounds {
        g = adversary.graph_for_round(r as Round, &g);
        debug_assert!(g.is_connected(), "adversary must keep the graph connected");
        let d = g.degree(pos);
        if d > 0 && rng.gen_bool((d as f64 / n as f64).min(1.0)) {
            let next = *g
                .neighbors(pos)
                .choose(&mut rng)
                .expect("degree checked positive");
            pos = next;
            actual_steps += 1;
            visit_counts[pos.index()] += 1;
        }
    }
    WalkStats {
        rounds,
        actual_steps,
        distinct_visits: visit_counts.iter().filter(|&&c| c > 0).count(),
        visit_counts,
        end: pos,
    }
}

/// The Lemma 3.7 distinct-visit lower-bound shape `√L / (d log n)` for a
/// walk of `actual` steps on (near-)`d`-regular graphs.
pub fn distinct_visit_bound(actual_steps: u64, d: usize, n: usize) -> f64 {
    let ln = (n as f64).ln().max(1.0);
    (actual_steps as f64).sqrt() / (d as f64 * ln)
}

/// The Lemma 3.7 visit-count upper-bound shape `d √(t+1) log n`.
pub fn visit_count_bound(rounds: u64, d: usize, n: usize) -> f64 {
    let ln = (n as f64).ln().max(1.0);
    d as f64 * ((rounds + 1) as f64).sqrt() * ln
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};

    #[test]
    fn walk_on_static_cycle_moves() {
        let n = 16;
        let mut adv = StaticAdversary::new(Graph::cycle(n));
        let stats = lazy_walk(&mut adv, n, NodeId::new(0), 4000, 1);
        assert!(stats.actual_steps > 0);
        assert!(stats.distinct_visits > 1);
        // Lazy factor: degree 2 of n=16 → move probability 1/8; expect
        // ~500 actual steps out of 4000 rounds.
        assert!(
            (200..1000).contains(&(stats.actual_steps as usize)),
            "unexpected actual step count {}",
            stats.actual_steps
        );
    }

    #[test]
    fn visit_counts_sum_to_steps_plus_one() {
        let n = 12;
        let mut adv = StaticAdversary::new(Graph::cycle(n));
        let stats = lazy_walk(&mut adv, n, NodeId::new(3), 500, 7);
        let total: u64 = stats.visit_counts.iter().sum();
        assert_eq!(total, stats.actual_steps + 1);
        assert!(stats.visit_counts[stats.end.index()] > 0);
    }

    #[test]
    fn distinct_visits_exceed_lemma_bound_on_regular_dynamics() {
        // The Lemma 3.7 bound is asymptotic; at this scale the walk should
        // clear it comfortably on near-regular dynamic graphs.
        let n = 32;
        let d = 4;
        let mut adv = PeriodicRewiring::new(Topology::NearRegular(d), 5, 3);
        let stats = lazy_walk(&mut adv, n, NodeId::new(0), 20_000, 9);
        let bound = distinct_visit_bound(stats.actual_steps, d, n);
        assert!(
            stats.distinct_visits as f64 >= bound,
            "distinct visits {} below bound {bound}",
            stats.distinct_visits
        );
    }

    #[test]
    fn max_visits_within_lemma_shape() {
        let n = 32;
        let d = 4;
        let mut adv = PeriodicRewiring::new(Topology::NearRegular(d), 5, 11);
        let stats = lazy_walk(&mut adv, n, NodeId::new(0), 20_000, 13);
        // Lemma 3.7 with the 2^{c+3} constant: allow a factor 8.
        let bound = 8.0 * visit_count_bound(stats.rounds, d, n);
        assert!(
            (stats.max_visits() as f64) <= bound,
            "max visits {} above 8·d√t·log n = {bound}",
            stats.max_visits()
        );
    }

    #[test]
    fn walk_is_deterministic_per_seed() {
        let n = 10;
        let run = |seed| {
            let mut adv = StaticAdversary::new(Graph::cycle(n));
            lazy_walk(&mut adv, n, NodeId::new(0), 300, seed).visit_counts
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn start_out_of_range_panics() {
        let mut adv = StaticAdversary::new(Graph::cycle(4));
        let _ = lazy_walk(&mut adv, 4, NodeId::new(9), 10, 0);
    }
}
