//! Transport-agnostic decision state of the random-walk phase of the
//! Oblivious-Multi-Source-Unicast algorithm (Algorithm 2, phase 1).
//!
//! Phase 1's *decisions* — who elects itself a center, which owned token
//! takes a lazy walk step over which edge, when a high-degree node hands a
//! token to a neighboring center — do not depend on the round structure,
//! only on the current neighborhood and the node's private randomness.
//! This module extracts that state (the walk analogue of what
//! [`dissemination`](crate::dissemination) did for Algorithm 1) so the
//! same logic drives both execution models:
//!
//! * the round-based [`WalkNode`](crate::oblivious::WalkNode), where a
//!   planned step is sent and delivered within the round and ownership
//!   moves atomically with the message;
//! * the asynchronous `AsyncOblivious` port in `dynspread-runtime`, where
//!   a planned step opens a retransmitted *ownership transfer* that is
//!   only confirmed by an acknowledgment — the token stays this node's
//!   responsibility until then ([`WalkCore::confirm_transfer`]), and is
//!   reclaimed if the channel churns away ([`WalkCore::reclaim`]).
//!
//! The ownership ledger is the piece that makes the asynchronous port's
//! exactly-once guarantee checkable: at every instant each token is the
//! *responsibility* of at least one node, [`WalkCore::accept`] is
//! idempotent (a duplicated delivery never yields a second responsibility
//! entry on the same node), and responsibility is only released by an
//! explicit confirmation.

use dynspread_graph::NodeId;
use dynspread_sim::token::{TokenId, TokenSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

/// Seeded center self-election: each node is a center with probability
/// `p`, with one forced center if the coin flips all come up tails
/// (covering the w.h.p. tail at small `n`).
///
/// Both the round-based and the asynchronous drivers elect from the same
/// shared seed, so the same `(seed, p, n)` always yields the same center
/// set — the election is common randomness, consistent with the paper's
/// oblivious-adversary setting.
///
/// # Examples
///
/// ```
/// use dynspread_core::walk::elect_centers;
///
/// let centers = elect_centers(32, 0.25, 7);
/// assert_eq!(centers.len(), 32);
/// assert!(centers.iter().any(|&c| c), "at least one center is forced");
/// assert_eq!(centers, elect_centers(32, 0.25, 7), "seed-deterministic");
/// ```
pub fn elect_centers(n: usize, p: f64, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut is_center: Vec<bool> = (0..n).map(|_| rng.gen_bool(p.clamp(0.0, 1.0))).collect();
    if !is_center.iter().any(|&c| c) {
        // W.h.p. there is a center; force one to cover the tail.
        is_center[rng.gen_range(0..n)] = true;
    }
    is_center
}

/// Derives node `v`'s private walk-randomness seed from the shared seed —
/// the same split both execution models use, so their walk decisions are
/// drawn from identical per-node streams.
pub fn walk_seed(seed: u64, v: NodeId) -> u64 {
    seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(v.value() as u64 + 1))
}

/// Per-node decision state of the random-walk phase: token knowledge, the
/// ownership ledger, known neighboring centers, and the lazy-walk
/// randomness.
///
/// Ownership has two layers:
///
/// * the **queue** — tokens currently here and eligible for a walk step
///   (for centers this is the permanent collection; they never plan);
/// * the **responsibility set** — queue plus any tokens in an open
///   (unconfirmed) transfer. The synchronous model confirms transfers
///   immediately (`detach = true` in [`WalkCore::plan`]); the
///   asynchronous port confirms on acknowledgment and reclaims on channel
///   loss, so the set is what "this node still owns the token" means
///   under retransmission.
#[derive(Clone, Debug)]
pub struct WalkCore {
    id: NodeId,
    is_center: bool,
    n: usize,
    gamma: f64,
    know: TokenSet,
    /// Tokens here and eligible to move, front first.
    queue: VecDeque<TokenId>,
    /// Queue ∪ open transfers: everything this node is answerable for.
    responsible: TokenSet,
    /// Neighboring (or once-neighboring) centers learned so far — monotone.
    known_centers: BTreeSet<NodeId>,
    rng: StdRng,
    /// Per-plan congestion scratch: at most one walk step per edge.
    edge_used: Vec<bool>,
}

impl WalkCore {
    /// Creates the core for node `v` with initial knowledge `know` (the
    /// node's initially held tokens are its initial responsibility).
    /// `gamma` is the high-degree threshold γ; `seed` is the *shared*
    /// seed, split per node via [`walk_seed`].
    pub fn new(
        v: NodeId,
        know: TokenSet,
        is_center: bool,
        n: usize,
        gamma: f64,
        seed: u64,
    ) -> Self {
        let queue: VecDeque<TokenId> = know.iter().collect();
        let mut responsible = TokenSet::new(know.universe());
        for &t in &queue {
            responsible.insert(t);
        }
        WalkCore {
            id: v,
            is_center,
            n,
            gamma,
            know,
            queue,
            responsible,
            known_centers: BTreeSet::new(),
            rng: StdRng::seed_from_u64(walk_seed(seed, v)),
            edge_used: Vec::new(),
        }
    }

    /// This node's ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether this node elected itself a center.
    pub fn is_center(&self) -> bool {
        self.is_center
    }

    /// The node's token knowledge (monotone; tokens seen in transit are
    /// remembered even after being passed on).
    pub fn known_tokens(&self) -> &TokenSet {
        &self.know
    }

    /// Records that `u` announced itself a center; returns whether this
    /// was news.
    pub fn note_center(&mut self, u: NodeId) -> bool {
        self.known_centers.insert(u)
    }

    /// Whether `u` is a known center.
    pub fn knows_center(&self, u: NodeId) -> bool {
        self.known_centers.contains(&u)
    }

    /// Whether a node of degree `d` is high-degree (`d ≥ γ`), i.e. hands
    /// tokens to neighboring centers instead of walking them.
    pub fn high_degree(&self, d: usize) -> bool {
        (d as f64) >= self.gamma
    }

    /// Accepts an arriving token: inserts it into the knowledge set and,
    /// if this node is not already responsible for it, takes ownership
    /// (pushing it onto the queue). Returns whether ownership was newly
    /// taken — duplicated deliveries and re-deliveries of a token already
    /// owned return `false` and change nothing, which is the receiver half
    /// of the exactly-once transfer guarantee.
    pub fn accept(&mut self, t: TokenId) -> bool {
        self.know.insert(t);
        if self.responsible.insert(t) {
            self.queue.push_back(t);
            true
        } else {
            false
        }
    }

    /// Confirms a transfer of `t` planned with `detach = false`: the
    /// receiver acknowledged ownership, so this node is no longer
    /// responsible.
    pub fn confirm_transfer(&mut self, t: TokenId) {
        let was = self.responsible.remove(t);
        debug_assert!(was, "confirming a transfer of unowned {t}");
    }

    /// Reclaims a transfer of `t` planned with `detach = false`: the
    /// channel died before the acknowledgment, so the token goes back on
    /// the queue (it never left this node's responsibility).
    pub fn reclaim(&mut self, t: TokenId) {
        debug_assert!(self.responsible.contains(t), "reclaiming unowned {t}");
        self.queue.push_back(t);
    }

    /// Tokens still this node's responsibility and *in transit* — 0 for
    /// centers, whose holdings are final.
    pub fn tokens_in_transit(&self) -> usize {
        if self.is_center {
            0
        } else {
            self.responsible.count()
        }
    }

    /// Whether the queue has tokens eligible for a step right now (open
    /// transfers are not re-plannable until confirmed or reclaimed).
    pub fn has_queued(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Every token this node is responsible for (queued or in an open
    /// transfer), in increasing token order.
    pub fn responsible_tokens(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.responsible.iter()
    }

    /// One planning pass: decide which queued tokens step where, calling
    /// `try_send(target, token)` for each decision. A `true` return means
    /// the step was carried (the token leaves the queue); `false` means
    /// the channel refused (asynchronous transfer window busy) and the
    /// token stays queued. With `detach = true` a carried step also leaves
    /// the responsibility set immediately (the synchronous model, where
    /// delivery is certain); with `detach = false` it stays until
    /// [`WalkCore::confirm_transfer`].
    ///
    /// The decisions are the paper's: high-degree nodes (`d ≥ γ`) hand
    /// one owned token to each known neighboring center; low-degree nodes
    /// take lazy random-walk steps on the virtual `n`-regular multigraph
    /// (step with probability `d/n`, uniform edge, at most one token per
    /// actual edge per pass — congested tokens stay put). Centers never
    /// plan.
    pub fn plan(
        &mut self,
        neighbors: &[NodeId],
        detach: bool,
        mut try_send: impl FnMut(NodeId, TokenId) -> bool,
    ) {
        if self.is_center || self.queue.is_empty() || neighbors.is_empty() {
            return;
        }
        let d = neighbors.len();
        if self.high_degree(d) {
            // High-degree: hand one owned token to each neighboring center.
            for &c in neighbors {
                if self.known_centers.contains(&c) {
                    match self.queue.pop_front() {
                        Some(t) => {
                            if try_send(c, t) {
                                if detach {
                                    self.responsible.remove(t);
                                }
                            } else {
                                self.queue.push_front(t);
                            }
                        }
                        None => break,
                    }
                }
            }
        } else {
            // Low-degree: lazy walk steps on the virtual n-regular
            // multigraph, at most one token per actual edge per pass.
            self.edge_used.clear();
            self.edge_used.resize(d, false);
            let step_prob = (d as f64 / self.n as f64).min(1.0);
            for _ in 0..self.queue.len() {
                let t = self.queue.pop_front().expect("queue nonempty");
                let mut moved = false;
                if self.rng.gen_bool(step_prob) {
                    let idx = self.rng.gen_range(0..d);
                    if !self.edge_used[idx] && try_send(neighbors[idx], t) {
                        self.edge_used[idx] = true;
                        moved = true;
                        if detach {
                            self.responsible.remove(t);
                        }
                    }
                }
                if !moved {
                    // Self-loop (virtual edge), congestion, or a busy
                    // channel: the token stays, costing time but no
                    // messages.
                    self.queue.push_back(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn know_of(k: usize, held: &[u32]) -> TokenSet {
        let mut s = TokenSet::new(k);
        for &t in held {
            s.insert(TokenId::new(t));
        }
        s
    }

    #[test]
    fn election_is_deterministic_and_nonempty() {
        let a = elect_centers(50, 0.1, 3);
        assert_eq!(a, elect_centers(50, 0.1, 3));
        assert!(a.iter().any(|&c| c));
        // p = 0 still forces one center.
        let forced = elect_centers(10, 0.0, 9);
        assert_eq!(forced.iter().filter(|&&c| c).count(), 1);
    }

    #[test]
    fn accept_is_idempotent_on_responsibility() {
        let mut core = WalkCore::new(NodeId::new(1), know_of(4, &[]), false, 8, 100.0, 5);
        assert!(core.accept(TokenId::new(2)));
        assert!(!core.accept(TokenId::new(2)), "duplicate delivery");
        assert_eq!(core.tokens_in_transit(), 1);
        assert!(core.known_tokens().contains(TokenId::new(2)));
    }

    #[test]
    fn transfer_lifecycle_confirm_and_reclaim() {
        let mut core = WalkCore::new(NodeId::new(0), know_of(4, &[0, 1]), false, 8, 1.0, 5);
        core.note_center(NodeId::new(3));
        let mut sent = Vec::new();
        core.plan(&[NodeId::new(3)], false, |u, t| {
            sent.push((u, t));
            true
        });
        assert_eq!(sent.len(), 1, "one token per neighboring center");
        let (_, t) = sent[0];
        // Open transfer: still responsible, but not re-plannable.
        assert_eq!(core.tokens_in_transit(), 2);
        core.plan(&[NodeId::new(3)], false, |_, moved| {
            assert_ne!(moved, t, "open transfer must not be re-planned");
            true
        });
        // Reclaim puts it back on the queue; confirm releases it.
        core.reclaim(t);
        assert_eq!(core.tokens_in_transit(), 2);
        core.confirm_transfer(t);
        assert_eq!(core.tokens_in_transit(), 1);
        assert!(core.known_tokens().contains(t), "knowledge is monotone");
    }

    #[test]
    fn detached_plan_releases_immediately() {
        let mut core = WalkCore::new(NodeId::new(0), know_of(2, &[0]), false, 4, 1.0, 5);
        core.note_center(NodeId::new(1));
        core.plan(&[NodeId::new(1)], true, |_, _| true);
        assert_eq!(core.tokens_in_transit(), 0);
    }

    #[test]
    fn refused_channel_keeps_token_queued() {
        let mut core = WalkCore::new(NodeId::new(0), know_of(2, &[0]), false, 4, 1.0, 5);
        core.note_center(NodeId::new(1));
        core.plan(&[NodeId::new(1)], false, |_, _| false);
        assert_eq!(core.tokens_in_transit(), 1);
        assert!(core.has_queued(), "refused token is re-plannable");
    }

    #[test]
    fn low_degree_pass_uses_each_edge_at_most_once() {
        // A node with many tokens and one neighbor moves at most one per
        // pass, and eventually moves some (the lazy walk is live).
        let mut core = WalkCore::new(
            NodeId::new(0),
            know_of(6, &[0, 1, 2, 3, 4, 5]),
            false,
            4,
            f64::INFINITY,
            5,
        );
        let mut total_moved = 0usize;
        for _ in 0..200 {
            let mut sent = 0;
            core.plan(&[NodeId::new(1)], true, |_, _| {
                sent += 1;
                true
            });
            assert!(sent <= 1, "more than one walk step on one edge");
            total_moved += sent;
        }
        assert!(total_moved > 0, "lazy walk should eventually move tokens");
    }

    #[test]
    fn centers_collect_and_never_plan() {
        let mut core = WalkCore::new(NodeId::new(0), know_of(3, &[]), true, 4, 1.0, 5);
        assert!(core.accept(TokenId::new(0)));
        assert!(core.accept(TokenId::new(2)));
        assert_eq!(core.tokens_in_transit(), 0, "center holdings are final");
        assert_eq!(core.responsible_tokens().count(), 2);
        core.plan(&[NodeId::new(1)], true, |_, _| {
            panic!("centers never forward")
        });
    }
}
