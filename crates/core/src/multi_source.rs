//! The Multi-Source-Unicast algorithm (Section 3.2.1).
//!
//! Tokens start at `s` source nodes `a_1 < a_2 < … < a_s`; source `a_i`
//! initially holds `k_i` tokens (`k = Σ k_i`). The algorithm extends
//! Single-Source-Unicast with per-source completeness:
//!
//! * a node is *complete with respect to source `x`* when it holds every
//!   token originating at `x`;
//! * each node maintains, per source `x`: `R_v(x)` (whom it has informed of
//!   its `x`-completeness), `S_v(x)` (who informed it), and the set `I_v`
//!   of sources it is complete for;
//! * each round a node does three things **in parallel**: (1) per edge,
//!   announce completeness for the *minimum* source the neighbor doesn't
//!   know about; (2) answer last round's token requests; (3) pick the
//!   minimum source `x ∉ I_v` with `S_v(x) ≠ ∅` and run the single-source
//!   request logic for `x` alone.
//!
//! The strict minimum-source priority means the network effectively runs
//! Single-Source-Unicast for source `a_1` first, then `a_2`, etc., which is
//! how Theorem 3.6 inherits the `O(nk)` running time. Theorem 3.5: the
//! algorithm has 1-adversary-competitive message complexity `O(n²s + nk)`.
//!
//! Token identities stay global (`0..k`); the map from token to source is
//! common knowledge, fixed by the initial placement (this stands in for the
//! paper's `⟨ID_x, i⟩` token labels, which every node can parse).

use crate::dissemination::{CompletenessLedger, DisseminationCore};
use crate::edge_history::{EdgeCategory, EdgeTracker};
use dynspread_graph::{NodeId, Round};
use dynspread_sim::message::{MessageClass, MessagePayload};
use dynspread_sim::protocol::{Outbox, UnicastProtocol};
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};
use std::sync::Arc;

/// The global token → source labelling, shared (as common knowledge) by all
/// nodes.
///
/// Built from a [`TokenAssignment`] in which every token has exactly one
/// initial holder — its source.
#[derive(Clone, Debug)]
pub struct SourceMap {
    /// The distinct sources, in increasing ID order (`a_1 < … < a_s`).
    sources: Vec<NodeId>,
    /// For each token, the index into `sources` of its origin.
    source_idx_of: Vec<u32>,
    /// For each source index, its tokens in increasing token order.
    tokens_of: Vec<Vec<TokenId>>,
}

impl SourceMap {
    /// Builds the map from an assignment.
    ///
    /// # Panics
    ///
    /// Panics if some token has no holder or more than one holder (the
    /// multi-source problem gives each token to exactly one source).
    pub fn from_assignment(assignment: &TokenAssignment) -> Self {
        let k = assignment.token_count();
        let mut origin: Vec<NodeId> = Vec::with_capacity(k);
        for t in TokenId::all(k) {
            let holders: Vec<NodeId> = assignment.holders(t).collect();
            assert_eq!(
                holders.len(),
                1,
                "token {t} must have exactly one initial holder, got {}",
                holders.len()
            );
            origin.push(holders[0]);
        }
        let sources: Vec<NodeId> = {
            let set: std::collections::BTreeSet<NodeId> = origin.iter().copied().collect();
            set.into_iter().collect()
        };
        let mut source_idx_of = Vec::with_capacity(k);
        let mut tokens_of = vec![Vec::new(); sources.len()];
        for (i, &src) in origin.iter().enumerate() {
            let idx = sources.binary_search(&src).expect("source present") as u32;
            source_idx_of.push(idx);
            tokens_of[idx as usize].push(TokenId::new(i as u32));
        }
        SourceMap {
            sources,
            source_idx_of,
            tokens_of,
        }
    }

    /// Number of sources `s`.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of tokens `k`.
    pub fn token_count(&self) -> usize {
        self.source_idx_of.len()
    }

    /// The sources in increasing ID order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The source index (rank) of token `t`.
    pub fn source_index_of(&self, t: TokenId) -> usize {
        self.source_idx_of[t.index()] as usize
    }

    /// The source node of token `t`.
    pub fn source_of(&self, t: TokenId) -> NodeId {
        self.sources[self.source_index_of(t)]
    }

    /// The tokens of the source with index `idx`.
    pub fn tokens_of(&self, idx: usize) -> &[TokenId] {
        &self.tokens_of[idx]
    }
}

/// Messages of the Multi-Source-Unicast algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MsMsg {
    /// "I am complete with respect to source `x`" (type-2 message).
    Completeness(NodeId),
    /// "Please send me token `i`" (type-3 message).
    Request(TokenId),
    /// The requested token (type-1 message).
    Token(TokenId),
}

impl MessagePayload for MsMsg {
    fn token_count(&self) -> usize {
        match self {
            MsMsg::Token(_) => 1,
            _ => 0,
        }
    }

    fn class(&self) -> MessageClass {
        match self {
            MsMsg::Completeness(_) => MessageClass::Completeness,
            MsMsg::Request(_) => MessageClass::Request,
            MsMsg::Token(_) => MessageClass::Token,
        }
    }
}

/// Per-node state of the Multi-Source-Unicast algorithm.
///
/// # Examples
///
/// ```
/// use dynspread_core::multi_source::MultiSourceNode;
/// use dynspread_graph::{oblivious::StaticAdversary, Graph};
/// use dynspread_sim::{SimConfig, TokenAssignment, UnicastSim};
///
/// // Four tokens spread over two sources.
/// let assignment = TokenAssignment::round_robin_sources(5, 4, 2);
/// let (nodes, _map) = MultiSourceNode::nodes(&assignment);
/// let mut sim = UnicastSim::new(
///     "multi-source-unicast",
///     nodes,
///     StaticAdversary::new(Graph::cycle(5)),
///     &assignment,
///     SimConfig::default(),
/// );
/// assert!(sim.run_to_completion().completed);
/// ```
#[derive(Clone, Debug)]
pub struct MultiSourceNode {
    id: NodeId,
    map: Arc<SourceMap>,
    /// Transport-agnostic decision state: `K_v`, the in-flight request
    /// set, and the distinct-missing-token assigner (shared with the
    /// asynchronous port in `dynspread-runtime`).
    core: DisseminationCore,
    /// Per source: how many of its tokens we hold.
    have_count: Vec<usize>,
    /// Per source `x`: `R_v(x)` / `S_v(x)` completeness bookkeeping.
    ledgers: Vec<CompletenessLedger>,
    /// Requests received this round (answered next round).
    requests_arriving: Vec<(NodeId, TokenId)>,
    /// Requests received last round (answered this round).
    requests_to_answer: Vec<(NodeId, TokenId)>,
    /// Local edge histories and outstanding-request queues.
    edges: EdgeTracker,
}

impl MultiSourceNode {
    /// Creates node `v` with initial knowledge from `assignment` and the
    /// shared source map.
    pub fn new(v: NodeId, assignment: &TokenAssignment, map: Arc<SourceMap>) -> Self {
        let n = assignment.node_count();
        assert!(v.index() < n, "node out of range");
        MultiSourceNode::with_knowledge(v, n, assignment.initial_knowledge(v), map)
    }

    /// Creates node `v` with an explicit knowledge set (used by phase 2 of
    /// the oblivious algorithm, where nodes keep the tokens they saw pass
    /// through during the random-walk phase).
    ///
    /// The `map` describes token *ownership* (who answers requests as a
    /// source); `know` is what this node already holds.
    pub fn with_knowledge(v: NodeId, n: usize, know: TokenSet, map: Arc<SourceMap>) -> Self {
        assert!(v.index() < n, "node out of range");
        let s = map.source_count();
        let mut have_count = vec![0usize; s];
        for t in know.iter() {
            have_count[map.source_index_of(t)] += 1;
        }
        MultiSourceNode {
            id: v,
            core: DisseminationCore::with_knowledge(know),
            have_count,
            ledgers: (0..s).map(|_| CompletenessLedger::new(n)).collect(),
            requests_arriving: Vec::new(),
            requests_to_answer: Vec::new(),
            edges: EdgeTracker::new(n),
            map,
        }
    }

    /// Builds all `n` node protocols plus the shared [`SourceMap`].
    pub fn nodes(assignment: &TokenAssignment) -> (Vec<MultiSourceNode>, Arc<SourceMap>) {
        let map = Arc::new(SourceMap::from_assignment(assignment));
        let nodes = NodeId::all(assignment.node_count())
            .map(|v| MultiSourceNode::new(v, assignment, Arc::clone(&map)))
            .collect();
        (nodes, map)
    }

    /// This node's ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is complete w.r.t. the source with index `idx`
    /// (i.e. the source is in `I_v`).
    pub fn complete_wrt(&self, idx: usize) -> bool {
        self.have_count[idx] == self.map.tokens_of(idx).len()
    }

    /// Whether the node holds all `k` tokens.
    pub fn is_complete(&self) -> bool {
        self.core.is_complete()
    }

    /// Task 1: per edge, announce completeness for the minimum source the
    /// neighbor hasn't been told about.
    fn send_announcements(&mut self, neighbors: &[NodeId], out: &mut Outbox<MsMsg>) {
        for &u in neighbors {
            for idx in 0..self.map.source_count() {
                if self.complete_wrt(idx) && self.ledgers[idx].needs_inform(u) {
                    out.send(u, MsMsg::Completeness(self.map.sources()[idx]));
                    self.ledgers[idx].mark_informed(u);
                    break; // one announcement per edge per round
                }
            }
        }
    }

    /// Task 2: answer last round's requests (if still connected and we hold
    /// the token).
    fn send_answers(&mut self, neighbors: &[NodeId], out: &mut Outbox<MsMsg>) {
        for &(u, t) in &self.requests_to_answer {
            if neighbors.binary_search(&u).is_ok() && self.core.known_tokens().contains(t) {
                out.send(u, MsMsg::Token(t));
            }
        }
        self.requests_to_answer.clear();
    }

    /// Task 3: single-source request logic for the minimum incomplete
    /// source with a known-complete node.
    fn send_requests(&mut self, round: Round, neighbors: &[NodeId], out: &mut Outbox<MsMsg>) {
        // "Pick the minimum x such that x ∉ I_v and S_v(x) ≠ ∅."
        let Some(active) = (0..self.map.source_count())
            .find(|&idx| !self.complete_wrt(idx) && self.ledgers[idx].any_peer_complete())
        else {
            return;
        };
        // One assignment pass restricted to the active source's tokens.
        self.core.refill_from(self.map.tokens_of(active));
        if self.core.has_assignable() {
            'outer: for category in [
                EdgeCategory::New,
                EdgeCategory::Idle,
                EdgeCategory::Contributive,
            ] {
                for &u in neighbors {
                    if !self.core.has_assignable() {
                        break 'outer;
                    }
                    if self.ledgers[active].peer_complete(u)
                        && self.edges.classify(u, round) == category
                    {
                        let t = self.core.assign_next().expect("has_assignable");
                        out.send(u, MsMsg::Request(t));
                        self.edges.push_pending(u, t);
                    }
                }
            }
        }
    }
}

impl UnicastProtocol for MultiSourceNode {
    type Msg = MsMsg;

    fn send(&mut self, round: Round, neighbors: &[NodeId], out: &mut Outbox<MsMsg>) {
        self.edges
            .refresh(round, neighbors, self.core.in_flight_mut());
        // The three tasks run in parallel (Section 3.2.1); a node may send
        // an announcement, a token, and a request over the same edge in the
        // same round — they are separate messages and metered separately.
        self.send_announcements(neighbors, out);
        self.send_answers(neighbors, out);
        if !self.is_complete() {
            self.send_requests(round, neighbors, out);
        }
    }

    fn receive(&mut self, _round: Round, from: NodeId, msg: &MsMsg) {
        match msg {
            MsMsg::Completeness(x) => {
                let idx = self
                    .map
                    .sources()
                    .binary_search(x)
                    .expect("announced source must be a source");
                self.ledgers[idx].note_peer_complete(from);
            }
            MsMsg::Request(t) => {
                self.requests_arriving.push((from, *t));
            }
            MsMsg::Token(t) => {
                if self.core.accept_token(*t) {
                    self.have_count[self.map.source_index_of(*t)] += 1;
                }
                self.edges.note_token(from);
                if self.edges.retire_pending(from, *t) {
                    self.core.release(*t);
                }
            }
        }
    }

    fn end_round(&mut self, _round: Round) {
        // Swap (not take) so both buffers' capacity survives the round.
        std::mem::swap(&mut self.requests_to_answer, &mut self.requests_arriving);
        self.requests_arriving.clear();
        if self.is_complete() {
            let MultiSourceNode { edges, core, .. } = self;
            edges.clear_all_pending(core.in_flight_mut());
        }
    }

    fn known_tokens(&self) -> &TokenSet {
        self.core.known_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::{ChurnAdversary, PeriodicRewiring, StaticAdversary};
    use dynspread_graph::Graph;
    use dynspread_sim::sim::{SimConfig, UnicastSim};

    fn run_multi_source<A>(
        assignment: &TokenAssignment,
        adversary: A,
        max_rounds: Round,
    ) -> dynspread_sim::RunReport
    where
        A: dynspread_sim::adversary::UnicastAdversary<MsMsg>,
    {
        let (nodes, _map) = MultiSourceNode::nodes(assignment);
        let mut sim = UnicastSim::new(
            "multi-source-unicast",
            nodes,
            adversary,
            assignment,
            SimConfig::with_max_rounds(max_rounds),
        );
        sim.run_to_completion()
    }

    #[test]
    fn source_map_partitions_tokens() {
        let a = TokenAssignment::round_robin_sources(8, 10, 3);
        let map = SourceMap::from_assignment(&a);
        assert_eq!(map.source_count(), 3);
        assert_eq!(map.token_count(), 10);
        let total: usize = (0..3).map(|i| map.tokens_of(i).len()).sum();
        assert_eq!(total, 10);
        for t in TokenId::all(10) {
            let idx = map.source_index_of(t);
            assert!(map.tokens_of(idx).contains(&t));
            assert_eq!(map.source_of(t), map.sources()[idx]);
        }
    }

    #[test]
    #[should_panic(expected = "exactly one initial holder")]
    fn source_map_rejects_multi_holder_tokens() {
        let mut a = TokenAssignment::round_robin_sources(4, 3, 2);
        a.add_holder(TokenId::new(0), NodeId::new(3));
        let _ = SourceMap::from_assignment(&a);
    }

    #[test]
    fn message_classes() {
        assert_eq!(
            MsMsg::Completeness(NodeId::new(1)).class(),
            MessageClass::Completeness
        );
        assert_eq!(
            MsMsg::Request(TokenId::new(0)).class(),
            MessageClass::Request
        );
        assert_eq!(MsMsg::Token(TokenId::new(0)).class(), MessageClass::Token);
        assert_eq!(MsMsg::Token(TokenId::new(0)).token_count(), 1);
        assert_eq!(MsMsg::Completeness(NodeId::new(0)).token_count(), 0);
    }

    #[test]
    fn completes_with_two_sources_static() {
        let a = TokenAssignment::round_robin_sources(6, 6, 2);
        let report = run_multi_source(&a, StaticAdversary::new(Graph::path(6)), 100_000);
        assert!(report.completed, "did not complete: {report}");
        // Every non-holder learns every token.
        assert_eq!(report.learnings, (6 * 6 - 6) as u64);
    }

    #[test]
    fn completes_n_gossip_static_clique() {
        let n = 6;
        let a = TokenAssignment::n_gossip(n);
        let report = run_multi_source(&a, StaticAdversary::new(Graph::complete(n)), 100_000);
        assert!(report.completed, "did not complete: {report}");
    }

    #[test]
    fn completes_under_periodic_rewiring() {
        let a = TokenAssignment::round_robin_sources(10, 12, 4);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 13);
        let report = run_multi_source(&a, adv, 400_000);
        assert!(report.completed, "did not complete: {report}");
    }

    #[test]
    fn completes_under_churn() {
        let a = TokenAssignment::round_robin_sources(9, 9, 3);
        let adv = ChurnAdversary::new(Topology::SparseConnected(2.0), 2, 3, 41);
        let report = run_multi_source(&a, adv, 400_000);
        assert!(report.completed, "did not complete: {report}");
    }

    #[test]
    fn single_source_special_case_matches_problem() {
        // With s = 1 the algorithm solves the same problem as Algorithm 1.
        let a = TokenAssignment::single_source(7, 5, NodeId::new(0));
        let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 3);
        let report = run_multi_source(&a, adv, 200_000);
        assert!(report.completed);
        assert_eq!(report.learnings, (5 * 6) as u64);
    }

    #[test]
    fn theorem_3_5_competitive_bound_holds() {
        // M_total ≤ c(n²s + nk) + TC(E), generous c = 4.
        for (n, k, s, seed) in [(8, 8, 2, 1u64), (10, 12, 3, 2), (12, 6, 6, 3)] {
            let a = TokenAssignment::round_robin_sources(n, k, s);
            let adv = PeriodicRewiring::new(Topology::RandomTree, 3, seed);
            let report = run_multi_source(&a, adv, 600_000);
            assert!(report.completed, "n={n} k={k} s={s}: {report}");
            let residual = report.competitive_residual(1.0);
            let bound = 4.0 * ((n * n * s) as f64 + (n * k) as f64);
            assert!(
                residual <= bound,
                "residual {residual} > 4(n²s+nk) = {bound} for n={n}, k={k}, s={s}"
            );
        }
    }

    #[test]
    fn theorem_3_6_round_bound_holds() {
        // O(nk) rounds on 3-edge-stable dynamics; generous constant 10
        // (the sequential per-source phases each pay their own overhead).
        let (n, k, s) = (8, 8, 4);
        let a = TokenAssignment::round_robin_sources(n, k, s);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 7);
        let report = run_multi_source(&a, adv, 400_000);
        assert!(report.completed);
        assert!(
            report.rounds <= (10 * n * k) as Round,
            "took {} rounds > 10nk = {}",
            report.rounds,
            10 * n * k
        );
    }

    #[test]
    fn token_messages_bounded_by_nk() {
        let (n, k, s) = (9, 10, 3);
        let a = TokenAssignment::round_robin_sources(n, k, s);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 3, 11);
        let report = run_multi_source(&a, adv, 400_000);
        assert!(report.completed);
        assert!(report.class(MessageClass::Token) <= (n * k) as u64);
    }

    #[test]
    fn completeness_messages_bounded_by_n_squared_s() {
        let (n, k, s) = (8, 8, 4);
        let a = TokenAssignment::round_robin_sources(n, k, s);
        let adv = PeriodicRewiring::new(Topology::Gnp(0.4), 3, 19);
        let report = run_multi_source(&a, adv, 400_000);
        assert!(report.completed);
        assert!(report.class(MessageClass::Completeness) <= (n * n * s) as u64);
    }

    #[test]
    fn minimum_source_disseminates_first() {
        // Theorem 3.6's mechanism: all nodes give priority to the minimum
        // incomplete source, so source a_1's tokens finish disseminating
        // (weakly) before a_s's do. We track the first round at which
        // every node is complete w.r.t. each source.
        let (n, k, s) = (10usize, 12usize, 3usize);
        let a = TokenAssignment::round_robin_sources(n, k, s);
        let (nodes, _map) = MultiSourceNode::nodes(&a);
        let mut sim = UnicastSim::new(
            "multi-source-unicast",
            nodes,
            PeriodicRewiring::new(Topology::RandomTree, 3, 23),
            &a,
            SimConfig::with_max_rounds(400_000),
        );
        let mut completion_round = vec![None::<u64>; s];
        while !sim.tracker().all_complete() {
            let round = sim.step();
            for (idx, slot) in completion_round.iter_mut().enumerate() {
                if slot.is_none() && sim.nodes().iter().all(|node| node.complete_wrt(idx)) {
                    *slot = Some(round);
                }
            }
            if round > 300_000 {
                panic!("did not complete");
            }
        }
        let rounds: Vec<u64> = completion_round
            .into_iter()
            .map(|r| r.expect("every source completes"))
            .collect();
        assert!(
            rounds.windows(2).all(|w| w[0] <= w[1]),
            "sources completed out of priority order: {rounds:?}"
        );
    }

    #[test]
    fn sources_complete_wrt_themselves_at_start() {
        let a = TokenAssignment::round_robin_sources(5, 6, 2);
        let (nodes, map) = MultiSourceNode::nodes(&a);
        // Node 0 (source a_1) complete w.r.t. itself, not w.r.t. a_2.
        assert!(nodes[0].complete_wrt(0));
        assert!(!nodes[0].complete_wrt(1));
        assert!(nodes[1].complete_wrt(1));
        assert!(!nodes[2].complete_wrt(0));
        assert_eq!(map.sources(), &[NodeId::new(0), NodeId::new(1)]);
    }
}
