//! The Section 2 lower-bound machinery, executable.
//!
//! Theorem 2.3: against a strongly adaptive adversary, any token-forwarding
//! algorithm in the local broadcast model needs `Ω(n²/log²n)` amortized
//! messages per token. The proof constructs an adversary that:
//!
//! 1. samples, once, a set `K'_v` per node containing each token
//!    independently with probability 1/4 (so that `Φ(0) ≤ 0.8nk` w.h.p.);
//! 2. each round — *after* seeing every node's committed broadcast token
//!    `i_v(r)` — adds all **free** edges (edges over which no progress can
//!    happen) and then connects the remaining `ℓ` components with `ℓ − 1`
//!    non-free edges;
//! 3. thereby caps the growth of the potential
//!    `Φ(t) = Σ_v |K_v(t) ∪ K'_v|` at `2(ℓ − 1) = O(log n)` per round
//!    (Lemma 2.1), and at **zero** in any round with fewer than
//!    `n/(c log n)` broadcasters (Lemma 2.2).
//!
//! This module implements the adversary ([`PotentialAdversary`]), the
//! free-edge predicate, the potential function, the `K'` sampling, and the
//! standalone free-edge-structure sampler behind Figure 1.

use dynspread_graph::{Edge, Graph, NodeId, Round, UnionFind};
use dynspread_sim::adversary::BroadcastAdversary;
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// View of a broadcast message as a token choice `i_v(r)`.
///
/// The Section 2 adversary is generic over any broadcast protocol whose
/// messages expose which token they carry.
pub trait BroadcastTokenView: Clone {
    /// The token this broadcast carries, if any.
    fn token_id(&self) -> Option<TokenId>;
}

impl BroadcastTokenView for crate::flooding::BcastMsg {
    fn token_id(&self) -> Option<TokenId> {
        Some(self.0)
    }
}

/// The sampled `K'_v` sets: for the analysis, tokens whose receipt by `v`
/// does not count as progress.
#[derive(Clone, Debug)]
pub struct KPrimeSets {
    sets: Vec<TokenSet>,
}

impl KPrimeSets {
    /// Samples each token into each `K'_v` independently with probability
    /// `prob` (the paper uses 1/4).
    pub fn sample(n: usize, k: usize, prob: f64, rng: &mut StdRng) -> Self {
        assert!((0.0..=1.0).contains(&prob), "prob must be a probability");
        let sets = (0..n)
            .map(|_| {
                let mut s = TokenSet::new(k);
                for t in TokenId::all(k) {
                    if rng.gen_bool(prob) {
                        s.insert(t);
                    }
                }
                s
            })
            .collect();
        KPrimeSets { sets }
    }

    /// `K'_v`.
    pub fn get(&self, v: NodeId) -> &TokenSet {
        &self.sets[v.index()]
    }

    /// `Σ_v |K'_v|` (the paper requires this ≤ 0.3nk w.h.p.).
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(|s| s.count()).sum()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.sets.len()
    }
}

/// Whether the (potential) edge `{u, v}` is **free** in a round where `u`
/// broadcasts `iu` and `v` broadcasts `iv` (`None` = silent):
/// `iu ∈ {⊥} ∪ K_v ∪ K'_v` **and** `iv ∈ {⊥} ∪ K_u ∪ K'_u`.
pub fn is_free_edge(
    iu: Option<TokenId>,
    iv: Option<TokenId>,
    ku: &TokenSet,
    kv: &TokenSet,
    kpu: &TokenSet,
    kpv: &TokenSet,
) -> bool {
    let harmless = |i: Option<TokenId>, k_recv: &TokenSet, kp_recv: &TokenSet| match i {
        None => true,
        Some(t) => k_recv.contains(t) || kp_recv.contains(t),
    };
    harmless(iu, kv, kpv) && harmless(iv, ku, kpu)
}

/// The potential `Φ(t) = Σ_v |K_v(t) ∪ K'_v|` (Section 2).
pub fn potential(know: &[TokenSet], kprime: &KPrimeSets) -> u64 {
    know.iter()
        .enumerate()
        .map(|(i, kv)| kv.union_count(kprime.get(NodeId::new(i as u32))) as u64)
        .sum()
}

/// Outcome of building the free-edge graph `F(r)` for one token assignment.
#[derive(Clone, Debug)]
pub struct FreeEdgeStructure {
    /// Number of free (potential) edges.
    pub free_edges: usize,
    /// Connected components of `F(r)` (isolated nodes count).
    pub components: usize,
    /// Whether `F(r)` spans all nodes in one component.
    pub connected: bool,
}

/// Computes the component structure of the free-edge graph for a given
/// token assignment `choices` (`choices[v] = i_v(r)`).
pub fn free_edge_structure(
    choices: &[Option<TokenId>],
    know: &[TokenSet],
    kprime: &KPrimeSets,
) -> FreeEdgeStructure {
    let n = know.len();
    let mut uf = UnionFind::new(n);
    let mut free_edges = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            if is_free_edge(
                choices[u],
                choices[v],
                &know[u],
                &know[v],
                kprime.get(NodeId::new(u as u32)),
                kprime.get(NodeId::new(v as u32)),
            ) {
                free_edges += 1;
                uf.union(u, v);
            }
        }
    }
    let components = uf.component_count();
    FreeEdgeStructure {
        free_edges,
        components,
        connected: components == 1,
    }
}

/// The strongly adaptive lower-bound adversary of Section 2.
///
/// It mirrors every node's knowledge `K_v(t)` (it is strongly adaptive: it
/// sees the initial assignment, every broadcast choice, and the graphs it
/// itself builds), adds all free edges each round, and repairs connectivity
/// with the minimum number of non-free edges. It records the potential and
/// the per-round component count for analysis.
///
/// # Examples
///
/// ```
/// use dynspread_core::flooding::PhasedFlooding;
/// use dynspread_core::lower_bound::{bernoulli_assignment, PotentialAdversary};
/// use dynspread_sim::{BroadcastSim, SimConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let assignment = bernoulli_assignment(12, 6, 0.25, &mut rng);
/// let adversary = PotentialAdversary::new(&assignment, 0.25, 2);
/// let mut sim = BroadcastSim::new(
///     "phased-flooding",
///     PhasedFlooding::nodes(&assignment),
///     adversary,
///     &assignment,
///     SimConfig::with_max_rounds(2 * 12 * 6),
/// );
/// let report = sim.run_to_completion();
/// assert!(report.completed);
/// // The adversary records Φ per round for analysis:
/// assert!(!sim.adversary().potential_history().is_empty());
/// ```
pub struct PotentialAdversary {
    kprime: KPrimeSets,
    know: Vec<TokenSet>,
    /// Φ after each round (index 0 = Φ(0), before round 1).
    potential_history: Vec<u64>,
    /// Components of F(r) per round (index 0 = round 1).
    component_history: Vec<usize>,
}

impl PotentialAdversary {
    /// Creates the adversary for a given initial assignment, sampling the
    /// `K'_v` sets with probability `kprime_prob` (paper: 1/4) from `seed`.
    pub fn new(assignment: &TokenAssignment, kprime_prob: f64, seed: u64) -> Self {
        let n = assignment.node_count();
        let k = assignment.token_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let kprime = KPrimeSets::sample(n, k, kprime_prob, &mut rng);
        let know: Vec<TokenSet> = NodeId::all(n)
            .map(|v| assignment.initial_knowledge(v))
            .collect();
        let phi0 = potential(&know, &kprime);
        PotentialAdversary {
            kprime,
            know,
            potential_history: vec![phi0],
            component_history: Vec::new(),
        }
    }

    /// The sampled `K'` sets.
    pub fn kprime(&self) -> &KPrimeSets {
        &self.kprime
    }

    /// `Φ(0), Φ(1), …` — one entry per completed round plus the initial
    /// value.
    pub fn potential_history(&self) -> &[u64] {
        &self.potential_history
    }

    /// Per-round component counts of the free-edge graph.
    pub fn component_history(&self) -> &[usize] {
        &self.component_history
    }

    /// Per-round potential increases `Φ(r) − Φ(r−1)`.
    pub fn potential_increases(&self) -> Vec<u64> {
        self.potential_history
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect()
    }

    fn build_graph(&mut self, choices: &[Option<TokenId>]) -> Graph {
        let n = self.know.len();
        let mut g = Graph::empty(n);
        let mut uf = UnionFind::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if is_free_edge(
                    choices[u],
                    choices[v],
                    &self.know[u],
                    &self.know[v],
                    self.kprime.get(NodeId::new(u as u32)),
                    self.kprime.get(NodeId::new(v as u32)),
                ) {
                    g.insert_edge(Edge::new(NodeId::new(u as u32), NodeId::new(v as u32)));
                    uf.union(u, v);
                }
            }
        }
        self.component_history.push(uf.component_count());
        // Repair connectivity with ℓ − 1 non-free edges between component
        // representatives (any inter-component edge is non-free because
        // F(r) contains *all* free edges).
        let reps = uf.representatives();
        for w in reps.windows(2) {
            g.insert_edge(Edge::new(
                NodeId::new(w[0] as u32),
                NodeId::new(w[1] as u32),
            ));
        }
        g
    }

    /// Simulates delivery on the graph it just built to keep its knowledge
    /// mirror exact.
    fn mirror_delivery(&mut self, g: &Graph, choices: &[Option<TokenId>]) {
        for (u, choice) in choices.iter().enumerate() {
            if let Some(t) = choice {
                for &w in g.neighbors(NodeId::new(u as u32)) {
                    self.know[w.index()].insert(*t);
                }
            }
        }
        let phi = potential(&self.know, &self.kprime);
        self.potential_history.push(phi);
    }
}

impl<M: BroadcastTokenView> BroadcastAdversary<M> for PotentialAdversary {
    fn graph_for_round(&mut self, _round: Round, _prev: &Graph, choices: &[Option<M>]) -> Graph {
        let tokens: Vec<Option<TokenId>> = choices
            .iter()
            .map(|c| c.as_ref().and_then(|m| m.token_id()))
            .collect();
        let g = self.build_graph(&tokens);
        self.mirror_delivery(&g, &tokens);
        g
    }

    fn name(&self) -> &str {
        "potential-adversary(§2)"
    }
}

/// The **weakly adaptive** variant of the potential adversary (footnote 4:
/// "a weakly adaptive adversary only knows the algorithm's randomness up to
/// the round before the current round").
///
/// It plays the same free-edge strategy, but against the broadcast choices
/// of the *previous* round — it must commit `G_r` before seeing round `r`'s
/// choices. A node that broadcasts a different token than the stale
/// prediction turns predicted-free edges into progress. The
/// `exp_adaptivity_gap` experiment shows round-robin flooding completing
/// against this adversary while the strongly adaptive
/// [`PotentialAdversary`] stalls it forever.
///
/// **Caveat:** footnote 4's weakly adaptive adversary knows all
/// *randomness* up to round `r − 1` and may simulate a deterministic
/// algorithm perfectly (for deterministic algorithms the two adversaries
/// coincide). This implementation does not simulate the algorithm — it
/// only replays stale observations — so it lower-bounds what a true weakly
/// adaptive adversary can do. The measured gap therefore isolates exactly
/// the value of *current-round choice information* to the free-edge
/// strategy, which is the ingredient the Theorem 2.3 proof relies on.
pub struct LaggedPotentialAdversary {
    inner: PotentialAdversary,
    prev_choices: Vec<Option<TokenId>>,
}

impl LaggedPotentialAdversary {
    /// Creates the weakly adaptive adversary (same parameters as
    /// [`PotentialAdversary::new`]).
    pub fn new(assignment: &TokenAssignment, kprime_prob: f64, seed: u64) -> Self {
        LaggedPotentialAdversary {
            prev_choices: vec![None; assignment.node_count()],
            inner: PotentialAdversary::new(assignment, kprime_prob, seed),
        }
    }

    /// The inner adversary's recorded analysis state.
    pub fn inner(&self) -> &PotentialAdversary {
        &self.inner
    }
}

impl<M: BroadcastTokenView> BroadcastAdversary<M> for LaggedPotentialAdversary {
    fn graph_for_round(&mut self, _round: Round, _prev: &Graph, choices: &[Option<M>]) -> Graph {
        let current: Vec<Option<TokenId>> = choices
            .iter()
            .map(|c| c.as_ref().and_then(|m| m.token_id()))
            .collect();
        // Commit the graph against LAST round's choices (the lag), then
        // mirror delivery with the choices that actually happened.
        let lagged = std::mem::replace(&mut self.prev_choices, current.clone());
        let g = self.inner.build_graph(&lagged);
        self.inner.mirror_delivery(&g, &current);
        g
    }

    fn name(&self) -> &str {
        "lagged-potential-adversary(weakly adaptive)"
    }
}

/// Samples a random initial assignment in which every token is given to
/// every node independently with probability `prob` (the Section 2 setup),
/// forcing at least one holder per token so the assignment is valid.
pub fn bernoulli_assignment(n: usize, k: usize, prob: f64, rng: &mut StdRng) -> TokenAssignment {
    let mut a = TokenAssignment::empty(n, k);
    for t in TokenId::all(k) {
        let mut any = false;
        for v in NodeId::all(n) {
            if rng.gen_bool(prob) {
                a.add_holder(t, v);
                any = true;
            }
        }
        if !any {
            a.add_holder(t, NodeId::new(rng.gen_range(0..n as u32)));
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flooding::RoundRobinBroadcast;
    use dynspread_sim::sim::{BroadcastSim, SimConfig};

    fn tid(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn kprime_sampling_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let none = KPrimeSets::sample(5, 10, 0.0, &mut rng);
        assert_eq!(none.total_size(), 0);
        let all = KPrimeSets::sample(5, 10, 1.0, &mut rng);
        assert_eq!(all.total_size(), 50);
    }

    #[test]
    fn kprime_quarter_concentrates() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, k) = (40, 40);
        let kp = KPrimeSets::sample(n, k, 0.25, &mut rng);
        let frac = kp.total_size() as f64 / (n * k) as f64;
        assert!(
            (0.18..0.32).contains(&frac),
            "K' density {frac} far from 1/4"
        );
    }

    #[test]
    fn free_edge_predicate_cases() {
        let k = 3;
        let empty = TokenSet::new(k);
        let mut has0 = TokenSet::new(k);
        has0.insert(tid(0));
        // Both silent → free.
        assert!(is_free_edge(None, None, &empty, &empty, &empty, &empty));
        // u broadcasts t0, v doesn't know it and K'_v misses it → non-free.
        assert!(!is_free_edge(
            Some(tid(0)),
            None,
            &empty,
            &empty,
            &empty,
            &empty
        ));
        // v already knows t0 → free.
        assert!(is_free_edge(
            Some(tid(0)),
            None,
            &empty,
            &has0,
            &empty,
            &empty
        ));
        // t0 ∈ K'_v → free (progress doesn't count).
        assert!(is_free_edge(
            Some(tid(0)),
            None,
            &empty,
            &empty,
            &empty,
            &has0
        ));
        // Both broadcast: each direction must be harmless.
        assert!(!is_free_edge(
            Some(tid(0)),
            Some(tid(0)),
            &empty,
            &has0,
            &empty,
            &empty
        ));
    }

    #[test]
    fn potential_is_sum_of_unions() {
        let k = 4;
        let mut rng = StdRng::seed_from_u64(3);
        let kp = KPrimeSets::sample(2, k, 0.0, &mut rng);
        let mut k0 = TokenSet::new(k);
        k0.insert(tid(0));
        k0.insert(tid(1));
        let k1 = TokenSet::new(k);
        assert_eq!(potential(&[k0, k1], &kp), 2);
    }

    #[test]
    fn free_edge_structure_all_silent_is_connected() {
        let (n, k) = (10, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let kp = KPrimeSets::sample(n, k, 0.25, &mut rng);
        let know = vec![TokenSet::new(k); n];
        let choices = vec![None; n];
        let st = free_edge_structure(&choices, &know, &kp);
        assert!(st.connected);
        assert_eq!(st.free_edges, n * (n - 1) / 2);
    }

    #[test]
    fn lemma_2_2_sparse_assignments_leave_free_graph_connected() {
        // With few broadcasters and K' density 1/4, the free-edge graph is
        // connected: the silent nodes form a clique and every broadcaster
        // needs only one silent node with its token in K' ∪ K.
        let (n, k) = (48, 24);
        let mut rng = StdRng::seed_from_u64(5);
        let mut connected_trials = 0;
        let trials = 20;
        for _ in 0..trials {
            let kp = KPrimeSets::sample(n, k, 0.25, &mut rng);
            let know = vec![TokenSet::new(k); n];
            let mut choices = vec![None; n];
            // β = 3 ≈ n/(c log n) broadcasters with random tokens.
            for _ in 0..3 {
                let v = rng.gen_range(0..n);
                choices[v] = Some(tid(rng.gen_range(0..k as u32)));
            }
            if free_edge_structure(&choices, &know, &kp).connected {
                connected_trials += 1;
            }
        }
        assert!(
            connected_trials >= trials - 2,
            "free graph connected in only {connected_trials}/{trials} sparse trials"
        );
    }

    #[test]
    fn adversary_initial_potential_below_bound() {
        // Φ(0) ≤ 0.8nk w.h.p. with initial knowledge density 1/4 and K'
        // density 1/4 (expected Φ(0) ≈ (1 − 0.75²)nk ≈ 0.44nk).
        let (n, k) = (32, 16);
        let mut rng = StdRng::seed_from_u64(6);
        let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
        let adv = PotentialAdversary::new(&assignment, 0.25, 7);
        let phi0 = adv.potential_history()[0];
        assert!(
            (phi0 as f64) < 0.8 * (n * k) as f64,
            "Φ(0) = {phi0} ≥ 0.8nk"
        );
    }

    #[test]
    fn phased_flooding_completes_against_the_adversary_in_nk_rounds() {
        // Phased flooding is immune to the adversary: every connected
        // round graph has a cut edge from the knower set, and in phase i
        // every knower broadcasts token i, so someone learns it.
        let (n, k) = (24, 12);
        let mut rng = StdRng::seed_from_u64(8);
        let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
        let nodes = crate::flooding::PhasedFlooding::nodes(&assignment);
        let adv = PotentialAdversary::new(&assignment, 0.25, 9);
        let mut sim = BroadcastSim::new(
            "phased-flooding",
            nodes,
            adv,
            &assignment,
            SimConfig::with_max_rounds((n * k) as Round + 1),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
        assert!(report.rounds <= (n * k) as Round);
        // The adversary forces a super-linear amortized cost per token.
        assert!(report.amortized() > n as f64);
    }

    #[test]
    fn round_robin_completes_against_the_weakly_adaptive_variant() {
        // Footnote 4's gap: with a one-round lag, the randomized-looking
        // rotation of round-robin broadcasts defeats the free-edge
        // prediction and progress leaks through.
        let (n, k) = (16, 8);
        let mut rng = StdRng::seed_from_u64(8);
        let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
        let nodes = RoundRobinBroadcast::nodes(&assignment);
        let adv = LaggedPotentialAdversary::new(&assignment, 0.25, 9);
        let mut sim = BroadcastSim::new(
            "round-robin",
            nodes,
            adv,
            &assignment,
            SimConfig::with_max_rounds(20_000),
        );
        let report = sim.run_to_completion();
        assert!(
            report.completed,
            "weakly adaptive adversary should not stall round-robin: {report}"
        );
    }

    #[test]
    fn round_robin_stalls_against_the_adversary() {
        // Round-robin flooding broadcasts a *different* token per knower per
        // round, so the cut argument fails: the adversary's free-edge graph
        // stays connected and progress stops — exactly the mechanism of
        // Lemma 2.2. This is why the paper's naive algorithm is phased.
        let (n, k) = (24, 12);
        let mut rng = StdRng::seed_from_u64(8);
        let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
        let nodes = RoundRobinBroadcast::nodes(&assignment);
        let adv = PotentialAdversary::new(&assignment, 0.25, 9);
        let mut sim = BroadcastSim::new(
            "round-robin",
            nodes,
            adv,
            &assignment,
            SimConfig::with_max_rounds(3000),
        );
        let report = sim.run_to_completion();
        assert!(
            !report.completed,
            "round-robin should stall against the §2 adversary: {report}"
        );
    }

    #[test]
    fn adversary_potential_increase_bounded_by_components() {
        let (n, k) = (24, 12);
        let mut rng = StdRng::seed_from_u64(10);
        let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
        // Drive the adversary directly with synthetic full-broadcast rounds.
        let mut adv = PotentialAdversary::new(&assignment, 0.25, 11);
        let know0: Vec<TokenSet> = NodeId::all(n)
            .map(|v| assignment.initial_knowledge(v))
            .collect();
        let mut choices: Vec<Option<crate::flooding::BcastMsg>> = know0
            .iter()
            .map(|s| s.iter().next().map(crate::flooding::BcastMsg))
            .collect();
        let mut prev = Graph::empty(n);
        for r in 1..=50 {
            let g = BroadcastAdversary::graph_for_round(&mut adv, r, &prev, &choices);
            assert!(g.is_connected());
            prev = g;
            // Rotate choices a little for variety.
            choices.rotate_left(1);
        }
        let increases = adv.potential_increases();
        let comps = adv.component_history();
        assert_eq!(increases.len(), comps.len());
        for (inc, &c) in increases.iter().zip(comps.iter()) {
            assert!(
                *inc <= 2 * (c.saturating_sub(1)) as u64,
                "potential grew by {inc} with {c} components"
            );
        }
    }

    #[test]
    fn bernoulli_assignment_is_valid_and_dense() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = bernoulli_assignment(20, 30, 0.25, &mut rng);
        assert!(a.is_valid());
        let total: usize = (0..30).map(|t| a.holders(tid(t as u32)).count()).sum();
        let density = total as f64 / 600.0;
        assert!((0.15..0.4).contains(&density), "density {density}");
    }
}
