//! Local per-edge history tracking for the unicast algorithms.
//!
//! Both the Single-Source and Multi-Source unicast algorithms classify
//! adjacent edges as **new**, **idle**, or **contributive** (Section 3.1)
//! and track outstanding token requests per edge. This state is purely
//! local: in the KT1 unicast model a node is informed of its neighbor IDs
//! at the beginning of each round, so it can detect insertions and removals
//! of its adjacent edges by diffing consecutive neighbor lists.

use dynspread_graph::{NodeId, Round};
use dynspread_sim::token::{TokenId, TokenSet};
use std::collections::{BTreeMap, VecDeque};

/// The per-round category of an adjacent edge (Section 3.1).
///
/// For an edge `{v, w}` (with `v` incomplete and `w` complete) in round `r`:
/// *new* if inserted at the beginning of round `r` or `r − 1`;
/// *contributive* if not new but a token was received over it since its
/// last insertion; *idle* otherwise. Requests are assigned new-first, then
/// idle, then contributive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeCategory {
    /// Inserted at the beginning of round `r` or `r − 1`.
    New,
    /// Neither new nor contributive.
    Idle,
    /// A token arrived over this edge since its last insertion.
    Contributive,
}

/// One tracked adjacent edge.
#[derive(Clone, Debug, Default)]
struct EdgeSlot {
    /// Last round the edge was observed present.
    last_seen: Option<Round>,
    /// Round of the most recent insertion.
    inserted_round: Round,
    /// Whether a token arrived over this edge since its last insertion.
    contributive: bool,
    /// Requests sent over this edge and not yet answered (front = oldest).
    pending: VecDeque<TokenId>,
}

/// Tracks the local view of all adjacent edges of one node: insertion
/// rounds, contributiveness, and outstanding requests.
///
/// The companion `in_flight` [`TokenSet`] (owned by the caller) mirrors the
/// union of all pending queues; the tracker keeps it in sync through the
/// `kill` callbacks.
///
/// Storage is **sparse** (an ordered map keyed by neighbor): a node only
/// ever has state for edges it has actually seen. The dense
/// `Vec<EdgeSlot>` this replaced cost `O(n)` per node — `O(n²)` across the
/// network, which at `n = 8192` was ~5 GB of zeroed slots before the first
/// round ran. A dead edge's entry is dropped outright: its pending
/// requests are killed on removal and its `new`/`contributive` state is
/// unconditionally reset on reinsertion, so absence and a default slot are
/// indistinguishable.
#[derive(Clone, Debug)]
pub struct EdgeTracker {
    slots: BTreeMap<NodeId, EdgeSlot>,
    prev_neighbors: Vec<NodeId>,
}

impl EdgeTracker {
    /// Creates a tracker for a node in an `n`-node network.
    pub fn new(_n: usize) -> Self {
        EdgeTracker {
            slots: BTreeMap::new(),
            prev_neighbors: Vec::new(),
        }
    }

    /// Refreshes history at the start of round `round` given the current
    /// (sorted) neighbor list. Outstanding requests on removed or freshly
    /// reinserted edges die; each dead request's token is removed from
    /// `in_flight` (it becomes requestable again).
    pub fn refresh(&mut self, round: Round, neighbors: &[NodeId], in_flight: &mut TokenSet) {
        let mut prev = std::mem::take(&mut self.prev_neighbors);
        for &u in &prev {
            if neighbors.binary_search(&u).is_err() {
                if let Some(mut slot) = self.slots.remove(&u) {
                    for t in slot.pending.drain(..) {
                        in_flight.remove(t);
                    }
                }
            }
        }
        for &u in neighbors {
            let slot = self.slots.entry(u).or_default();
            let was_present = slot.last_seen == Some(round.wrapping_sub(1));
            if !was_present {
                slot.inserted_round = round;
                slot.contributive = false;
                for t in slot.pending.drain(..) {
                    in_flight.remove(t);
                }
            }
            slot.last_seen = Some(round);
        }
        prev.clear();
        prev.extend_from_slice(neighbors);
        self.prev_neighbors = prev;
    }

    /// Classifies the edge to current neighbor `u` in round `round`.
    pub fn classify(&self, u: NodeId, round: Round) -> EdgeCategory {
        let (inserted_round, contributive) = self
            .slots
            .get(&u)
            .map_or((0, false), |s| (s.inserted_round, s.contributive));
        if inserted_round + 1 >= round {
            EdgeCategory::New
        } else if contributive {
            EdgeCategory::Contributive
        } else {
            EdgeCategory::Idle
        }
    }

    /// Marks the edge to `u` contributive (a token arrived over it).
    pub fn note_token(&mut self, u: NodeId) {
        self.slots.entry(u).or_default().contributive = true;
    }

    /// Records a request for `t` sent over the edge to `u`.
    pub fn push_pending(&mut self, u: NodeId, t: TokenId) {
        self.slots.entry(u).or_default().pending.push_back(t);
    }

    /// Whether the edge to `u` has any outstanding request.
    pub fn has_pending(&self, u: NodeId) -> bool {
        self.slots.get(&u).is_some_and(|s| !s.pending.is_empty())
    }

    /// Retires an outstanding request for `t` on the edge to `u` (the
    /// requested token arrived). Returns `true` if one was found.
    pub fn retire_pending(&mut self, u: NodeId, t: TokenId) -> bool {
        let Some(slot) = self.slots.get_mut(&u) else {
            return false;
        };
        if let Some(pos) = slot.pending.iter().position(|p| *p == t) {
            slot.pending.remove(pos);
            true
        } else {
            false
        }
    }

    /// Drops every outstanding request (used when the node becomes
    /// complete), clearing the matching `in_flight` entries.
    pub fn clear_all_pending(&mut self, in_flight: &mut TokenSet) {
        for slot in self.slots.values_mut() {
            for t in slot.pending.drain(..) {
                in_flight.remove(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn tid(i: u32) -> TokenId {
        TokenId::new(i)
    }

    #[test]
    fn fresh_edge_is_new_for_two_rounds_then_idle() {
        let mut tr = EdgeTracker::new(3);
        let mut fl = TokenSet::new(4);
        tr.refresh(5, &[nid(1)], &mut fl);
        assert_eq!(tr.classify(nid(1), 5), EdgeCategory::New);
        tr.refresh(6, &[nid(1)], &mut fl);
        assert_eq!(tr.classify(nid(1), 6), EdgeCategory::New);
        tr.refresh(7, &[nid(1)], &mut fl);
        assert_eq!(tr.classify(nid(1), 7), EdgeCategory::Idle);
    }

    #[test]
    fn token_arrival_makes_edge_contributive_until_reinsertion() {
        let mut tr = EdgeTracker::new(3);
        let mut fl = TokenSet::new(4);
        tr.refresh(1, &[nid(2)], &mut fl);
        tr.note_token(nid(2));
        tr.refresh(2, &[nid(2)], &mut fl);
        // Still new (inserted round 1 ≥ round − 1 = 1)…
        assert_eq!(tr.classify(nid(2), 2), EdgeCategory::New);
        tr.refresh(3, &[nid(2)], &mut fl);
        assert_eq!(tr.classify(nid(2), 3), EdgeCategory::Contributive);
        // Removal + reinsertion resets contributiveness.
        tr.refresh(4, &[], &mut fl);
        tr.refresh(5, &[nid(2)], &mut fl);
        assert_eq!(tr.classify(nid(2), 5), EdgeCategory::New);
        tr.refresh(6, &[nid(2)], &mut fl);
        tr.refresh(7, &[nid(2)], &mut fl);
        assert_eq!(tr.classify(nid(2), 7), EdgeCategory::Idle);
    }

    #[test]
    fn pending_requests_die_with_the_edge() {
        let mut tr = EdgeTracker::new(2);
        let mut fl = TokenSet::new(4);
        tr.refresh(1, &[nid(1)], &mut fl);
        fl.insert(tid(2));
        tr.push_pending(nid(1), tid(2));
        assert!(tr.has_pending(nid(1)));
        // Edge disappears: pending dies, token requestable again.
        tr.refresh(2, &[], &mut fl);
        assert!(!fl.contains(tid(2)));
        tr.refresh(3, &[nid(1)], &mut fl);
        assert!(!tr.has_pending(nid(1)));
    }

    #[test]
    fn retire_pending_matches_token() {
        let mut tr = EdgeTracker::new(2);
        let mut fl = TokenSet::new(4);
        tr.refresh(1, &[nid(1)], &mut fl);
        tr.push_pending(nid(1), tid(0));
        tr.push_pending(nid(1), tid(3));
        assert!(tr.retire_pending(nid(1), tid(3)));
        assert!(!tr.retire_pending(nid(1), tid(3)));
        assert!(tr.retire_pending(nid(1), tid(0)));
        assert!(!tr.has_pending(nid(1)));
    }

    #[test]
    fn clear_all_pending_resets_in_flight() {
        let mut tr = EdgeTracker::new(3);
        let mut fl = TokenSet::new(4);
        tr.refresh(1, &[nid(1), nid(2)], &mut fl);
        for (u, t) in [(nid(1), tid(0)), (nid(2), tid(1))] {
            fl.insert(t);
            tr.push_pending(u, t);
        }
        tr.clear_all_pending(&mut fl);
        assert!(fl.is_empty());
        assert!(!tr.has_pending(nid(1)));
        assert!(!tr.has_pending(nid(2)));
    }

    #[test]
    fn gap_in_presence_is_reinsertion() {
        let mut tr = EdgeTracker::new(2);
        let mut fl = TokenSet::new(1);
        tr.refresh(1, &[nid(1)], &mut fl);
        tr.refresh(2, &[nid(1)], &mut fl);
        tr.refresh(3, &[nid(1)], &mut fl);
        assert_eq!(tr.classify(nid(1), 3), EdgeCategory::Idle);
        // Absent in 4, back in 5 → new again.
        tr.refresh(4, &[], &mut fl);
        tr.refresh(5, &[nid(1)], &mut fl);
        assert_eq!(tr.classify(nid(1), 5), EdgeCategory::New);
        assert_eq!(tr.classify(nid(1), 6), EdgeCategory::New);
    }
}
