//! Local-broadcast flooding algorithms (Sections 1 and 2).
//!
//! The naive token-forwarding upper bound in the local broadcast model:
//! "an O(n²) amortized message upper bound per token is straightforward to
//! obtain by using flooding (each node broadcasts each token for n rounds)".
//!
//! Two protocols:
//!
//! * [`FloodingBroadcast`] — the paper's naive algorithm: every node
//!   broadcasts every token it knows for `n` rounds (round-robin across
//!   tokens, one token per round by the bandwidth constraint). Total cost
//!   is at most `n` broadcasts per (node, token) pair → `O(n²)` amortized
//!   per token.
//! * [`RoundRobinBroadcast`] — broadcasts known tokens cyclically forever;
//!   used against the Section 2 [`crate::lower_bound::PotentialAdversary`],
//!   where termination is decided by the global tracker and the adversary
//!   controls progress.

use dynspread_graph::{NodeId, Round};
use dynspread_sim::message::{MessageClass, MessagePayload};
use dynspread_sim::protocol::BroadcastProtocol;
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};
use std::collections::VecDeque;

/// A local-broadcast message carrying exactly one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BcastMsg(pub TokenId);

impl MessagePayload for BcastMsg {
    fn token_count(&self) -> usize {
        1
    }

    fn class(&self) -> MessageClass {
        MessageClass::Token
    }
}

/// The paper's naive flooding algorithm: each node broadcasts each known
/// token `repeats` times (with `repeats = n`, every token reaches every
/// node on any always-connected dynamic graph).
///
/// Why `n` rounds suffice: in every round, the set of nodes that know token
/// `τ` either already equals `V` or has (by connectivity) an edge to a
/// non-knowing node, and every knowing node is still broadcasting `τ` in
/// one of its `n` repeat slots… the classical flooding argument, valid as
/// long as every knowing node keeps broadcasting `τ` until `n` repeats are
/// spent.
#[derive(Clone, Debug)]
pub struct FloodingBroadcast {
    know: TokenSet,
    /// Remaining broadcast budget per token (0 = exhausted or unknown).
    remaining: Vec<u32>,
    /// Round-robin queue of tokens with remaining budget.
    queue: VecDeque<TokenId>,
    repeats: u32,
}

impl FloodingBroadcast {
    /// Creates node `v` with `repeats` broadcast repetitions per token
    /// (use `repeats = n` for the paper's guarantee).
    pub fn new(v: NodeId, assignment: &TokenAssignment, repeats: u32) -> Self {
        let know = assignment.initial_knowledge(v);
        let mut remaining = vec![0u32; assignment.token_count()];
        let mut queue = VecDeque::new();
        for t in know.iter() {
            remaining[t.index()] = repeats;
            queue.push_back(t);
        }
        FloodingBroadcast {
            know,
            remaining,
            queue,
            repeats,
        }
    }

    /// Builds all `n` node protocols with `repeats = n`.
    pub fn nodes(assignment: &TokenAssignment) -> Vec<FloodingBroadcast> {
        let n = assignment.node_count();
        NodeId::all(n)
            .map(|v| FloodingBroadcast::new(v, assignment, n as u32))
            .collect()
    }

    /// Whether this node has exhausted all broadcast budgets.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }
}

impl BroadcastProtocol for FloodingBroadcast {
    type Msg = BcastMsg;

    fn broadcast(&mut self, _round: Round) -> Option<BcastMsg> {
        while let Some(t) = self.queue.pop_front() {
            if self.remaining[t.index()] > 0 {
                self.remaining[t.index()] -= 1;
                if self.remaining[t.index()] > 0 {
                    self.queue.push_back(t);
                }
                return Some(BcastMsg(t));
            }
        }
        None
    }

    fn receive(&mut self, _round: Round, _from: NodeId, msg: &BcastMsg) {
        if self.know.insert(msg.0) {
            self.remaining[msg.0.index()] = self.repeats;
            self.queue.push_back(msg.0);
        }
    }

    fn known_tokens(&self) -> &TokenSet {
        &self.know
    }
}

/// Token-by-token *phased* flooding: the naive `O(nk)`-round algorithm that
/// is correct even against the strongly adaptive adversary.
///
/// Rounds are partitioned into phases of `n` rounds; in phase `i` (taken
/// cyclically over the `k` tokens), **every node that knows token `i`
/// broadcasts token `i`**. Because every `G_r` is connected, each phase
/// round has an edge from the knower set `S` to `V ∖ S`, so at least one
/// new node learns token `i` per round — token `i` is fully disseminated
/// within its `n`-round phase, and one sweep of `nk` rounds completes
/// k-token dissemination. Messages: at most `n` broadcasts per round →
/// `O(n²k)` total, i.e. the `O(n²)` amortized upper bound that Theorem 2.3
/// proves near-optimal.
#[derive(Clone, Debug)]
pub struct PhasedFlooding {
    know: TokenSet,
    n: u64,
    k: u64,
}

impl PhasedFlooding {
    /// Creates node `v`.
    pub fn new(v: NodeId, assignment: &TokenAssignment) -> Self {
        PhasedFlooding {
            know: assignment.initial_knowledge(v),
            n: assignment.node_count() as u64,
            k: assignment.token_count() as u64,
        }
    }

    /// Builds all `n` node protocols.
    pub fn nodes(assignment: &TokenAssignment) -> Vec<PhasedFlooding> {
        NodeId::all(assignment.node_count())
            .map(|v| PhasedFlooding::new(v, assignment))
            .collect()
    }

    /// The token scheduled for broadcast in `round` (phase structure is
    /// common knowledge: everyone knows `n`, `k`, and the round number).
    pub fn scheduled_token(&self, round: Round) -> TokenId {
        let phase = (round - 1) / self.n;
        TokenId::new((phase % self.k) as u32)
    }
}

impl BroadcastProtocol for PhasedFlooding {
    type Msg = BcastMsg;

    fn broadcast(&mut self, round: Round) -> Option<BcastMsg> {
        let t = self.scheduled_token(round);
        self.know.contains(t).then_some(BcastMsg(t))
    }

    fn receive(&mut self, _round: Round, _from: NodeId, msg: &BcastMsg) {
        self.know.insert(msg.0);
    }

    fn known_tokens(&self) -> &TokenSet {
        &self.know
    }
}

/// Round-robin broadcaster: cycles through its known tokens forever, never
/// silent once it knows at least one token.
///
/// This is the natural "always make progress if the adversary allows it"
/// strategy for lower-bound experiments: the Section 2 adversary guarantees
/// that with fewer than `n/(c log n)` broadcasters no token is ever learned,
/// so an algorithm must keep nearly everyone broadcasting, and this one
/// keeps *everyone* broadcasting.
#[derive(Clone, Debug)]
pub struct RoundRobinBroadcast {
    know: TokenSet,
    queue: VecDeque<TokenId>,
}

impl RoundRobinBroadcast {
    /// Creates node `v`.
    pub fn new(v: NodeId, assignment: &TokenAssignment) -> Self {
        let know = assignment.initial_knowledge(v);
        let queue = know.iter().collect();
        RoundRobinBroadcast { know, queue }
    }

    /// Builds all `n` node protocols.
    pub fn nodes(assignment: &TokenAssignment) -> Vec<RoundRobinBroadcast> {
        NodeId::all(assignment.node_count())
            .map(|v| RoundRobinBroadcast::new(v, assignment))
            .collect()
    }
}

impl BroadcastProtocol for RoundRobinBroadcast {
    type Msg = BcastMsg;

    fn broadcast(&mut self, _round: Round) -> Option<BcastMsg> {
        let t = self.queue.pop_front()?;
        self.queue.push_back(t);
        Some(BcastMsg(t))
    }

    fn receive(&mut self, _round: Round, _from: NodeId, msg: &BcastMsg) {
        if self.know.insert(msg.0) {
            self.queue.push_back(msg.0);
        }
    }

    fn known_tokens(&self) -> &TokenSet {
        &self.know
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::{EdgeMarkovian, PeriodicRewiring, StaticAdversary};
    use dynspread_graph::Graph;
    use dynspread_sim::sim::{BroadcastSim, SimConfig};

    #[test]
    fn flooding_completes_on_static_path() {
        let n = 6;
        let k = 3;
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let mut sim = BroadcastSim::new(
            "flooding",
            FloodingBroadcast::nodes(&a),
            StaticAdversary::new(Graph::path(n)),
            &a,
            SimConfig::with_max_rounds(10_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
        assert_eq!(report.learnings, (k * (n - 1)) as u64);
    }

    #[test]
    fn flooding_completes_under_rewiring() {
        let n = 8;
        let k = 4;
        let a = TokenAssignment::round_robin_sources(n, k, 4);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 2, 5);
        let mut sim = BroadcastSim::new(
            "flooding",
            FloodingBroadcast::nodes(&a),
            adv,
            &a,
            SimConfig::with_max_rounds(100_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
    }

    #[test]
    fn flooding_completes_under_edge_markovian() {
        let n = 8;
        let k = 3;
        let a = TokenAssignment::n_gossip(n);
        // n-gossip needs k = n.
        let _ = k;
        let adv = EdgeMarkovian::new(0.1, 0.2, 1, 23);
        let mut sim = BroadcastSim::new(
            "flooding",
            FloodingBroadcast::nodes(&a),
            adv,
            &a,
            SimConfig::with_max_rounds(100_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
    }

    #[test]
    fn flooding_message_bound_is_n_per_node_token_pair() {
        let n = 7;
        let k = 4;
        let a = TokenAssignment::single_source(n, k, NodeId::new(0));
        let mut sim = BroadcastSim::new(
            "flooding",
            FloodingBroadcast::nodes(&a),
            StaticAdversary::new(Graph::cycle(n)),
            &a,
            SimConfig::with_max_rounds(100_000),
        );
        // Run until quiescence (all budgets exhausted), not just completion.
        let report =
            sim.run_until(|s| (0..n).all(|i| s.node(NodeId::new(i as u32)).is_quiescent()));
        assert!(report.completed);
        // Every (node, token) pair broadcasts at most n times.
        assert!(report.total_messages <= (n * n * k) as u64);
        // Amortized per token ≤ n².
        assert!(report.amortized() <= (n * n) as f64);
    }

    #[test]
    fn flooding_budget_exhausts_and_goes_silent() {
        let a = TokenAssignment::single_source(1, 2, NodeId::new(0));
        let mut node = FloodingBroadcast::new(NodeId::new(0), &a, 2);
        let mut count = 0;
        for r in 1..=10 {
            if node.broadcast(r).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 4, "2 tokens × 2 repeats");
        assert!(node.is_quiescent());
    }

    #[test]
    fn flooding_alternates_tokens_round_robin() {
        let a = TokenAssignment::single_source(1, 2, NodeId::new(0));
        let mut node = FloodingBroadcast::new(NodeId::new(0), &a, 2);
        let seq: Vec<TokenId> = (1..=4).map(|r| node.broadcast(r).unwrap().0).collect();
        assert_eq!(
            seq,
            vec![
                TokenId::new(0),
                TokenId::new(1),
                TokenId::new(0),
                TokenId::new(1)
            ]
        );
    }

    #[test]
    fn phased_flooding_schedule_is_common_knowledge() {
        let a = TokenAssignment::round_robin_sources(4, 3, 2);
        let node = PhasedFlooding::new(NodeId::new(0), &a);
        // n = 4: rounds 1-4 → token 0, rounds 5-8 → token 1, 9-12 → token 2,
        // then the sweep repeats.
        assert_eq!(node.scheduled_token(1), TokenId::new(0));
        assert_eq!(node.scheduled_token(4), TokenId::new(0));
        assert_eq!(node.scheduled_token(5), TokenId::new(1));
        assert_eq!(node.scheduled_token(12), TokenId::new(2));
        assert_eq!(node.scheduled_token(13), TokenId::new(0));
    }

    #[test]
    fn phased_flooding_broadcasts_only_known_scheduled_token() {
        let a = TokenAssignment::round_robin_sources(4, 2, 2);
        // Node 2 knows nothing initially: silent in every phase.
        let mut silent = PhasedFlooding::new(NodeId::new(2), &a);
        assert_eq!(silent.broadcast(1), None);
        // Node 0 holds token 0: broadcasts in phase 0 only.
        let mut holder = PhasedFlooding::new(NodeId::new(0), &a);
        assert_eq!(holder.broadcast(1), Some(BcastMsg(TokenId::new(0))));
        assert_eq!(holder.broadcast(5), None);
        // After learning token 1 it participates in phase 1 too.
        holder.receive(5, NodeId::new(1), &BcastMsg(TokenId::new(1)));
        assert_eq!(holder.broadcast(6), Some(BcastMsg(TokenId::new(1))));
    }

    #[test]
    fn phased_flooding_completes_within_nk_rounds_under_rewiring() {
        let n = 8;
        let k = 5;
        let a = TokenAssignment::round_robin_sources(n, k, 5);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 1, 77);
        let mut sim = BroadcastSim::new(
            "phased-flooding",
            PhasedFlooding::nodes(&a),
            adv,
            &a,
            SimConfig::with_max_rounds((n * k) as Round),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
        assert!(report.amortized() <= (n * n) as f64);
    }

    #[test]
    fn round_robin_never_goes_silent() {
        let a = TokenAssignment::single_source(2, 1, NodeId::new(0));
        let mut node = RoundRobinBroadcast::new(NodeId::new(0), &a);
        for r in 1..=20 {
            assert!(node.broadcast(r).is_some());
        }
        // A node with no tokens stays silent.
        let mut empty = RoundRobinBroadcast::new(NodeId::new(1), &a);
        assert!(empty.broadcast(1).is_none());
    }

    #[test]
    fn round_robin_completes_on_static_star() {
        let n = 6;
        let a = TokenAssignment::n_gossip(n);
        let mut sim = BroadcastSim::new(
            "round-robin",
            RoundRobinBroadcast::nodes(&a),
            StaticAdversary::new(Graph::star(n)),
            &a,
            SimConfig::with_max_rounds(10_000),
        );
        let report = sim.run_to_completion();
        assert!(report.completed, "{report}");
    }

    #[test]
    fn received_token_joins_rotation() {
        let a = TokenAssignment::single_source(2, 3, NodeId::new(0));
        let mut node = RoundRobinBroadcast::new(NodeId::new(1), &a);
        node.receive(1, NodeId::new(0), &BcastMsg(TokenId::new(2)));
        assert_eq!(node.broadcast(2), Some(BcastMsg(TokenId::new(2))));
        // Duplicate receipt doesn't duplicate the queue entry.
        node.receive(2, NodeId::new(0), &BcastMsg(TokenId::new(2)));
        assert_eq!(node.broadcast(3), Some(BcastMsg(TokenId::new(2))));
        assert_eq!(node.broadcast(4), Some(BcastMsg(TokenId::new(2))));
    }
}
