//! Property-based tests of the core algorithm machinery.

use dynspread_core::flooding::PhasedFlooding;
use dynspread_core::gf2::{Gf2Basis, Gf2Vector};
use dynspread_core::leader_election::{run_election, ElectionMode};
use dynspread_core::lower_bound::{
    bernoulli_assignment, free_edge_structure, is_free_edge, KPrimeSets, PotentialAdversary,
};
use dynspread_core::network_coding::RlncNode;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::NodeId;
use dynspread_sim::sim::{BroadcastSim, SimConfig};
use dynspread_sim::token::{TokenId, TokenSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn free_edge_predicate_is_symmetric(
        k in 1usize..20,
        seed in 0u64..1000,
        iu in prop::option::of(0u32..20),
        iv in prop::option::of(0u32..20),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KPrimeSets::sample(2, k, 0.3, &mut rng);
        let mk = |s: u64| {
            let mut t = TokenSet::new(k);
            let mut r = StdRng::seed_from_u64(s);
            for i in TokenId::all(k) {
                if rand::Rng::gen_bool(&mut r, 0.3) {
                    t.insert(i);
                }
            }
            t
        };
        let ku = mk(seed + 1);
        let kv = mk(seed + 2);
        let iu = iu.map(|i| TokenId::new(i % k as u32));
        let iv = iv.map(|i| TokenId::new(i % k as u32));
        let a = is_free_edge(iu, iv, &ku, &kv, kp.get(NodeId::new(0)), kp.get(NodeId::new(1)));
        let b = is_free_edge(iv, iu, &kv, &ku, kp.get(NodeId::new(1)), kp.get(NodeId::new(0)));
        prop_assert_eq!(a, b, "free-edge predicate must be symmetric");
    }

    #[test]
    fn all_silent_rounds_are_fully_free(
        n in 2usize..20,
        k in 1usize..16,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kp = KPrimeSets::sample(n, k, 0.25, &mut rng);
        let know = vec![TokenSet::new(k); n];
        let st = free_edge_structure(&vec![None; n], &know, &kp);
        prop_assert_eq!(st.free_edges, n * (n - 1) / 2);
        prop_assert!(st.connected);
    }

    #[test]
    fn potential_adversary_invariants_hold_on_random_instances(
        n in 6usize..20,
        seed in 0u64..500,
    ) {
        let k = n / 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
        let adversary = PotentialAdversary::new(&assignment, 0.25, seed + 1);
        let mut sim = BroadcastSim::new(
            "phased-flooding",
            PhasedFlooding::nodes(&assignment),
            adversary,
            &assignment,
            SimConfig::with_max_rounds(2 * (n * k) as u64),
        );
        let report = sim.run_to_completion();
        prop_assert!(report.completed, "{}", report);
        // Potential is monotone and increases ≤ 2(components − 1) per round.
        let phis = sim.adversary().potential_history();
        prop_assert!(phis.windows(2).all(|w| w[1] >= w[0]));
        let incs = sim.adversary().potential_increases();
        let comps = sim.adversary().component_history();
        for (inc, &c) in incs.iter().zip(comps.iter()) {
            prop_assert!(*inc <= 2 * (c.saturating_sub(1)) as u64);
        }
        // Final potential is exactly nk (everyone knows everything).
        prop_assert_eq!(*phis.last().unwrap(), (n * k) as u64);
    }

    #[test]
    fn gf2_insert_preserves_span_membership(
        k in 1usize..24,
        vectors in prop::collection::vec(prop::collection::vec(prop::bool::ANY, 1..24), 1..12),
    ) {
        let mut basis = Gf2Basis::new(k);
        let mut inserted: Vec<Gf2Vector> = Vec::new();
        for bits in vectors {
            let mut v = Gf2Vector::zero(k);
            for (i, &b) in bits.iter().take(k).enumerate() {
                v.set(i, b);
            }
            let was_independent = basis.insert(v.clone());
            // Whatever was inserted is in the span afterwards.
            prop_assert!(basis.contains(&v));
            // Rank only grows on independent vectors.
            if !was_independent {
                prop_assert!(inserted.len() >= basis.rank());
            }
            inserted.push(v);
            prop_assert!(basis.rank() <= k);
        }
        // The span contains every pairwise XOR of inserted vectors.
        for i in 0..inserted.len() {
            for j in 0..inserted.len() {
                let mut x = inserted[i].clone();
                x.xor_assign(&inserted[j]);
                prop_assert!(basis.contains(&x));
            }
        }
    }

    #[test]
    fn rlnc_completes_and_ranks_are_monotone(
        n in 4usize..12,
        seed in 0u64..500,
    ) {
        let assignment = dynspread_sim::token::TokenAssignment::n_gossip(n);
        let adv = PeriodicRewiring::new(Topology::RandomTree, 1, seed);
        let mut sim = BroadcastSim::new(
            "rlnc",
            RlncNode::nodes(&assignment, seed + 7),
            adv,
            &assignment,
            SimConfig::with_max_rounds(40 * n as u64),
        );
        let mut last_ranks = vec![0usize; n];
        while !sim.tracker().all_complete() && sim.dynamic_graph().round() < 40 * n as u64 {
            sim.step();
            for v in NodeId::all(n) {
                let r = sim.node(v).rank();
                prop_assert!(r >= last_ranks[v.index()], "rank decreased at {v}");
                last_ranks[v.index()] = r;
            }
        }
        prop_assert!(sim.tracker().all_complete(), "RLNC did not complete");
        prop_assert!(last_ranks.iter().all(|&r| r == n));
    }

    #[test]
    fn election_always_selects_the_max_id(
        n in 2usize..20,
        seed in 0u64..500,
        eager in prop::bool::ANY,
        period in 1u64..5,
    ) {
        let mode = if eager { ElectionMode::Eager } else { ElectionMode::OnChange };
        let adv = PeriodicRewiring::new(Topology::RandomTree, period, seed);
        let (report, converged) = run_election(n, mode, adv, 50_000 + 100 * n as u64);
        prop_assert!(converged, "{:?} failed: {}", mode, report);
        // Eager converges within n − 1 rounds on any connected dynamics.
        if eager {
            prop_assert!(report.rounds <= n as u64);
        }
    }
}
