//! Undirected edges and edge sets.
//!
//! All communication graphs in the paper are undirected; an edge `{u, v}` is
//! stored in normalized form with the smaller endpoint first so that equal
//! edges compare equal regardless of construction order.

use crate::node::NodeId;
use std::collections::BTreeSet;
use std::fmt;

/// An undirected edge `{u, v}` between two distinct nodes.
///
/// The constructor normalizes endpoint order, so `Edge::new(a, b) ==
/// Edge::new(b, a)`.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{Edge, NodeId};
///
/// let e = Edge::new(NodeId::new(4), NodeId::new(1));
/// assert_eq!(e.lo(), NodeId::new(1));
/// assert_eq!(e.hi(), NodeId::new(4));
/// assert_eq!(e, Edge::new(NodeId::new(1), NodeId::new(4)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Creates the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`: the model has no self-loops on *actual* edges
    /// (the virtual self-loops of Algorithm 2 never materialize as edges).
    #[inline]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert!(u != v, "self-loop edge {u} is not allowed");
        if u < v {
            Edge { lo: u, hi: v }
        } else {
            Edge { lo: v, hi: u }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub const fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub const fn hi(self) -> NodeId {
        self.hi
    }

    /// Both endpoints, smaller first.
    #[inline]
    pub const fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Returns the endpoint opposite to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: NodeId) -> NodeId {
        if v == self.lo {
            self.hi
        } else if v == self.hi {
            self.lo
        } else {
            panic!("{v} is not an endpoint of {self:?}")
        }
    }

    /// Whether `v` is an endpoint of this edge.
    #[inline]
    pub fn touches(self, v: NodeId) -> bool {
        v == self.lo || v == self.hi
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.lo, self.hi)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.lo, self.hi)
    }
}

/// An ordered set of undirected edges.
///
/// Backed by a `BTreeSet` so iteration order is deterministic — important
/// because adversaries and algorithms iterate edge sets while holding seeded
/// RNGs, and runs must be reproducible.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{Edge, EdgeSet, NodeId};
///
/// let mut es = EdgeSet::new();
/// es.insert(Edge::new(NodeId::new(0), NodeId::new(1)));
/// es.insert(Edge::new(NodeId::new(1), NodeId::new(0)));
/// assert_eq!(es.len(), 1);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct EdgeSet {
    set: BTreeSet<Edge>,
}

impl EdgeSet {
    /// Creates an empty edge set.
    pub fn new() -> Self {
        EdgeSet::default()
    }

    /// Inserts an edge; returns `true` if it was not already present.
    pub fn insert(&mut self, e: Edge) -> bool {
        self.set.insert(e)
    }

    /// Removes an edge; returns `true` if it was present.
    pub fn remove(&mut self, e: Edge) -> bool {
        self.set.remove(&e)
    }

    /// Whether the edge is present.
    pub fn contains(&self, e: Edge) -> bool {
        self.set.contains(&e)
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates edges in normalized (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.set.iter().copied()
    }

    /// Edges in `self` that are not in `other` (set difference).
    ///
    /// This is the primitive behind the paper's `E_r^+ = E_r \ E_{r-1}`
    /// (inserted edges) and `E_r^- = E_{r-1} \ E_r` (removed edges).
    pub fn difference<'a>(&'a self, other: &'a EdgeSet) -> impl Iterator<Item = Edge> + 'a {
        self.set.difference(&other.set).copied()
    }
}

impl FromIterator<Edge> for EdgeSet {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        EdgeSet {
            set: iter.into_iter().collect(),
        }
    }
}

impl Extend<Edge> for EdgeSet {
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        self.set.extend(iter);
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.set.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = Edge;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Edge>>;

    fn into_iter(self) -> Self::IntoIter {
        self.set.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(u: u32, v: u32) -> Edge {
        Edge::new(NodeId::new(u), NodeId::new(v))
    }

    #[test]
    fn edge_is_normalized() {
        assert_eq!(e(3, 1), e(1, 3));
        assert_eq!(e(3, 1).lo(), NodeId::new(1));
        assert_eq!(e(3, 1).hi(), NodeId::new(3));
        assert_eq!(e(3, 1).endpoints(), (NodeId::new(1), NodeId::new(3)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = e(2, 2);
    }

    #[test]
    fn other_endpoint() {
        assert_eq!(e(1, 3).other(NodeId::new(1)), NodeId::new(3));
        assert_eq!(e(1, 3).other(NodeId::new(3)), NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let _ = e(1, 3).other(NodeId::new(2));
    }

    #[test]
    fn touches() {
        assert!(e(1, 3).touches(NodeId::new(1)));
        assert!(e(1, 3).touches(NodeId::new(3)));
        assert!(!e(1, 3).touches(NodeId::new(2)));
    }

    #[test]
    fn edge_set_dedupes_normalized_edges() {
        let mut es = EdgeSet::new();
        assert!(es.insert(e(0, 1)));
        assert!(!es.insert(e(1, 0)));
        assert_eq!(es.len(), 1);
        assert!(es.contains(e(0, 1)));
        assert!(es.remove(e(1, 0)));
        assert!(es.is_empty());
    }

    #[test]
    fn edge_set_difference_models_insertions_and_removals() {
        let prev: EdgeSet = [e(0, 1), e(1, 2)].into_iter().collect();
        let cur: EdgeSet = [e(1, 2), e(2, 3)].into_iter().collect();
        let inserted: Vec<_> = cur.difference(&prev).collect();
        let removed: Vec<_> = prev.difference(&cur).collect();
        assert_eq!(inserted, vec![e(2, 3)]);
        assert_eq!(removed, vec![e(0, 1)]);
    }

    #[test]
    fn edge_set_iterates_in_deterministic_order() {
        let es: EdgeSet = [e(2, 3), e(0, 5), e(0, 1)].into_iter().collect();
        let order: Vec<_> = es.iter().collect();
        assert_eq!(order, vec![e(0, 1), e(0, 5), e(2, 3)]);
    }
}
