//! Undirected edges and edge sets.
//!
//! All communication graphs in the paper are undirected; an edge `{u, v}` is
//! stored in normalized form with the smaller endpoint first so that equal
//! edges compare equal regardless of construction order.

use crate::node::NodeId;
use std::fmt;

/// An undirected edge `{u, v}` between two distinct nodes.
///
/// The constructor normalizes endpoint order, so `Edge::new(a, b) ==
/// Edge::new(b, a)`.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{Edge, NodeId};
///
/// let e = Edge::new(NodeId::new(4), NodeId::new(1));
/// assert_eq!(e.lo(), NodeId::new(1));
/// assert_eq!(e.hi(), NodeId::new(4));
/// assert_eq!(e, Edge::new(NodeId::new(1), NodeId::new(4)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Creates the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`: the model has no self-loops on *actual* edges
    /// (the virtual self-loops of Algorithm 2 never materialize as edges).
    #[inline]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert!(u != v, "self-loop edge {u} is not allowed");
        if u < v {
            Edge { lo: u, hi: v }
        } else {
            Edge { lo: v, hi: u }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub const fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub const fn hi(self) -> NodeId {
        self.hi
    }

    /// Both endpoints, smaller first.
    #[inline]
    pub const fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Returns the endpoint opposite to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: NodeId) -> NodeId {
        if v == self.lo {
            self.hi
        } else if v == self.hi {
            self.lo
        } else {
            panic!("{v} is not an endpoint of {self:?}")
        }
    }

    /// Whether `v` is an endpoint of this edge.
    #[inline]
    pub fn touches(self, v: NodeId) -> bool {
        v == self.lo || v == self.hi
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.lo, self.hi)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.lo, self.hi)
    }
}

/// An ordered set of undirected edges.
///
/// Hybrid representation tuned for the simulator's hot loop:
///
/// * a `Vec<Edge>` kept sorted in normalized lexicographic order, so
///   iteration is deterministic (adversaries and algorithms iterate edge
///   sets while holding seeded RNGs, and runs must be reproducible) and
///   set difference is a linear scan;
/// * a word-packed adjacency bitmap (`rows[lo]` has bit `hi` set), grown on
///   demand, making membership tests O(1).
///
/// Single-edge insert/remove keeps the vector sorted via binary search
/// (an `memmove` of `Copy` pairs — cheap at simulator scales), with an O(1)
/// append fast path for edges arriving in sorted order; bulk construction
/// (`FromIterator` / `Extend`) sorts once.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{Edge, EdgeSet, NodeId};
///
/// let mut es = EdgeSet::new();
/// es.insert(Edge::new(NodeId::new(0), NodeId::new(1)));
/// es.insert(Edge::new(NodeId::new(1), NodeId::new(0)));
/// assert_eq!(es.len(), 1);
/// ```
#[derive(Clone, Default)]
pub struct EdgeSet {
    /// Sorted in (lo, hi) order.
    edges: Vec<Edge>,
    /// Flat word-packed bitmap: bit `hi` of row `lo` lives at
    /// `bits[lo * stride + hi/64]`. One allocation, so cloning an edge set
    /// is a single memcpy. Grown geometrically on first touch.
    bits: Vec<u64>,
    /// Number of allocated rows (max `lo` touched + 1).
    rows: usize,
    /// Words per row (covers max `hi` touched, power of two).
    stride: usize,
}

impl EdgeSet {
    /// Creates an empty edge set.
    pub fn new() -> Self {
        EdgeSet::default()
    }

    #[inline]
    fn bit_is_set(&self, e: Edge) -> bool {
        let (row, bit) = (e.lo().index(), e.hi().index());
        row < self.rows
            && bit / 64 < self.stride
            && self.bits[row * self.stride + bit / 64] >> (bit % 64) & 1 == 1
    }

    /// Grows the bitmap so `(row, colw)` is addressable.
    #[cold]
    fn grow(&mut self, row: usize, colw: usize) {
        if colw >= self.stride {
            let new_stride = (colw + 1).next_power_of_two();
            let mut nb = vec![0u64; self.rows.max(row + 1) * new_stride];
            for r in 0..self.rows {
                nb[r * new_stride..r * new_stride + self.stride]
                    .copy_from_slice(&self.bits[r * self.stride..(r + 1) * self.stride]);
            }
            self.bits = nb;
            self.stride = new_stride;
            self.rows = self.rows.max(row + 1);
        } else if row >= self.rows {
            // Geometric row growth keeps repeated appends amortized O(1).
            self.rows = (row + 1).max(self.rows * 2);
            self.bits.resize(self.rows * self.stride, 0);
        }
    }

    #[inline]
    fn set_bit(&mut self, e: Edge) {
        let (row, bit) = (e.lo().index(), e.hi().index());
        if row >= self.rows || bit / 64 >= self.stride {
            self.grow(row, bit / 64);
        }
        self.bits[row * self.stride + bit / 64] |= 1 << (bit % 64);
    }

    #[inline]
    fn clear_bit(&mut self, e: Edge) {
        let (row, bit) = (e.lo().index(), e.hi().index());
        if row < self.rows && bit / 64 < self.stride {
            self.bits[row * self.stride + bit / 64] &= !(1 << (bit % 64));
        }
    }

    fn rebuild_bits(&mut self) {
        self.bits.fill(0);
        let edges = std::mem::take(&mut self.edges);
        for &e in &edges {
            self.set_bit(e);
        }
        self.edges = edges;
    }

    /// Builds from an already sorted, deduplicated edge vector — the bulk
    /// path behind `FromIterator` and `Graph::from_edges` (one sort, one
    /// bitmap allocation, no per-edge shifting).
    pub(crate) fn from_sorted_vec(edges: Vec<Edge>) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        let mut set = EdgeSet {
            edges,
            bits: Vec::new(),
            rows: 0,
            stride: 0,
        };
        if let Some(max_hi) = set.edges.iter().map(|e| e.hi().index()).max() {
            let max_lo = set.edges.last().expect("nonempty").lo().index();
            set.stride = (max_hi / 64 + 1).next_power_of_two();
            set.rows = max_lo + 1;
            set.bits = vec![0; set.rows * set.stride];
            let edges = std::mem::take(&mut set.edges);
            for &e in &edges {
                set.bits[e.lo().index() * set.stride + e.hi().index() / 64] |=
                    1 << (e.hi().index() % 64);
            }
            set.edges = edges;
        }
        set
    }

    /// Inserts an edge; returns `true` if it was not already present.
    pub fn insert(&mut self, e: Edge) -> bool {
        if self.bit_is_set(e) {
            return false;
        }
        self.set_bit(e);
        match self.edges.last() {
            Some(&last) if last >= e => {
                let pos = self.edges.partition_point(|&x| x < e);
                self.edges.insert(pos, e);
            }
            _ => self.edges.push(e),
        }
        true
    }

    /// Removes an edge; returns `true` if it was present.
    pub fn remove(&mut self, e: Edge) -> bool {
        if !self.bit_is_set(e) {
            return false;
        }
        self.clear_bit(e);
        let pos = self.edges.partition_point(|&x| x < e);
        debug_assert!(self.edges[pos] == e);
        self.edges.remove(pos);
        true
    }

    /// Whether the edge is present — O(1) via the adjacency bitmap.
    #[inline]
    pub fn contains(&self, e: Edge) -> bool {
        self.bit_is_set(e)
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates edges in normalized (lexicographic) order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Edge> + ExactSizeIterator + '_ {
        self.edges.iter().copied()
    }

    /// The edges as a sorted slice (normalized lexicographic order).
    #[inline]
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges in `self` that are not in `other` (set difference).
    ///
    /// This is the primitive behind the paper's `E_r^+ = E_r \ E_{r-1}`
    /// (inserted edges) and `E_r^- = E_{r-1} \ E_r` (removed edges).
    /// Runs in O(|self|) thanks to `other`'s O(1) membership bitmap.
    pub fn difference<'a>(&'a self, other: &'a EdgeSet) -> impl Iterator<Item = Edge> + 'a {
        self.edges
            .iter()
            .copied()
            .filter(move |&e| !other.contains(e))
    }

    /// Applies a whole round delta in one three-way merge: removes
    /// `removed`, then inserts `inserted`, both given as **strictly
    /// sorted** slices. The merged vector is built in `buf` and swapped
    /// in, so the caller's buffer becomes the storage and the old vector
    /// becomes the caller's scratch — zero steady-state allocation.
    ///
    /// `on_insert` / `on_remove` fire once per edge whose *membership
    /// actually changed* (an edge both removed and re-inserted is a net
    /// no-op and fires neither), which is exactly what a derived adjacency
    /// structure needs to update itself. Returns `(inserted, removed)`
    /// counts with the former per-edge semantics: a removal of an absent
    /// edge or an insertion of a present edge is skipped (and trips a
    /// debug assertion, since it indicates a corrupted delta).
    pub(crate) fn apply_sorted_delta(
        &mut self,
        inserted: &[Edge],
        removed: &[Edge],
        buf: &mut Vec<Edge>,
        mut on_insert: impl FnMut(Edge),
        mut on_remove: impl FnMut(Edge),
    ) -> (usize, usize) {
        debug_assert!(inserted.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(removed.windows(2).all(|w| w[0] < w[1]));
        let old = std::mem::take(&mut self.edges);
        buf.clear();
        buf.reserve(old.len() + inserted.len());
        let (mut i, mut j, mut k) = (0, 0, 0);
        let (mut ins_n, mut rm_n) = (0, 0);
        loop {
            // The smallest edge any of the three sorted cursors points at.
            let mut next: Option<Edge> = None;
            for head in [
                old.get(i).copied(),
                inserted.get(j).copied(),
                removed.get(k).copied(),
            ]
            .into_iter()
            .flatten()
            {
                next = Some(next.map_or(head, |n: Edge| n.min(head)));
            }
            let Some(e) = next else { break };
            let in_old = old.get(i) == Some(&e);
            let in_ins = inserted.get(j) == Some(&e);
            let in_rm = removed.get(k) == Some(&e);
            i += in_old as usize;
            j += in_ins as usize;
            k += in_rm as usize;
            match (in_old, in_rm, in_ins) {
                (true, false, false) => buf.push(e),
                (true, true, false) => {
                    rm_n += 1;
                    self.clear_bit(e);
                    on_remove(e);
                }
                (true, true, true) => {
                    // Removed then re-inserted: both ops count, membership
                    // and adjacency are net unchanged.
                    rm_n += 1;
                    ins_n += 1;
                    buf.push(e);
                }
                (true, false, true) => {
                    debug_assert!(false, "delta inconsistent: inserts duplicate edge {e}");
                    buf.push(e);
                }
                (false, rm_absent, true) => {
                    debug_assert!(!rm_absent, "delta inconsistent: removes absent edge {e}");
                    ins_n += 1;
                    self.set_bit(e);
                    on_insert(e);
                    buf.push(e);
                }
                (false, true, false) => {
                    debug_assert!(false, "delta inconsistent: removes absent edge {e}");
                }
                (false, false, false) => unreachable!("no cursor matched its own minimum"),
            }
        }
        std::mem::swap(&mut self.edges, buf);
        // Hand the retired vector's storage back as the caller's scratch.
        *buf = old;
        (ins_n, rm_n)
    }
}

impl PartialEq for EdgeSet {
    fn eq(&self, other: &Self) -> bool {
        // The bitmaps are derived state; the sorted vectors are canonical.
        self.edges == other.edges
    }
}

impl Eq for EdgeSet {}

impl FromIterator<Edge> for EdgeSet {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        let mut edges: Vec<Edge> = iter.into_iter().collect();
        edges.sort_unstable();
        edges.dedup();
        EdgeSet::from_sorted_vec(edges)
    }
}

impl Extend<Edge> for EdgeSet {
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        self.edges.extend(iter);
        self.edges.sort_unstable();
        self.edges.dedup();
        self.rebuild_bits();
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.edges.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = Edge;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Edge>>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(u: u32, v: u32) -> Edge {
        Edge::new(NodeId::new(u), NodeId::new(v))
    }

    #[test]
    fn edge_is_normalized() {
        assert_eq!(e(3, 1), e(1, 3));
        assert_eq!(e(3, 1).lo(), NodeId::new(1));
        assert_eq!(e(3, 1).hi(), NodeId::new(3));
        assert_eq!(e(3, 1).endpoints(), (NodeId::new(1), NodeId::new(3)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = e(2, 2);
    }

    #[test]
    fn other_endpoint() {
        assert_eq!(e(1, 3).other(NodeId::new(1)), NodeId::new(3));
        assert_eq!(e(1, 3).other(NodeId::new(3)), NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let _ = e(1, 3).other(NodeId::new(2));
    }

    #[test]
    fn touches() {
        assert!(e(1, 3).touches(NodeId::new(1)));
        assert!(e(1, 3).touches(NodeId::new(3)));
        assert!(!e(1, 3).touches(NodeId::new(2)));
    }

    #[test]
    fn edge_set_dedupes_normalized_edges() {
        let mut es = EdgeSet::new();
        assert!(es.insert(e(0, 1)));
        assert!(!es.insert(e(1, 0)));
        assert_eq!(es.len(), 1);
        assert!(es.contains(e(0, 1)));
        assert!(es.remove(e(1, 0)));
        assert!(es.is_empty());
    }

    #[test]
    fn edge_set_difference_models_insertions_and_removals() {
        let prev: EdgeSet = [e(0, 1), e(1, 2)].into_iter().collect();
        let cur: EdgeSet = [e(1, 2), e(2, 3)].into_iter().collect();
        let inserted: Vec<_> = cur.difference(&prev).collect();
        let removed: Vec<_> = prev.difference(&cur).collect();
        assert_eq!(inserted, vec![e(2, 3)]);
        assert_eq!(removed, vec![e(0, 1)]);
    }

    #[test]
    fn edge_set_iterates_in_deterministic_order() {
        let es: EdgeSet = [e(2, 3), e(0, 5), e(0, 1)].into_iter().collect();
        let order: Vec<_> = es.iter().collect();
        assert_eq!(order, vec![e(0, 1), e(0, 5), e(2, 3)]);
    }

    #[test]
    fn bulk_build_dedupes_and_sorts() {
        let es: EdgeSet = [e(4, 5), e(1, 0), e(0, 1), e(5, 4), e(2, 7)]
            .into_iter()
            .collect();
        assert_eq!(es.len(), 3);
        assert_eq!(es.as_slice(), &[e(0, 1), e(2, 7), e(4, 5)]);
        assert!(es.contains(e(7, 2)));
        assert!(!es.contains(e(0, 7)));
    }

    #[test]
    fn extend_merges_into_sorted_order() {
        let mut es: EdgeSet = [e(0, 1)].into_iter().collect();
        es.extend([e(5, 6), e(0, 1), e(2, 3)]);
        assert_eq!(es.as_slice(), &[e(0, 1), e(2, 3), e(5, 6)]);
        assert!(es.contains(e(5, 6)));
    }

    #[test]
    fn insert_remove_interleaved_keeps_bitmap_consistent() {
        let mut es = EdgeSet::new();
        for i in 0..20u32 {
            assert!(es.insert(e(i, i + 1)));
        }
        for i in (0..20u32).step_by(2) {
            assert!(es.remove(e(i, i + 1)));
            assert!(!es.contains(e(i, i + 1)));
        }
        assert_eq!(es.len(), 10);
        // Reinsert in reverse order (exercises the non-append path).
        for i in (0..20u32).step_by(2).rev() {
            assert!(es.insert(e(i, i + 1)));
        }
        let expect: Vec<Edge> = (0..20u32).map(|i| e(i, i + 1)).collect();
        assert_eq!(es.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn apply_sorted_delta_matches_per_edge_ops() {
        let mut batched: EdgeSet = [e(0, 1), e(1, 2), e(2, 3)].into_iter().collect();
        let mut per_edge = batched.clone();
        let inserted = [e(0, 3), e(1, 3)];
        let removed = [e(1, 2)];
        let mut ins_seen = Vec::new();
        let mut rm_seen = Vec::new();
        let mut buf = Vec::new();
        let counts = batched.apply_sorted_delta(
            &inserted,
            &removed,
            &mut buf,
            |x| ins_seen.push(x),
            |x| rm_seen.push(x),
        );
        for x in removed {
            per_edge.remove(x);
        }
        for x in inserted {
            per_edge.insert(x);
        }
        assert_eq!(counts, (2, 1));
        assert_eq!(ins_seen, inserted);
        assert_eq!(rm_seen, removed);
        assert_eq!(batched, per_edge);
        assert!(batched.contains(e(3, 0)));
        assert!(!batched.contains(e(1, 2)));
    }

    #[test]
    fn apply_sorted_delta_remove_then_reinsert_is_net_neutral() {
        let mut es: EdgeSet = [e(0, 1)].into_iter().collect();
        let mut buf = Vec::new();
        let counts = es.apply_sorted_delta(
            &[e(0, 1)],
            &[e(0, 1)],
            &mut buf,
            |_| panic!("no net insertion"),
            |_| panic!("no net removal"),
        );
        assert_eq!(counts, (1, 1));
        assert!(es.contains(e(0, 1)));
        assert_eq!(es.len(), 1);
    }

    #[test]
    fn equality_ignores_bitmap_capacity() {
        // Same final contents, built along different mutation paths.
        let mut a = EdgeSet::new();
        a.insert(e(30, 31)); // grows rows/words
        a.remove(e(30, 31));
        a.insert(e(0, 1));
        let b: EdgeSet = [e(0, 1)].into_iter().collect();
        assert_eq!(a, b);
    }
}
