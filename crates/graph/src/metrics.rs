//! Structural metrics of graph snapshots.
//!
//! Experiments report the shape of the topologies an adversary produces —
//! degree statistics matter because Algorithm 2's phase 1 branches on a
//! degree threshold, and the Section 2 adversary's free-edge graphs are
//! near-complete. These helpers compute the standard summary quantities.

use crate::graph::Graph;

/// Degree statistics of one snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (= `2m/n`).
    pub mean: f64,
    /// Number of nodes with degree ≥ the given threshold (set by
    /// [`degree_stats_with_threshold`]; 0 from [`degree_stats`]).
    pub at_or_above_threshold: usize,
}

/// Computes degree statistics.
///
/// # Panics
///
/// Panics on the empty graph (no nodes).
pub fn degree_stats(g: &Graph) -> DegreeStats {
    degree_stats_with_threshold(g, f64::INFINITY)
}

/// Degree statistics plus a count of "high-degree" nodes (degree ≥
/// `threshold`), the quantity Algorithm 2's phase 1 branches on.
///
/// # Panics
///
/// Panics on the empty graph (no nodes).
pub fn degree_stats_with_threshold(g: &Graph, threshold: f64) -> DegreeStats {
    assert!(g.node_count() > 0, "degree stats of an empty graph");
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    DegreeStats {
        min: *degrees.iter().min().expect("nonempty"),
        max: *degrees.iter().max().expect("nonempty"),
        mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
        at_or_above_threshold: degrees.iter().filter(|&&d| d as f64 >= threshold).count(),
    }
}

/// Edge density: `m / (n(n−1)/2)`.
///
/// # Panics
///
/// Panics for `n < 2`.
pub fn density(g: &Graph) -> f64 {
    let n = g.node_count();
    assert!(n >= 2, "density needs at least two nodes");
    g.edge_count() as f64 / (n * (n - 1) / 2) as f64
}

/// The degree histogram: entry `d` counts nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.node_count()];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    while hist.len() > 1 && *hist.last().expect("nonempty") == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_degree_stats() {
        let g = Graph::star(8);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 7);
        assert!((s.mean - 14.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.at_or_above_threshold, 0);
    }

    #[test]
    fn threshold_counts_high_degree_nodes() {
        let g = Graph::star(8);
        let s = degree_stats_with_threshold(&g, 2.0);
        assert_eq!(s.at_or_above_threshold, 1); // only the hub
        let all = degree_stats_with_threshold(&g, 1.0);
        assert_eq!(all.at_or_above_threshold, 8);
    }

    #[test]
    fn clique_density_is_one() {
        assert!((density(&Graph::complete(6)) - 1.0).abs() < 1e-12);
        let path_density = density(&Graph::path(6));
        assert!((path_density - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = Graph::path(7);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 7);
        assert_eq!(h[1], 2); // the two endpoints
        assert_eq!(h[2], 5);
    }

    #[test]
    fn histogram_trims_trailing_zeros() {
        let g = Graph::path(5);
        let h = degree_histogram(&g);
        assert_eq!(h.len(), 3); // degrees 0, 1, 2
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn empty_graph_panics() {
        let _ = degree_stats(&Graph::empty(0));
    }
}
