//! Oblivious adversary implementations.
//!
//! An oblivious adversary (Section 1.3) "has to commit to the sequence of
//! network topologies before the execution of a distributed algorithm
//! starts". Operationally, it may not read algorithm state; every adversary
//! here depends only on its own seeded RNG and the round number, so the
//! schedule it produces is a deterministic function of its seed — morally a
//! pre-committed sequence.
//!
//! Families provided:
//!
//! * [`StaticAdversary`] — a fixed connected graph every round.
//! * [`PeriodicRewiring`] — a fresh random topology every ρ rounds, hence
//!   ρ-edge-stable.
//! * [`EdgeMarkovian`] — independent per-edge birth/death chains with
//!   σ-stability clamping and connectivity repair.
//! * [`ChurnAdversary`] — bounded churn per round: deletes up to `c`
//!   eligible non-bridge edges and inserts up to `c` random new edges.
//! * [`ScriptedAdversary`] — replays an explicit schedule.

use crate::adversary::Adversary;
use crate::connectivity::{bridges, connect_components};
use crate::dynamic::{GraphUpdate, RoundDelta};
use crate::edge::Edge;
use crate::generators::Topology;
use crate::graph::Graph;
use crate::node::{NodeId, Round};
use crate::stability::StabilityEnforcer;
use rand::distributions::{Distribution, Geometric};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The adversary that never changes the topology: a static network.
///
/// Useful as the baseline where token dissemination costs `O(n² + nk)`
/// messages total (Section 1).
#[derive(Clone, Debug)]
pub struct StaticAdversary {
    graph: Graph,
}

impl StaticAdversary {
    /// Uses `graph` for every round.
    ///
    /// # Panics
    ///
    /// Panics if `graph` is not connected.
    pub fn new(graph: Graph) -> Self {
        assert!(graph.is_connected(), "static topology must be connected");
        StaticAdversary { graph }
    }

    /// Samples a static topology from a family.
    pub fn from_topology(topology: Topology, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        StaticAdversary::new(topology.sample(n, &mut rng))
    }
}

impl Adversary for StaticAdversary {
    fn graph_for_round(&mut self, _round: Round, _prev: &Graph) -> Graph {
        self.graph.clone()
    }

    fn evolve(&mut self, round: Round, _prev: &Graph) -> GraphUpdate {
        if round == 1 {
            GraphUpdate::Full(self.graph.clone())
        } else {
            GraphUpdate::Unchanged
        }
    }

    fn name(&self) -> &str {
        "static"
    }
}

/// Rewires the whole topology to a fresh sample of `topology` every
/// `period` rounds, keeping it fixed in between.
///
/// The produced schedule is `period`-edge-stable by construction (edges
/// change only at period boundaries). With `period = 3` this is the natural
/// "worst-case but 3-stable" adversary for Theorem 3.4 experiments.
#[derive(Debug)]
pub struct PeriodicRewiring {
    topology: Topology,
    period: u64,
    rng: StdRng,
    current: Option<Graph>,
    name: String,
}

impl PeriodicRewiring {
    /// Creates a rewiring adversary with the given period (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(topology: Topology, period: u64, seed: u64) -> Self {
        assert!(period >= 1, "period must be ≥ 1");
        PeriodicRewiring {
            topology,
            period,
            rng: StdRng::seed_from_u64(seed),
            current: None,
            name: format!("rewire({topology:?}, ρ={period})"),
        }
    }
}

impl Adversary for PeriodicRewiring {
    fn graph_for_round(&mut self, round: Round, prev: &Graph) -> Graph {
        let due = (round - 1).is_multiple_of(self.period);
        if due || self.current.is_none() {
            self.current = Some(self.topology.sample(prev.node_count(), &mut self.rng));
        }
        self.current.clone().expect("just set")
    }

    fn evolve(&mut self, round: Round, prev: &Graph) -> GraphUpdate {
        // Rounds start at 1, so the first call is always a rewire round and
        // the sampled graph can be handed over by value — the engine's
        // `DynamicGraph` takes ownership and no clone ever happens.
        if (round - 1).is_multiple_of(self.period) {
            GraphUpdate::Full(self.topology.sample(prev.node_count(), &mut self.rng))
        } else {
            // Mid-period rounds keep the committed topology: free.
            GraphUpdate::Unchanged
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Edge-Markovian dynamics: every potential edge turns on with probability
/// `p_on` and turns off with probability `p_off`, independently per round,
/// clamped to σ-edge stability and repaired to connectivity.
///
/// This is the classic smoothly-dynamic model (e.g. Clementi et al.); the
/// repair edges are charged to `TC(E)` like any other insertion.
///
/// Instead of flipping a coin per potential edge (`O(n²)` per round), the
/// per-edge Bernoulli processes are **skip-sampled**: one [`Geometric`]
/// draw jumps directly to the next event, so a round costs
/// `O(n + m + events)` — births walk the absent-pair index space, deaths
/// walk the sorted present-edge list. The adversary maintains its own
/// snapshot and hands the engine true [`GraphUpdate::Delta`]s.
#[derive(Debug)]
pub struct EdgeMarkovian {
    p_on: f64,
    p_off: f64,
    enforcer: StabilityEnforcer,
    rng: StdRng,
    current: Option<Graph>,
    name: String,
}

impl EdgeMarkovian {
    /// Creates edge-Markovian dynamics with σ-stability clamping.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are not in `[0, 1]` or `sigma == 0`.
    pub fn new(p_on: f64, p_off: f64, sigma: u64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_on), "p_on must be a probability");
        assert!((0.0..=1.0).contains(&p_off), "p_off must be a probability");
        EdgeMarkovian {
            p_on,
            p_off,
            enforcer: StabilityEnforcer::new(sigma),
            rng: StdRng::seed_from_u64(seed),
            current: None,
            name: format!("edge-markovian(p↑={p_on}, p↓={p_off}, σ={sigma})"),
        }
    }

    /// Skip-samples the Bernoulli(`p_on`) birth process over the pairs
    /// absent from `g`, in (lo, hi) lexicographic order.
    ///
    /// Works in the linear index space of all `n(n−1)/2` pairs: the a-th
    /// absent pair has linear index `a + c` where `c` is the number of
    /// present edges at or below it — resolved by a monotone merge walk
    /// against the sorted present list, so the whole sweep is
    /// `O(m + births)`, never `O(n²)`.
    fn sample_births(&mut self, g: &Graph, births: &mut Vec<Edge>) {
        if self.p_on <= 0.0 {
            return;
        }
        let n = g.node_count() as u64;
        let total_pairs = n * (n - 1) / 2;
        let present = g.edges().as_slice();
        if total_pairs == 0 || present.len() as u64 == total_pairs {
            return;
        }
        let linear = |e: Edge| -> u64 {
            let (u, v) = (e.lo().value() as u64, e.hi().value() as u64);
            u * n - u * (u + 1) / 2 + (v - u - 1)
        };
        let geom = Geometric::new(self.p_on);
        let absent_total = total_pairs - present.len() as u64;
        // `a` enumerates absent-pair ranks; `pi` present edges passed so far.
        let mut a = geom.sample(&mut self.rng);
        let mut pi = 0usize;
        // Row pointer for linear-index → (u, v) conversion; `row_start` is
        // the linear index of pair (row, row+1).
        let (mut row, mut row_start, mut row_len) = (0u64, 0u64, n - 1);
        while a < absent_total {
            // Fixed point: idx = a + #present ≤ idx (both only increase).
            let mut idx = a + pi as u64;
            while pi < present.len() && linear(present[pi]) <= idx {
                pi += 1;
                idx = a + pi as u64;
            }
            while row_start + row_len <= idx {
                row_start += row_len;
                row += 1;
                row_len -= 1;
            }
            let v = row + 1 + (idx - row_start);
            births.push(Edge::new(NodeId::new(row as u32), NodeId::new(v as u32)));
            a += 1 + geom.sample(&mut self.rng);
        }
    }

    /// Skip-samples the Bernoulli(`p_off`) death process over the sorted
    /// present-edge list of `g`, leaving σ-pinned edges alone.
    fn sample_deaths(&mut self, g: &Graph, deaths: &mut Vec<Edge>) {
        if self.p_off <= 0.0 || g.edge_count() == 0 {
            return;
        }
        let pinned: std::collections::BTreeSet<Edge> =
            self.enforcer.pinned_edges().into_iter().collect();
        let present = g.edges().as_slice();
        let geom = Geometric::new(self.p_off);
        let mut i = geom.sample(&mut self.rng);
        while (i as usize) < present.len() {
            let e = present[i as usize];
            if !pinned.contains(&e) {
                deaths.push(e);
            }
            i += 1 + geom.sample(&mut self.rng);
        }
    }
}

impl Adversary for EdgeMarkovian {
    fn graph_for_round(&mut self, round: Round, prev: &Graph) -> Graph {
        // Single source of truth: drive the delta path, return a snapshot.
        let _ = self.evolve(round, prev);
        self.current.clone().expect("evolve installed a graph")
    }

    fn evolve(&mut self, _round: Round, prev: &Graph) -> GraphUpdate {
        let n = prev.node_count();
        let Some(mut g) = self.current.take() else {
            // First round: all pairs are absent in G_0, so the initial
            // snapshot is one birth sweep plus repair, clamped wholesale.
            let mut initial = Graph::empty(n);
            let mut births = Vec::new();
            self.sample_births(&initial, &mut births);
            for e in births {
                initial.insert_edge(e);
            }
            connect_components(&mut initial, &mut self.rng);
            let clamped = self.enforcer.clamp(initial);
            self.current = Some(clamped.clone());
            return GraphUpdate::Full(clamped);
        };
        let mut removed = Vec::new();
        let mut inserted = Vec::new();
        self.sample_deaths(&g, &mut removed);
        self.sample_births(&g, &mut inserted);
        for &e in &removed {
            g.remove_edge(e);
        }
        for &e in &inserted {
            g.insert_edge(e);
        }
        // Deaths may disconnect the graph; repair edges join the delta and
        // are charged to TC(E) like any other insertion. Births are drawn
        // from absent pairs, so only a repair can re-insert an edge removed
        // this round — such an edge is unchanged in the snapshot and must
        // cancel out of the delta (neither metered nor σ-age-reset). The
        // intersection scan is over the handful of repairs, not the whole
        // delta.
        let repairs = connect_components(&mut g, &mut self.rng);
        let both: Vec<Edge> = repairs
            .iter()
            .filter(|e| removed.contains(e))
            .copied()
            .collect();
        if both.is_empty() {
            inserted.extend(repairs);
        } else {
            removed.retain(|e| !both.contains(e));
            inserted.extend(repairs.into_iter().filter(|e| !both.contains(e)));
        }
        self.enforcer.commit_delta(&inserted, &removed);
        self.current = Some(g);
        GraphUpdate::Delta(RoundDelta { inserted, removed })
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Bounded-churn dynamics: each round deletes up to `churn` eligible
/// (σ-mature, non-bridge) edges and inserts up to `churn` random absent
/// edges, starting from an initial sample of `topology`.
///
/// Connectivity is maintained *without* repair insertions by only deleting
/// non-bridges, so `TC(E)` grows by at most `churn` per round after the
/// initial topology — making the adversary-competitive budget directly
/// proportional to the churn-rate knob.
#[derive(Debug)]
pub struct ChurnAdversary {
    topology: Topology,
    churn: usize,
    enforcer: StabilityEnforcer,
    rng: StdRng,
    current: Option<Graph>,
    name: String,
}

impl ChurnAdversary {
    /// Creates a churn adversary with the given per-round churn bound and
    /// σ-stability.
    pub fn new(topology: Topology, churn: usize, sigma: u64, seed: u64) -> Self {
        ChurnAdversary {
            topology,
            churn,
            enforcer: StabilityEnforcer::new(sigma),
            rng: StdRng::seed_from_u64(seed),
            current: None,
            name: format!("churn({topology:?}, c={churn}, σ={sigma})"),
        }
    }
}

impl Adversary for ChurnAdversary {
    fn graph_for_round(&mut self, round: Round, prev: &Graph) -> Graph {
        // Single source of truth: drive the delta path, return a snapshot.
        let _ = self.evolve(round, prev);
        self.current.clone().expect("evolve installed a graph")
    }

    fn evolve(&mut self, _round: Round, prev: &Graph) -> GraphUpdate {
        let n = prev.node_count();
        let Some(g) = self.current.as_mut() else {
            // First round: sample and clamp a full topology (one-time cost).
            let initial = self.topology.sample(n, &mut self.rng);
            let clamped = self.enforcer.clamp(initial);
            self.current = Some(clamped.clone());
            return GraphUpdate::Full(clamped);
        };
        // Delete up to `churn` non-bridge edges that are mature enough,
        // recomputing bridges after each deletion (removals create bridges).
        let pinned: std::collections::BTreeSet<Edge> =
            self.enforcer.pinned_edges().into_iter().collect();
        let mut removed = Vec::new();
        for _ in 0..self.churn {
            let bridge_set: std::collections::BTreeSet<Edge> = bridges(g).into_iter().collect();
            let candidates: Vec<Edge> = g
                .edges()
                .iter()
                .filter(|e| !bridge_set.contains(e) && !pinned.contains(e))
                .collect();
            if let Some(&e) = candidates.as_slice().choose(&mut self.rng) {
                g.remove_edge(e);
                removed.push(e);
            } else {
                break;
            }
        }
        // Insert up to `churn` random absent edges.
        let mut inserted = Vec::new();
        let mut attempts = 0usize;
        while inserted.len() < self.churn && attempts < 50 * self.churn + 50 {
            attempts += 1;
            let u = self.rng.gen_range(0..n as u32);
            let v = self.rng.gen_range(0..n as u32);
            if u != v {
                let e = Edge::new(NodeId::new(u), NodeId::new(v));
                if g.insert_edge(e) {
                    inserted.push(e);
                }
            }
        }
        // Cancel edges churned out and straight back in this round: the
        // snapshot is unchanged for them, so — matching the snapshot-diff
        // semantics — they must not reach the topology meter or have their
        // σ-age reset.
        if removed.iter().any(|e| inserted.contains(e)) {
            let both: Vec<Edge> = removed
                .iter()
                .filter(|e| inserted.contains(e))
                .copied()
                .collect();
            removed.retain(|e| !both.contains(e));
            inserted.retain(|e| !both.contains(e));
        }
        self.enforcer.commit_delta(&inserted, &removed);
        GraphUpdate::Delta(RoundDelta { inserted, removed })
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Replays an explicit schedule `G_1, …, G_x`, clamping to the last graph
/// after the script runs out.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{oblivious::ScriptedAdversary, adversary::Adversary, Graph};
///
/// let mut adv = ScriptedAdversary::new(vec![Graph::path(3), Graph::star(3)]);
/// assert_eq!(adv.graph_for_round(1, &Graph::empty(3)).edge_count(), 2);
/// assert_eq!(adv.graph_for_round(5, &Graph::empty(3)).degree(dynspread_graph::NodeId::new(0)), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ScriptedAdversary {
    schedule: Vec<Graph>,
}

impl ScriptedAdversary {
    /// Creates a scripted adversary.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty or contains a disconnected graph.
    pub fn new(schedule: Vec<Graph>) -> Self {
        assert!(!schedule.is_empty(), "schedule must be nonempty");
        for (i, g) in schedule.iter().enumerate() {
            assert!(g.is_connected(), "scripted graph {} is disconnected", i + 1);
        }
        ScriptedAdversary { schedule }
    }
}

impl Adversary for ScriptedAdversary {
    fn graph_for_round(&mut self, round: Round, _prev: &Graph) -> Graph {
        let idx = ((round - 1) as usize).min(self.schedule.len() - 1);
        self.schedule[idx].clone()
    }

    fn evolve(&mut self, round: Round, prev: &Graph) -> GraphUpdate {
        let last = self.schedule.len() - 1;
        let idx = ((round - 1) as usize).min(last);
        if round > 1 && idx == last && ((round - 2) as usize).min(last) == last {
            // Past the end of the script the topology is clamped: free.
            GraphUpdate::Unchanged
        } else {
            GraphUpdate::Full(self.graph_for_round(round, prev))
        }
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability::StabilityChecker;

    #[test]
    fn static_adversary_is_constant() {
        let mut adv = StaticAdversary::from_topology(Topology::RandomTree, 10, 3);
        let g0 = Graph::empty(10);
        let g1 = adv.graph_for_round(1, &g0);
        let g2 = adv.graph_for_round(2, &g1);
        assert_eq!(g1, g2);
        assert!(g1.is_connected());
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn static_adversary_rejects_disconnected() {
        let _ = StaticAdversary::new(Graph::empty(3));
    }

    #[test]
    fn periodic_rewiring_changes_only_at_boundaries() {
        let mut adv = PeriodicRewiring::new(Topology::RandomTree, 3, 11);
        let g0 = Graph::empty(12);
        let mut graphs = Vec::new();
        let mut prev = g0;
        for r in 1..=9 {
            let g = adv.graph_for_round(r, &prev);
            graphs.push(g.clone());
            prev = g;
        }
        assert_eq!(graphs[0], graphs[1]);
        assert_eq!(graphs[1], graphs[2]);
        assert_eq!(graphs[3], graphs[4]);
        assert_ne!(
            graphs[2], graphs[3],
            "seeded trees on 12 nodes should differ"
        );
    }

    #[test]
    fn periodic_rewiring_is_period_stable() {
        let period = 3;
        let mut adv = PeriodicRewiring::new(Topology::RandomTree, period, 5);
        let mut checker = StabilityChecker::new(period);
        let mut prev = Graph::empty(10);
        for r in 1..=30 {
            let g = adv.graph_for_round(r, &prev);
            checker.observe(&g).expect("period-stable by construction");
            assert!(g.is_connected());
            prev = g;
        }
    }

    #[test]
    fn edge_markovian_stays_connected_and_stable() {
        let sigma = 2;
        let mut adv = EdgeMarkovian::new(0.1, 0.3, sigma, 17);
        let mut checker = StabilityChecker::new(sigma);
        let mut prev = Graph::empty(12);
        for r in 1..=40 {
            let g = adv.graph_for_round(r, &prev);
            assert!(g.is_connected(), "round {r} disconnected");
            checker.observe(&g).expect("σ-stable by clamping");
            prev = g;
        }
    }

    #[test]
    fn edge_markovian_actually_churns() {
        let mut adv = EdgeMarkovian::new(0.05, 0.2, 1, 23);
        let mut prev = Graph::empty(10);
        let g1 = adv.graph_for_round(1, &prev);
        prev = g1.clone();
        let g2 = adv.graph_for_round(2, &prev);
        assert_ne!(g1, g2, "dynamics should change something");
    }

    #[test]
    fn edge_markovian_emits_consistent_deltas() {
        let sigma = 2;
        let mut adv = EdgeMarkovian::new(0.05, 0.25, sigma, 41);
        let mut dg = crate::dynamic::DynamicGraph::new(12);
        let mut checker = StabilityChecker::new(sigma);
        let mut full_rounds = 0;
        let mut delta_rounds = 0;
        for r in 1..=200 {
            let update = adv.evolve(r, dg.current());
            match &update {
                GraphUpdate::Full(_) => full_rounds += 1,
                GraphUpdate::Delta(d) => {
                    delta_rounds += 1;
                    assert!(
                        d.inserted.iter().all(|e| !d.removed.contains(e)),
                        "round {r}: edge on both sides of the delta"
                    );
                }
                GraphUpdate::Unchanged => {}
            }
            dg.apply(update);
            assert!(dg.current().is_connected(), "round {r} disconnected");
            checker.observe(dg.current()).expect("σ-stable by clamping");
            // Meter stays consistent with the live snapshot.
            assert_eq!(
                dg.current().edge_count() as u64,
                dg.meter().insertions - dg.meter().deletions
            );
        }
        assert_eq!(full_rounds, 1, "only round 1 is a full snapshot");
        assert!(delta_rounds > 0, "dynamics should emit deltas");
    }

    #[test]
    fn edge_markovian_birth_sweep_covers_every_pair() {
        // p_on = 1 must fill the graph in round 1 (exercises the linear
        // index → (u, v) mapping over the whole pair space); with p_off = 0
        // every later round is an empty delta.
        let mut adv = EdgeMarkovian::new(1.0, 0.0, 1, 3);
        let g1 = adv.graph_for_round(1, &Graph::empty(9));
        assert_eq!(g1.edge_count(), 9 * 8 / 2);
        match adv.evolve(2, &g1) {
            GraphUpdate::Delta(d) => assert!(d.is_empty()),
            other => panic!("expected an empty delta, got {other:?}"),
        }
    }

    #[test]
    fn churn_adversary_bounded_insertions() {
        let churn = 2;
        let mut adv = ChurnAdversary::new(Topology::SparseConnected(2.0), churn, 1, 29);
        let mut dg = crate::dynamic::DynamicGraph::new(14);
        let g1 = adv.graph_for_round(1, dg.current());
        dg.advance(g1);
        let initial_tc = dg.topological_changes();
        for r in 2..=20 {
            let g = adv.graph_for_round(r, dg.current());
            assert!(g.is_connected(), "round {r} disconnected");
            dg.advance(g);
        }
        let later_tc = dg.topological_changes() - initial_tc;
        assert!(
            later_tc <= (churn as u64) * 19,
            "TC grew by {later_tc} > churn bound {}",
            churn * 19
        );
    }

    #[test]
    fn churn_adversary_respects_sigma() {
        let sigma = 3;
        let mut adv = ChurnAdversary::new(Topology::SparseConnected(1.5), 3, sigma, 31);
        let mut checker = StabilityChecker::new(sigma);
        let mut prev = Graph::empty(10);
        for r in 1..=30 {
            let g = adv.graph_for_round(r, &prev);
            checker.observe(&g).expect("σ-stable by clamping");
            assert!(g.is_connected(), "round {r} disconnected");
            prev = g;
        }
    }

    #[test]
    fn scripted_adversary_replays_then_clamps() {
        let mut adv = ScriptedAdversary::new(vec![Graph::path(4), Graph::star(4)]);
        let g0 = Graph::empty(4);
        assert_eq!(adv.graph_for_round(1, &g0), Graph::path(4));
        assert_eq!(adv.graph_for_round(2, &g0), Graph::star(4));
        assert_eq!(adv.graph_for_round(9, &g0), Graph::star(4));
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn scripted_adversary_rejects_disconnected() {
        let _ = ScriptedAdversary::new(vec![Graph::empty(3)]);
    }

    #[test]
    fn edge_markovian_extreme_probabilities() {
        // p_off = 1 with σ = 1: every mature edge dies each round, yet the
        // graph stays connected through repairs.
        let mut adv = EdgeMarkovian::new(0.0, 1.0, 1, 3);
        let mut prev = Graph::empty(8);
        for r in 1..=10 {
            let g = adv.graph_for_round(r, &prev);
            assert!(g.is_connected(), "round {r}");
            // With p_on = 0, only repair edges exist: exactly a tree.
            assert_eq!(g.edge_count(), 7);
            prev = g;
        }
    }

    #[test]
    fn churn_delta_never_lists_an_edge_on_both_sides() {
        // Small n + high churn makes remove-then-reinsert collisions likely;
        // such edges must cancel out of the delta (they'd inflate TC(E) and
        // reset σ-ages relative to the snapshot-diff semantics).
        let mut adv = ChurnAdversary::new(Topology::SparseConnected(1.2), 4, 1, 11);
        let mut dg = crate::dynamic::DynamicGraph::new(8);
        for r in 1..=300 {
            let update = adv.evolve(r, dg.current());
            if let GraphUpdate::Delta(d) = &update {
                assert!(
                    d.inserted.iter().all(|e| !d.removed.contains(e)),
                    "round {r}: edge on both sides of the delta"
                );
            }
            dg.apply(update);
            // Meter stays consistent with the live snapshot.
            assert_eq!(
                dg.current().edge_count() as u64,
                dg.meter().insertions - dg.meter().deletions
            );
        }
    }

    #[test]
    fn churn_zero_is_static_after_round_one() {
        let mut adv = ChurnAdversary::new(Topology::RandomTree, 0, 1, 5);
        let g1 = adv.graph_for_round(1, &Graph::empty(9));
        let g2 = adv.graph_for_round(2, &g1);
        let g3 = adv.graph_for_round(3, &g2);
        assert_eq!(g1, g2);
        assert_eq!(g2, g3);
    }

    #[test]
    fn periodic_rewiring_long_period_never_rewires_in_short_run() {
        let mut adv = PeriodicRewiring::new(Topology::RandomTree, 1000, 7);
        let mut prev = Graph::empty(6);
        let first = adv.graph_for_round(1, &prev);
        prev = first.clone();
        for r in 2..=50 {
            let g = adv.graph_for_round(r, &prev);
            assert_eq!(g, first, "round {r} should not rewire");
            prev = g;
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut adv = EdgeMarkovian::new(0.1, 0.2, 1, seed);
            let mut prev = Graph::empty(9);
            let mut out = Vec::new();
            for r in 1..=10 {
                let g = adv.graph_for_round(r, &prev);
                out.push(g.edges().iter().collect::<Vec<_>>());
                prev = g;
            }
            out
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }
}
