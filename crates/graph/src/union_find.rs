//! Disjoint-set (union–find) structure.
//!
//! Used throughout the crate for connectivity queries and by the Section 2
//! lower-bound adversary, which must find the connected components of the
//! free-edge graph `F(r)` in every round.

/// Disjoint-set forest with union by rank and path halving.
///
/// # Examples
///
/// ```
/// use dynspread_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `{0}, {1}, …, {n-1}`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Resets to `n` singleton sets, reusing the existing buffers.
    ///
    /// The per-round connectivity check runs this instead of allocating a
    /// fresh structure every round.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.components = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// One representative element per component, in increasing order.
    pub fn representatives(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut reps = Vec::with_capacity(self.components);
        for x in 0..n {
            if self.find(x) == x {
                reps.push(x);
            }
        }
        reps
    }

    /// Component label (representative) of every element.
    pub fn labels(&mut self) -> Vec<usize> {
        (0..self.len()).map(|x| self.find(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 4);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn representatives_cover_all_components() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(1, 4);
        let reps = uf.representatives();
        assert_eq!(reps.len(), uf.component_count());
        // Every element's root is one of the representatives.
        for x in 0..6 {
            let root = uf.find(x);
            assert!(reps.contains(&root));
        }
    }

    #[test]
    fn labels_agree_with_connected() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 7);
        uf.union(2, 5);
        uf.union(5, 7);
        let labels = uf.labels();
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(labels[a] == labels[b], uf.connected(a, b));
            }
        }
    }

    #[test]
    fn chain_of_unions_yields_single_component() {
        let n = 100;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.component_count(), 1);
    }
}
