//! The network adversary interface.
//!
//! The dynamic topology "is provided by a worst-case adversary"
//! (Section 1.3). This module defines the *oblivious* adversary interface:
//! an adversary that commits to `G_r` knowing only the round number and the
//! previous topology — never the algorithm's state or randomness.
//!
//! Strongly adaptive adversaries additionally observe algorithm state; their
//! interfaces live in `dynspread-sim` (they are parameterized by the
//! protocol's message type), with blanket implementations lifting every
//! [`Adversary`] into the adaptive interfaces. This keeps this crate
//! message-agnostic while letting the simulator drive both kinds uniformly.

use crate::dynamic::GraphUpdate;
use crate::graph::Graph;
use crate::node::Round;

/// An oblivious network adversary: produces the communication graph of each
/// round from the round number and previous snapshot only.
///
/// # Contract
///
/// * `graph_for_round(r, prev)` is called with `r = 1, 2, 3, …` in order.
/// * The returned graph must have the same node count as `prev` and must be
///   **connected** (the model's only constraint). The simulator asserts
///   connectivity in debug builds.
/// * Implementations own their RNG so runs are reproducible from a seed.
pub trait Adversary {
    /// Produces `G_r` given the round number `r ≥ 1` and `G_{r-1}`.
    fn graph_for_round(&mut self, round: Round, prev: &Graph) -> Graph;

    /// Produces the round-`r` topology as a [`GraphUpdate`] — the engines'
    /// fast path. The default wraps [`Adversary::graph_for_round`] in
    /// `GraphUpdate::Full`; incremental adversaries override this to return
    /// `Delta`/`Unchanged` so the engine can skip snapshot construction and
    /// diffing entirely.
    ///
    /// An execution must be driven through **either** `evolve` **or**
    /// `graph_for_round`, never a mix: stateful adversaries advance their
    /// RNG and round bookkeeping in both.
    fn evolve(&mut self, round: Round, prev: &Graph) -> GraphUpdate {
        GraphUpdate::Full(self.graph_for_round(round, prev))
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "adversary"
    }
}

impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn graph_for_round(&mut self, round: Round, prev: &Graph) -> Graph {
        (**self).graph_for_round(round, prev)
    }

    fn evolve(&mut self, round: Round, prev: &Graph) -> GraphUpdate {
        (**self).evolve(round, prev)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// An adversary defined by a closure; convenient in tests.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{adversary::{Adversary, FnAdversary}, Graph};
///
/// let mut adv = FnAdversary::new("always-path", |_, prev: &Graph| {
///     Graph::path(prev.node_count())
/// });
/// let g1 = adv.graph_for_round(1, &Graph::empty(4));
/// assert_eq!(g1.edge_count(), 3);
/// ```
pub struct FnAdversary<F> {
    name: String,
    f: F,
}

impl<F: FnMut(Round, &Graph) -> Graph> FnAdversary<F> {
    /// Wraps a closure as an adversary.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnAdversary {
            name: name.into(),
            f,
        }
    }
}

impl<F: FnMut(Round, &Graph) -> Graph> Adversary for FnAdversary<F> {
    fn graph_for_round(&mut self, round: Round, prev: &Graph) -> Graph {
        (self.f)(round, prev)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<F> std::fmt::Debug for FnAdversary<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnAdversary")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_adversary_delegates() {
        let mut adv = FnAdversary::new("star", |_, prev: &Graph| Graph::star(prev.node_count()));
        assert_eq!(adv.name(), "star");
        let g = adv.graph_for_round(1, &Graph::empty(5));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn boxed_adversary_delegates() {
        let adv = FnAdversary::new("path", |_, prev: &Graph| Graph::path(prev.node_count()));
        let mut boxed: Box<dyn Adversary> = Box::new(adv);
        assert_eq!(boxed.name(), "path");
        let g = boxed.graph_for_round(1, &Graph::empty(3));
        assert!(g.is_connected());
    }

    #[test]
    fn closure_sees_round_numbers_in_order() {
        let mut seen = Vec::new();
        {
            let mut adv = FnAdversary::new("rec", |r, prev: &Graph| {
                seen_push(r);
                Graph::path(prev.node_count())
            });
            // Rust closures can't easily share `seen` mutably with the outer
            // scope and call the adversary; use a thread_local shim.
            thread_local! {
                static SEEN: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
            }
            fn seen_push(r: u64) {
                SEEN.with(|s| s.borrow_mut().push(r));
            }
            let g0 = Graph::empty(3);
            for r in 1..=3 {
                adv.graph_for_round(r, &g0);
            }
            SEEN.with(|s| seen = s.borrow().clone());
        }
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
