//! Random connected graph generators.
//!
//! Adversaries need a supply of connected topologies: spanning trees,
//! sparse/dense random graphs, near-regular graphs (the oblivious algorithm
//! analysis talks about `n`-regular virtual multigraphs built on arbitrary
//! actual graphs), and the deterministic shapes from [`crate::graph::Graph`].
//!
//! Every generator takes an explicit RNG and returns a *connected* graph.

use crate::connectivity::connect_components;
use crate::edge::Edge;
use crate::graph::Graph;
use crate::node::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random labelled spanning tree on `n` nodes, via a random
/// permutation attachment process (each node attaches to a uniformly random
/// earlier node in a random order).
///
/// Not exactly uniform over all trees (that would need Wilson's algorithm),
/// but produces well-varied trees, which is what the adversaries need.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    // Collect the edge list first and build in bulk: one CSR fill instead
    // of n-1 incremental adjacency shifts — the difference between
    // milliseconds and tens of milliseconds per rewiring epoch at n ≥ 4k.
    Graph::from_edges(n, random_tree_edges(n, rng))
}

/// The edge list of [`random_tree`], for callers that keep accumulating
/// edges before building the graph.
fn random_tree_edges<R: Rng>(n: usize, rng: &mut R) -> Vec<Edge> {
    if n <= 1 {
        return Vec::new();
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    (1..n)
        .map(|i| {
            let parent = order[rng.gen_range(0..i)];
            Edge::new(NodeId::new(order[i]), NodeId::new(parent))
        })
        .collect()
}

/// An Erdős–Rényi `G(n, p)` sample, made connected by adding a minimal set
/// of repair edges between components.
pub fn gnp_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push(Edge::new(NodeId::new(u), NodeId::new(v)));
            }
        }
    }
    let mut g = Graph::from_edges(n, edges);
    connect_components(&mut g, rng);
    g
}

/// A connected graph with approximately `target_edges` edges: a random
/// spanning tree plus uniformly random extra edges.
///
/// The result has `max(n-1, min(target_edges, n(n-1)/2))` edges up to
/// collision slack (duplicate picks are retried a bounded number of times).
pub fn random_connected_with_edges<R: Rng>(n: usize, target_edges: usize, rng: &mut R) -> Graph {
    if n < 2 {
        return random_tree(n, rng);
    }
    // Accumulate into an edge list with a hash-set membership check, then
    // build once — the set is only ever probed, never iterated, so the
    // unordered container cannot leak nondeterminism into the result.
    let mut edges = random_tree_edges(n, rng);
    let mut seen: std::collections::HashSet<Edge> = edges.iter().copied().collect();
    let max_edges = n * (n - 1) / 2;
    let want = target_edges.clamp(edges.len(), max_edges);
    let mut attempts = 0usize;
    let attempt_cap = 20 * max_edges + 100;
    while edges.len() < want && attempts < attempt_cap {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            let e = Edge::new(NodeId::new(u), NodeId::new(v));
            if seen.insert(e) {
                edges.push(e);
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// A connected near-`d`-regular graph: starts from a random cycle (so the
/// graph is connected and every degree is ≥ 2), then repeatedly pairs
/// low-degree nodes until no progress can be made.
///
/// For `d = 2` the cycle itself is returned. All degrees end up in
/// `[2, d + 1]` with the vast majority exactly `d` for even `n·d`.
///
/// # Panics
///
/// Panics if `n < 3` or `d < 2` or `d >= n`.
pub fn near_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(n >= 3, "near_regular needs n ≥ 3, got {n}");
    assert!((2..n).contains(&d), "degree must be in [2, n), got {d}");
    // Random cycle.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut edges: Vec<Edge> = (0..n)
        .map(|i| Edge::new(NodeId::new(order[i]), NodeId::new(order[(i + 1) % n])))
        .collect();
    if d == 2 {
        return Graph::from_edges(n, edges);
    }
    // Greedy pairing of deficient nodes, against local degree/membership
    // state so the graph is built once in bulk at the end (a per-pair
    // `insert_edge` would shift the flat CSR arrays O(n + m) per edge).
    let mut deg = vec![2usize; n];
    let mut seen: std::collections::HashSet<Edge> = edges.iter().copied().collect();
    let mut stall = 0usize;
    while stall < 50 {
        let deficient: Vec<NodeId> = NodeId::all(n).filter(|&v| deg[v.index()] < d).collect();
        if deficient.len() < 2 {
            break;
        }
        let a = *deficient.choose(rng).expect("nonempty");
        let b = *deficient.choose(rng).expect("nonempty");
        if a != b && seen.insert(Edge::new(a, b)) {
            edges.push(Edge::new(a, b));
            deg[a.index()] += 1;
            deg[b.index()] += 1;
            stall = 0;
        } else {
            stall += 1;
        }
    }
    Graph::from_edges(n, edges)
}

/// Deterministic and random topology families, as a configuration value.
///
/// Adversaries that periodically resample a topology are parameterized by a
/// `Topology` so experiments can sweep over families.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Topology {
    /// The path graph (diameter `n-1`; worst case for dissemination time).
    Path,
    /// The cycle graph.
    Cycle,
    /// The star graph (hub bottleneck).
    Star,
    /// The complete graph (`Θ(n²)` edges; worst case for flooding cost).
    Complete,
    /// A random spanning tree.
    RandomTree,
    /// Erdős–Rényi with edge probability `p`, repaired to be connected.
    Gnp(f64),
    /// A random connected graph with ~`c·n` edges (`c ≥ 1`).
    SparseConnected(f64),
    /// A connected near-`d`-regular graph.
    NearRegular(usize),
}

impl Topology {
    /// Samples a connected graph of this family on `n` nodes.
    pub fn sample<R: Rng>(self, n: usize, rng: &mut R) -> Graph {
        match self {
            Topology::Path => Graph::path(n),
            Topology::Cycle => Graph::cycle(n),
            Topology::Star => Graph::star(n),
            Topology::Complete => Graph::complete(n),
            Topology::RandomTree => random_tree(n, rng),
            Topology::Gnp(p) => gnp_connected(n, p, rng),
            Topology::SparseConnected(c) => {
                random_connected_with_edges(n, (c * n as f64) as usize, rng)
            }
            Topology::NearRegular(d) => near_regular(n, d.min(n.saturating_sub(1)).max(2), rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        for seed in 0..10 {
            let g = random_tree(20, &mut rng(seed));
            assert_eq!(g.edge_count(), 19);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_tree_trivial_sizes() {
        assert_eq!(random_tree(0, &mut rng(0)).edge_count(), 0);
        assert_eq!(random_tree(1, &mut rng(0)).edge_count(), 0);
        let g2 = random_tree(2, &mut rng(0));
        assert_eq!(g2.edge_count(), 1);
    }

    #[test]
    fn gnp_connected_is_connected_even_for_p_zero() {
        let g = gnp_connected(15, 0.0, &mut rng(5));
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 14); // repair tree only
    }

    #[test]
    fn gnp_dense_has_many_edges() {
        let g = gnp_connected(20, 0.5, &mut rng(6));
        assert!(g.is_connected());
        assert!(
            g.edge_count() > 50,
            "expected ~95 edges, got {}",
            g.edge_count()
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gnp_rejects_bad_p() {
        let _ = gnp_connected(5, 1.5, &mut rng(0));
    }

    #[test]
    fn random_connected_with_edges_hits_target() {
        let g = random_connected_with_edges(30, 60, &mut rng(7));
        assert!(g.is_connected());
        assert!(g.edge_count() >= 29);
        assert!(g.edge_count() <= 61, "got {}", g.edge_count());
    }

    #[test]
    fn random_connected_with_edges_clamps_to_clique() {
        let g = random_connected_with_edges(6, 1000, &mut rng(8));
        assert!(g.edge_count() <= 15);
        assert!(g.is_connected());
    }

    #[test]
    fn near_regular_degrees_bounded() {
        let d = 4;
        let g = near_regular(40, d, &mut rng(9));
        assert!(g.is_connected());
        for v in g.nodes() {
            assert!(g.degree(v) >= 2);
            assert!(g.degree(v) <= d + 1, "degree {} too high", g.degree(v));
        }
        let avg: f64 = g.nodes().map(|v| g.degree(v) as f64).sum::<f64>() / g.node_count() as f64;
        assert!(avg > (d - 1) as f64, "average degree {avg} too low");
    }

    #[test]
    fn near_regular_d2_is_cycle() {
        let g = near_regular(10, 2, &mut rng(10));
        assert_eq!(g.edge_count(), 10);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn all_topologies_sample_connected() {
        let topologies = [
            Topology::Path,
            Topology::Cycle,
            Topology::Star,
            Topology::Complete,
            Topology::RandomTree,
            Topology::Gnp(0.2),
            Topology::SparseConnected(2.0),
            Topology::NearRegular(4),
        ];
        for t in topologies {
            for seed in 0..3 {
                let g = t.sample(12, &mut rng(seed));
                assert!(g.is_connected(), "{t:?} produced a disconnected graph");
                assert_eq!(g.node_count(), 12);
            }
        }
    }
}
