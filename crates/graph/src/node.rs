//! Node identifiers.
//!
//! The paper assumes each node has a unique `O(log n)`-bit identifier
//! (Section 1.3). We model identifiers as dense `u32` indices `0..n`, which
//! keeps every per-node table an array. The ordering of [`NodeId`]s is the
//! ID ordering used by the multi-source algorithm ("minimum known source
//! node", Section 3.2.1).

use std::fmt;

/// A node identifier in a dynamic network with a fixed vertex set `V`.
///
/// `NodeId`s are dense indices in `0..n`, so they double as array indices via
/// [`NodeId::index`].
///
/// # Examples
///
/// ```
/// use dynspread_graph::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert!(NodeId::new(2) < v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the identifier as a dense `usize` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Iterates over all node identifiers of an `n`-node network, in
    /// increasing ID order.
    ///
    /// # Examples
    ///
    /// ```
    /// use dynspread_graph::NodeId;
    /// let ids: Vec<_> = NodeId::all(3).collect();
    /// assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..n as u32).map(NodeId)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

/// A round number. Rounds are 1-based as in the paper: "round `r` starts at
/// time `r - 1` and ends at time `r`"; round 0 denotes the initial empty
/// graph `G_0 = (V, ∅)`.
pub type Round = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(17);
        assert_eq!(v.index(), 17);
        assert_eq!(v.value(), 17);
        assert_eq!(u32::from(v), 17);
        assert_eq!(NodeId::from(17u32), v);
    }

    #[test]
    fn node_id_ordering_is_index_ordering() {
        assert!(NodeId::new(0) < NodeId::new(1));
        assert!(NodeId::new(5) > NodeId::new(4));
        let mut ids = vec![NodeId::new(2), NodeId::new(0), NodeId::new(1)];
        ids.sort();
        assert_eq!(ids, NodeId::all(3).collect::<Vec<_>>());
    }

    #[test]
    fn all_yields_exactly_n_ids() {
        assert_eq!(NodeId::all(0).count(), 0);
        assert_eq!(NodeId::all(7).count(), 7);
        assert_eq!(NodeId::all(7).last(), Some(NodeId::new(6)));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let v = NodeId::new(3);
        assert_eq!(format!("{v:?}"), "v3");
        assert_eq!(format!("{v}"), "v3");
    }
}
