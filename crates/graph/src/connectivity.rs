//! Connectivity helpers.
//!
//! The model requires every round graph to be connected. Adversaries use
//! [`connect_components`] to repair a proposal with the minimum number of
//! extra edges (`ℓ - 1` edges for `ℓ` components — the same repair step the
//! Section 2 lower-bound adversary performs with non-free edges).

use crate::edge::Edge;
use crate::graph::Graph;
use crate::node::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Connects `g` by adding exactly `ℓ - 1` edges between randomly chosen
/// representatives of its `ℓ` components. Returns the added edges.
///
/// The resulting graph is connected; if `g` was already connected, nothing
/// is added.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{connectivity::connect_components, Graph};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut g = Graph::empty(5);
/// let mut rng = StdRng::seed_from_u64(1);
/// let added = connect_components(&mut g, &mut rng);
/// assert_eq!(added.len(), 4);
/// assert!(g.is_connected());
/// ```
pub fn connect_components<R: Rng>(g: &mut Graph, rng: &mut R) -> Vec<Edge> {
    let n = g.node_count();
    if n <= 1 {
        return Vec::new();
    }
    let mut uf = g.component_structure();
    // Pick one random member per component.
    let labels = uf.labels();
    let mut members: std::collections::BTreeMap<usize, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for v in g.nodes() {
        members.entry(labels[v.index()]).or_default().push(v);
    }
    let mut reps: Vec<NodeId> = members
        .values()
        .map(|vs| *vs.choose(rng).expect("component is nonempty"))
        .collect();
    reps.shuffle(rng);
    let mut added = Vec::new();
    for w in reps.windows(2) {
        let e = Edge::new(w[0], w[1]);
        if g.insert_edge(e) {
            added.push(e);
        }
    }
    debug_assert!(g.is_connected());
    added
}

/// Returns the bridge edges of `g` (edges whose removal disconnects their
/// component), via a DFS low-link computation.
///
/// Churn adversaries avoid deleting bridges so that connectivity is
/// maintained without re-inserting edges.
pub fn bridges(g: &Graph) -> Vec<Edge> {
    let n = g.node_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut out = Vec::new();
    let mut timer = 1u32;
    // Iterative DFS to avoid recursion limits on large path graphs.
    for start in 0..n {
        if disc[start] != 0 {
            continue;
        }
        // Stack entries: (node, parent, neighbor index).
        let mut stack: Vec<(usize, usize, usize)> = vec![(start, usize::MAX, 0)];
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        while let Some(&mut (u, parent, ref mut idx)) = stack.last_mut() {
            let neighbors = g.neighbors(NodeId::new(u as u32));
            if *idx < neighbors.len() {
                let w = neighbors[*idx].index();
                *idx += 1;
                if disc[w] == 0 {
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    stack.push((w, u, 0));
                } else if w != parent {
                    low[u] = low[u].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p] {
                        out.push(Edge::new(NodeId::new(p as u32), NodeId::new(u as u32)));
                    }
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn e(u: u32, v: u32) -> Edge {
        Edge::new(NodeId::new(u), NodeId::new(v))
    }

    #[test]
    fn connecting_empty_graph_builds_spanning_tree() {
        let mut g = Graph::empty(8);
        let mut rng = StdRng::seed_from_u64(42);
        let added = connect_components(&mut g, &mut rng);
        assert_eq!(added.len(), 7);
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn connecting_connected_graph_is_noop() {
        let mut g = Graph::cycle(6);
        let before = g.edge_count();
        let mut rng = StdRng::seed_from_u64(1);
        let added = connect_components(&mut g, &mut rng);
        assert!(added.is_empty());
        assert_eq!(g.edge_count(), before);
    }

    #[test]
    fn connecting_two_islands_adds_one_edge() {
        let mut g = Graph::from_edges(4, [e(0, 1), e(2, 3)]);
        let mut rng = StdRng::seed_from_u64(3);
        let added = connect_components(&mut g, &mut rng);
        assert_eq!(added.len(), 1);
        assert!(g.is_connected());
    }

    #[test]
    fn path_edges_are_all_bridges() {
        let g = Graph::path(5);
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = Graph::cycle(5);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn lollipop_bridge() {
        // Triangle 0-1-2 plus pendant path 2-3-4: bridges are {2,3} and {3,4}.
        let g = Graph::from_edges(5, [e(0, 1), e(1, 2), e(0, 2), e(2, 3), e(3, 4)]);
        assert_eq!(bridges(&g), vec![e(2, 3), e(3, 4)]);
    }

    #[test]
    fn bridges_across_multiple_components() {
        let g = Graph::from_edges(6, [e(0, 1), e(2, 3), e(3, 4), e(2, 4), e(4, 5)]);
        // {0,1} bridges its tiny component; {4,5} is a pendant bridge.
        assert_eq!(bridges(&g), vec![e(0, 1), e(4, 5)]);
    }

    #[test]
    fn removing_non_bridge_keeps_component_connected() {
        let g = Graph::cycle(7);
        for edge in g.edges().iter().collect::<Vec<_>>() {
            let mut h = g.clone();
            h.remove_edge(edge);
            assert!(h.is_connected(), "cycle minus one edge stays connected");
        }
    }
}
