//! # dynspread-graph — dynamic-network substrate
//!
//! The dynamic-graph model of *The Communication Cost of Information
//! Spreading in Dynamic Networks* (Ahmadi, Kuhn, Kutten, Molla, Pandurangan;
//! ICDCS 2019), Section 1.3:
//!
//! * a fixed vertex set `V` with `n = |V|` nodes ([`NodeId`]),
//! * a synchronous round structure where round `r` has communication graph
//!   `G_r = (V, E_r)` ([`Graph`], [`DynamicGraph`]), with `G_0 = (V, ∅)`,
//! * every `G_r` (`r ≥ 1`) connected,
//! * σ-edge stability ([`stability`]),
//! * topological-change accounting `TC(E) = Σ_r |E_r^+|`
//!   ([`dynamic::TopologyMeter`]), the basis of the paper's
//!   *adversary-competitive message complexity* (Definition 1.3),
//! * network adversaries ([`adversary::Adversary`]) with a library of
//!   oblivious implementations ([`oblivious`]) and generators
//!   ([`generators`]).
//!
//! Strongly adaptive adversaries — which observe algorithm state before
//! committing a topology — are defined in `dynspread-sim` (they need the
//! protocol's message type) and in `dynspread-core` (the Section 2
//! lower-bound adversary, which needs token semantics).
//!
//! # Examples
//!
//! ```
//! use dynspread_graph::{adversary::Adversary, generators::Topology,
//!                       oblivious::PeriodicRewiring, DynamicGraph};
//!
//! let mut adv = PeriodicRewiring::new(Topology::RandomTree, 3, 42);
//! let mut dg = DynamicGraph::new(16);
//! for r in 1..=9 {
//!     let g = adv.graph_for_round(r, dg.current());
//!     assert!(g.is_connected());
//!     dg.advance(g);
//! }
//! // The adversary pays one unit per inserted edge:
//! assert!(dg.topological_changes() >= 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod connectivity;
pub mod dynamic;
pub mod edge;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod node;
pub mod oblivious;
pub mod stability;
pub mod union_find;

pub use dynamic::{DynamicGraph, TopologyMeter};
pub use edge::{Edge, EdgeSet};
pub use graph::Graph;
pub use node::{NodeId, Round};
pub use union_find::UnionFind;
