//! Dynamic-graph round sequences and topological-change accounting.
//!
//! The paper (Section 1.3) models an execution as a sequence of snapshots
//! `G_0 = (V, ∅), G_1, G_2, …` and defines the *number of topological
//! changes* of an execution as the total number of edge insertions:
//! `TC(E) = Σ_r |E_r^+|`. Since `G_0` is empty, deletions are always bounded
//! by insertions, so only insertions are charged (footnote 5).
//!
//! [`DynamicGraph`] tracks the current snapshot, the per-round deltas, and
//! the running [`TopologyMeter`]. It optionally retains the history **as
//! deltas** for offline analysis; snapshots are reconstructed on demand by
//! replay, so history mode no longer clones a full `Graph` per round.

use crate::edge::{Edge, EdgeSet};
use crate::graph::Graph;
use crate::node::Round;

/// Running counts of topological changes.
///
/// `insertions` is exactly the paper's `TC(E)`.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{DynamicGraph, Graph};
///
/// let mut dg = DynamicGraph::new(3);
/// dg.advance(Graph::path(3));
/// dg.advance(Graph::star(3));
/// // path 0-1-2 → star 0-1, 0-2: {0,2} inserted, {1,2} removed.
/// assert_eq!(dg.meter().insertions, 2 + 1);
/// assert_eq!(dg.meter().deletions, 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TopologyMeter {
    /// Total edge insertions so far: the paper's `TC(E)`.
    pub insertions: u64,
    /// Total edge deletions so far (always `≤ insertions`).
    pub deletions: u64,
}

impl TopologyMeter {
    /// The adversary-competitive budget `α · TC(E)` for a given `α`
    /// (Definition 1.3).
    pub fn budget(&self, alpha: f64) -> f64 {
        alpha * self.insertions as f64
    }
}

/// The per-round delta `(E_r^+, E_r^-)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundDelta {
    /// Edges inserted at the beginning of this round (`E_r \ E_{r-1}`).
    pub inserted: Vec<Edge>,
    /// Edges removed at the beginning of this round (`E_{r-1} \ E_r`).
    pub removed: Vec<Edge>,
}

impl RoundDelta {
    /// Whether the round changed nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }
}

/// How an adversary describes the next round's graph to the engine.
///
/// Adversaries that rewire wholesale return [`GraphUpdate::Full`];
/// incremental adversaries (e.g. bounded churn) return
/// [`GraphUpdate::Delta`], which the [`DynamicGraph`] applies **in place**
/// against the live adjacency, skipping the full-snapshot diff; adversaries
/// that keep the topology return [`GraphUpdate::Unchanged`], which costs
/// nothing at all.
#[derive(Clone, Debug)]
pub enum GraphUpdate {
    /// A complete snapshot of the next round's graph.
    Full(Graph),
    /// Exact edge changes relative to the current snapshot.
    Delta(RoundDelta),
    /// The topology does not change this round.
    Unchanged,
}

/// A dynamic graph: the evolving snapshot plus change accounting.
///
/// Starts at round 0 with the empty graph `G_0 = (V, ∅)`; each call to
/// [`DynamicGraph::advance`] installs the next round's snapshot and returns
/// the delta.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    current: Graph,
    round: Round,
    meter: TopologyMeter,
    last_delta: RoundDelta,
    /// Per-round deltas (index 0 = round 1), retained only in history mode.
    history: Option<Vec<RoundDelta>>,
}

impl DynamicGraph {
    /// Creates a dynamic graph on `n` nodes at round 0 (empty snapshot).
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            current: Graph::empty(n),
            round: 0,
            meter: TopologyMeter::default(),
            last_delta: RoundDelta::default(),
            history: None,
        }
    }

    /// Like [`DynamicGraph::new`], but retains the full history **as
    /// per-round deltas** for offline analysis; memory grows with the total
    /// number of topological changes rather than `rounds × |E|`. Snapshots
    /// are reconstructed on demand via [`DynamicGraph::snapshot_at`].
    pub fn with_history(n: usize) -> Self {
        let mut dg = DynamicGraph::new(n);
        dg.history = Some(Vec::new());
        dg
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.current.node_count()
    }

    /// The current round number (0 before the first [`advance`]).
    ///
    /// [`advance`]: DynamicGraph::advance
    pub fn round(&self) -> Round {
        self.round
    }

    /// The current snapshot `G_r`.
    pub fn current(&self) -> &Graph {
        &self.current
    }

    /// The running topology meter.
    pub fn meter(&self) -> TopologyMeter {
        self.meter
    }

    /// The paper's `TC(E)` so far: total edge insertions.
    pub fn topological_changes(&self) -> u64 {
        self.meter.insertions
    }

    /// The delta produced by the most recent [`advance`].
    ///
    /// [`advance`]: DynamicGraph::advance
    pub fn last_delta(&self) -> &RoundDelta {
        &self.last_delta
    }

    /// Recorded per-round deltas (index 0 = round 1), if constructed via
    /// [`DynamicGraph::with_history`].
    pub fn history(&self) -> Option<&[RoundDelta]> {
        self.history.as_deref()
    }

    /// Reconstructs the snapshot `G_r` by replaying recorded deltas.
    ///
    /// Returns `None` unless constructed via [`DynamicGraph::with_history`]
    /// and `r` is at most the current round. `r = 0` yields the empty `G_0`.
    pub fn snapshot_at(&self, r: Round) -> Option<Graph> {
        let history = self.history.as_deref()?;
        if r > self.round {
            return None;
        }
        let mut g = Graph::empty(self.current.node_count());
        for delta in &history[..r as usize] {
            g.apply_delta(&delta.inserted, &delta.removed);
        }
        Some(g)
    }

    /// Installs the snapshot of round `r+1` and updates the meter.
    ///
    /// The delta is computed with a linear merge over the two sorted edge
    /// slices (not a tree walk), then `next` is moved in wholesale.
    ///
    /// Returns the delta `(E_{r+1}^+, E_{r+1}^-)`.
    ///
    /// # Panics
    ///
    /// Panics if `next` has a different node count.
    pub fn advance(&mut self, next: Graph) -> &RoundDelta {
        assert_eq!(
            next.node_count(),
            self.current.node_count(),
            "the vertex set is fixed; node counts must match"
        );
        // Sorted-merge diff; reuses the delta buffers across rounds.
        let mut delta = std::mem::take(&mut self.last_delta);
        delta.inserted.clear();
        delta.removed.clear();
        let (old, new) = (self.current.edges().as_slice(), next.edges().as_slice());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < new.len() {
            match old[i].cmp(&new[j]) {
                std::cmp::Ordering::Less => {
                    delta.removed.push(old[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    delta.inserted.push(new[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        delta.removed.extend_from_slice(&old[i..]);
        delta.inserted.extend_from_slice(&new[j..]);
        self.current = next;
        self.finish_round(delta)
    }

    /// Applies an adversary's [`GraphUpdate`] for the next round.
    ///
    /// * `Full` behaves exactly like [`DynamicGraph::advance`].
    /// * `Delta` mutates the live snapshot in place — no full-graph
    ///   construction or diff at all.
    /// * `Unchanged` only bumps the round counter.
    ///
    /// # Panics
    ///
    /// Panics if a full snapshot has the wrong node count, or if a delta is
    /// inconsistent with the current snapshot (inserts a present edge or
    /// removes an absent one).
    pub fn apply(&mut self, update: GraphUpdate) -> &RoundDelta {
        match update {
            GraphUpdate::Full(next) => self.advance(next),
            GraphUpdate::Unchanged => {
                let mut delta = std::mem::take(&mut self.last_delta);
                delta.inserted.clear();
                delta.removed.clear();
                self.finish_round(delta)
            }
            GraphUpdate::Delta(delta) => {
                let (ins, rm) = self.current.apply_delta(&delta.inserted, &delta.removed);
                assert_eq!(
                    (ins, rm),
                    (delta.inserted.len(), delta.removed.len()),
                    "delta inconsistent with the current snapshot"
                );
                self.finish_round(delta)
            }
        }
    }

    fn finish_round(&mut self, delta: RoundDelta) -> &RoundDelta {
        self.meter.insertions += delta.inserted.len() as u64;
        self.meter.deletions += delta.removed.len() as u64;
        self.last_delta = delta;
        self.round += 1;
        if let Some(h) = &mut self.history {
            h.push(self.last_delta.clone());
        }
        &self.last_delta
    }
}

/// Computes the total topological changes `TC(E) = Σ_r |E_r^+|` of a
/// complete schedule given as snapshots `G_1, …, G_x` (with implicit empty
/// `G_0`).
///
/// # Examples
///
/// ```
/// use dynspread_graph::{dynamic::topological_changes, Graph};
///
/// let schedule = [Graph::path(3), Graph::path(3), Graph::star(3)];
/// // Round 1 inserts 2 path edges; round 3 inserts {0,2}.
/// assert_eq!(topological_changes(3, &schedule), 3);
/// ```
pub fn topological_changes(n: usize, schedule: &[Graph]) -> u64 {
    let mut prev = EdgeSet::new();
    let mut tc = 0u64;
    for g in schedule {
        assert_eq!(g.node_count(), n, "schedule node count mismatch");
        tc += g.edges().difference(&prev).count() as u64;
        prev = g.edges().clone();
    }
    tc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn starts_empty_at_round_zero() {
        let dg = DynamicGraph::new(4);
        assert_eq!(dg.round(), 0);
        assert_eq!(dg.current().edge_count(), 0);
        assert_eq!(dg.topological_changes(), 0);
    }

    #[test]
    fn first_advance_charges_all_edges_as_insertions() {
        let mut dg = DynamicGraph::new(4);
        dg.advance(Graph::path(4));
        assert_eq!(dg.round(), 1);
        assert_eq!(dg.topological_changes(), 3);
        assert_eq!(dg.meter().deletions, 0);
        assert_eq!(dg.last_delta().inserted.len(), 3);
    }

    #[test]
    fn unchanged_round_charges_nothing() {
        let mut dg = DynamicGraph::new(4);
        dg.advance(Graph::path(4));
        dg.advance(Graph::path(4));
        assert_eq!(dg.topological_changes(), 3);
        assert!(dg.last_delta().inserted.is_empty());
        assert!(dg.last_delta().removed.is_empty());
    }

    #[test]
    fn rewiring_charges_only_new_edges() {
        let mut dg = DynamicGraph::new(3);
        dg.advance(Graph::path(3)); // edges {0,1},{1,2}
        dg.advance(Graph::star(3)); // edges {0,1},{0,2}
        assert_eq!(dg.topological_changes(), 3);
        assert_eq!(dg.meter().deletions, 1);
        assert_eq!(
            dg.last_delta().inserted,
            vec![Edge::new(NodeId::new(0), NodeId::new(2))]
        );
        assert_eq!(
            dg.last_delta().removed,
            vec![Edge::new(NodeId::new(1), NodeId::new(2))]
        );
    }

    #[test]
    fn deletions_never_exceed_insertions() {
        let mut dg = DynamicGraph::new(5);
        for g in [
            Graph::complete(5),
            Graph::path(5),
            Graph::star(5),
            Graph::path(5),
        ] {
            dg.advance(g);
            assert!(dg.meter().deletions <= dg.meter().insertions);
        }
    }

    #[test]
    #[should_panic(expected = "node counts must match")]
    fn node_count_change_panics() {
        let mut dg = DynamicGraph::new(3);
        dg.advance(Graph::path(4));
    }

    #[test]
    fn history_replays_all_snapshots() {
        let mut dg = DynamicGraph::with_history(3);
        dg.advance(Graph::path(3));
        dg.advance(Graph::star(3));
        assert_eq!(dg.history().unwrap().len(), 2); // deltas of rounds 1, 2
        assert_eq!(dg.snapshot_at(0).unwrap().edge_count(), 0);
        assert_eq!(dg.snapshot_at(1).unwrap(), Graph::path(3));
        assert_eq!(dg.snapshot_at(2).unwrap(), Graph::star(3));
        assert!(dg.snapshot_at(3).is_none());
        assert!(DynamicGraph::new(3).snapshot_at(0).is_none());
    }

    #[test]
    fn apply_delta_and_unchanged_match_full_advance() {
        let mut a = DynamicGraph::with_history(4);
        let mut b = DynamicGraph::with_history(4);
        // Round 1: same full snapshot.
        a.advance(Graph::path(4));
        b.apply(GraphUpdate::Full(Graph::path(4)));
        // Round 2: no change.
        a.advance(Graph::path(4));
        b.apply(GraphUpdate::Unchanged);
        // Round 3: rewire path → star via an explicit delta.
        let star = Graph::star(4);
        a.advance(star.clone());
        let inserted: Vec<Edge> = star.edges().difference(Graph::path(4).edges()).collect();
        let removed: Vec<Edge> = Graph::path(4).edges().difference(star.edges()).collect();
        b.apply(GraphUpdate::Delta(RoundDelta { inserted, removed }));
        assert_eq!(a.current(), b.current());
        assert_eq!(a.meter(), b.meter());
        assert_eq!(a.round(), b.round());
        assert_eq!(a.last_delta(), b.last_delta());
        assert_eq!(a.snapshot_at(3), b.snapshot_at(3));
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn inconsistent_delta_panics() {
        let mut dg = DynamicGraph::new(3);
        dg.advance(Graph::path(3));
        // {0,1} is already present; inserting it again is a corrupted delta.
        dg.apply(GraphUpdate::Delta(RoundDelta {
            inserted: vec![Edge::new(NodeId::new(0), NodeId::new(1))],
            removed: vec![],
        }));
    }

    #[test]
    fn offline_tc_matches_online_meter() {
        let schedule = vec![
            Graph::path(4),
            Graph::star(4),
            Graph::star(4),
            Graph::complete(4),
        ];
        let mut dg = DynamicGraph::new(4);
        for g in &schedule {
            dg.advance(g.clone());
        }
        assert_eq!(dg.topological_changes(), topological_changes(4, &schedule));
    }

    #[test]
    fn budget_scales_with_alpha() {
        let meter = TopologyMeter {
            insertions: 10,
            deletions: 4,
        };
        assert_eq!(meter.budget(1.0), 10.0);
        assert_eq!(meter.budget(2.5), 25.0);
        assert_eq!(meter.budget(0.0), 0.0);
    }
}
