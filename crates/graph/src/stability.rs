//! σ-edge stability (Section 1.3).
//!
//! A dynamic graph is *σ-edge stable* if every edge, once inserted, remains
//! present for at least σ consecutive rounds. Every dynamic graph is 1-edge
//! stable; Algorithm 1's `O(nk)` running-time bound (Theorem 3.4) requires
//! 3-edge stability.
//!
//! This module provides an online [`StabilityChecker`] (verifies a schedule
//! as it unfolds) and [`StabilityEnforcer`] (clamps an adversary's proposed
//! deletions so the produced schedule is σ-stable by construction).

use crate::edge::Edge;
use crate::graph::Graph;
use crate::node::Round;
use std::collections::BTreeMap;

/// Online verifier of σ-edge stability.
///
/// Feed it the snapshot of every round in order; it reports the first
/// violation, i.e. an edge that was deleted before being present for σ
/// consecutive rounds.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{Graph, stability::StabilityChecker};
///
/// let mut checker = StabilityChecker::new(3);
/// checker.observe(&Graph::path(3)).unwrap();
/// checker.observe(&Graph::path(3)).unwrap();
/// checker.observe(&Graph::path(3)).unwrap();
/// // After 3 rounds of presence the path edges may be dropped.
/// checker.observe(&Graph::star(3)).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct StabilityChecker {
    sigma: u64,
    round: Round,
    /// For each currently present edge: the round it was (last) inserted.
    inserted_at: BTreeMap<Edge, Round>,
}

/// A violation of σ-edge stability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StabilityViolation {
    /// The offending edge.
    pub edge: Edge,
    /// Round the edge was inserted.
    pub inserted_at: Round,
    /// Round at whose beginning the edge was removed.
    pub removed_at: Round,
    /// Length of the presence run (`removed_at - inserted_at`).
    pub run_length: u64,
    /// Required minimum run length (σ).
    pub sigma: u64,
}

impl std::fmt::Display for StabilityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "edge {} inserted in round {} was removed in round {}: present {} < σ = {} rounds",
            self.edge, self.inserted_at, self.removed_at, self.run_length, self.sigma
        )
    }
}

impl std::error::Error for StabilityViolation {}

impl StabilityChecker {
    /// Creates a checker for σ-edge stability.
    ///
    /// # Panics
    ///
    /// Panics if `sigma == 0` (σ ≥ 1 by definition).
    pub fn new(sigma: u64) -> Self {
        assert!(sigma >= 1, "σ must be at least 1");
        StabilityChecker {
            sigma,
            round: 0,
            inserted_at: BTreeMap::new(),
        }
    }

    /// The σ parameter.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// Observes the snapshot of the next round.
    ///
    /// # Errors
    ///
    /// Returns the first [`StabilityViolation`] if an edge was removed
    /// before completing σ consecutive rounds of presence.
    pub fn observe(&mut self, g: &Graph) -> Result<(), StabilityViolation> {
        self.round += 1;
        let r = self.round;
        // Check removals: edges tracked but no longer present.
        let removed: Vec<(Edge, Round)> = self
            .inserted_at
            .iter()
            .filter(|(e, _)| !g.edges().contains(**e))
            .map(|(e, ins)| (*e, *ins))
            .collect();
        for (e, ins) in removed {
            self.inserted_at.remove(&e);
            let run = r - ins; // present during rounds ins .. r-1 inclusive
            if run < self.sigma {
                return Err(StabilityViolation {
                    edge: e,
                    inserted_at: ins,
                    removed_at: r,
                    run_length: run,
                    sigma: self.sigma,
                });
            }
        }
        // Record insertions.
        for e in g.edges().iter() {
            self.inserted_at.entry(e).or_insert(r);
        }
        Ok(())
    }
}

/// Verifies that a complete schedule `G_1, …, G_x` is σ-edge stable.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_schedule(sigma: u64, schedule: &[Graph]) -> Result<(), StabilityViolation> {
    let mut checker = StabilityChecker::new(sigma);
    for g in schedule {
        checker.observe(g)?;
    }
    Ok(())
}

/// Makes adversary proposals σ-stable by construction.
///
/// The enforcer tracks edge ages. Given a *proposed* next snapshot, it adds
/// back every edge that is too young to be deleted. Adversaries route their
/// proposals through [`StabilityEnforcer::clamp`] before publishing.
#[derive(Clone, Debug)]
pub struct StabilityEnforcer {
    sigma: u64,
    round: Round,
    inserted_at: BTreeMap<Edge, Round>,
}

impl StabilityEnforcer {
    /// Creates an enforcer for σ-edge stability.
    ///
    /// # Panics
    ///
    /// Panics if `sigma == 0`.
    pub fn new(sigma: u64) -> Self {
        assert!(sigma >= 1, "σ must be at least 1");
        StabilityEnforcer {
            sigma,
            round: 0,
            inserted_at: BTreeMap::new(),
        }
    }

    /// The σ parameter.
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// Returns the edges that may *not* be deleted in the upcoming round
    /// (present, but for fewer than σ rounds so far).
    pub fn pinned_edges(&self) -> Vec<Edge> {
        let next_round = self.round + 1;
        self.inserted_at
            .iter()
            .filter(|(_, &ins)| next_round - ins < self.sigma)
            .map(|(e, _)| *e)
            .collect()
    }

    /// Clamps a proposed snapshot for the next round: re-inserts every
    /// pinned edge, then records the result as the next round's graph.
    ///
    /// Returns the clamped graph.
    pub fn clamp(&mut self, mut proposal: Graph) -> Graph {
        for e in self.pinned_edges() {
            proposal.insert_edge(e);
        }
        self.round += 1;
        let r = self.round;
        self.inserted_at
            .retain(|e, _| proposal.edges().contains(*e));
        for e in proposal.edges().iter() {
            self.inserted_at.entry(e).or_insert(r);
        }
        proposal
    }

    /// Records an already-σ-legal delta as the next round's change — the
    /// incremental counterpart of [`StabilityEnforcer::clamp`], costing
    /// O(|delta| log m) instead of a full edge-set sweep.
    ///
    /// # Panics
    ///
    /// Panics if a removed edge is still pinned (callers must filter their
    /// deletions through [`StabilityEnforcer::pinned_edges`] first).
    pub fn commit_delta(&mut self, inserted: &[Edge], removed: &[Edge]) {
        self.round += 1;
        let r = self.round;
        for e in removed {
            let ins = self
                .inserted_at
                .remove(e)
                .expect("removed edge was never recorded");
            assert!(
                r - ins >= self.sigma,
                "delta deletes pinned edge {e} (present {} < σ = {} rounds)",
                r - ins,
                self.sigma
            );
        }
        for e in inserted {
            self.inserted_at.entry(*e).or_insert(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn e(u: u32, v: u32) -> Edge {
        Edge::new(NodeId::new(u), NodeId::new(v))
    }

    #[test]
    fn every_schedule_is_one_stable() {
        let schedule = vec![Graph::path(4), Graph::star(4), Graph::cycle(4)];
        assert!(check_schedule(1, &schedule).is_ok());
    }

    #[test]
    fn detects_immediate_deletion_under_sigma_two() {
        let schedule = vec![Graph::path(3), Graph::star(3)];
        let err = check_schedule(2, &schedule).unwrap_err();
        assert_eq!(err.edge, e(1, 2));
        assert_eq!(err.inserted_at, 1);
        assert_eq!(err.removed_at, 2);
        assert_eq!(err.run_length, 1);
    }

    #[test]
    fn accepts_deletion_after_sigma_rounds() {
        let schedule = vec![
            Graph::path(3),
            Graph::path(3),
            Graph::path(3),
            Graph::star(3),
        ];
        assert!(check_schedule(3, &schedule).is_ok());
    }

    #[test]
    fn rejects_deletion_one_round_early() {
        let schedule = vec![Graph::path(3), Graph::path(3), Graph::star(3)];
        let err = check_schedule(3, &schedule).unwrap_err();
        assert_eq!(err.run_length, 2);
        assert_eq!(err.sigma, 3);
        // Error message is human-readable.
        assert!(err.to_string().contains("σ = 3"));
    }

    #[test]
    fn reinsertion_restarts_the_clock() {
        // Edge {1,2}: present rounds 1-3, absent 4, present 5, absent 6.
        // The second run has length 1 < 3 → violation at round 6.
        let path = Graph::path(3);
        let star = Graph::star(3);
        let schedule = vec![
            path.clone(),
            path.clone(),
            path.clone(),
            star.clone(),
            path.clone(),
            star.clone(),
        ];
        // Note {0,2} (star-only edge) also cycles; it is inserted at round 4,
        // removed at round 5 → that violation fires first.
        let err = check_schedule(3, &schedule).unwrap_err();
        assert_eq!(err.removed_at, 5);
        assert_eq!(err.edge, e(0, 2));
    }

    #[test]
    fn enforcer_pins_young_edges() {
        let mut enf = StabilityEnforcer::new(3);
        let g1 = enf.clamp(Graph::path(3));
        assert_eq!(g1, Graph::path(3));
        // Proposal drops {1,2} immediately; enforcer must re-add it.
        let g2 = enf.clamp(Graph::from_edges(3, [e(0, 1), e(0, 2)]));
        assert!(g2.edges().contains(e(1, 2)));
        assert!(g2.edges().contains(e(0, 2)));
    }

    #[test]
    fn enforcer_allows_deletion_after_sigma() {
        let mut enf = StabilityEnforcer::new(2);
        enf.clamp(Graph::path(3));
        enf.clamp(Graph::path(3));
        // Path edges have now been present 2 rounds; deletion is allowed.
        let g3 = enf.clamp(Graph::from_edges(3, [e(0, 1), e(0, 2)]));
        assert!(!g3.edges().contains(e(1, 2)));
    }

    #[test]
    fn enforcer_output_is_always_sigma_stable() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let sigma = 3;
        let mut enf = StabilityEnforcer::new(sigma);
        let mut checker = StabilityChecker::new(sigma);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            // Random proposal: each of the 6 possible edges on 4 nodes w.p. 1/2.
            let mut g = Graph::empty(4);
            for u in 0..4u32 {
                for v in (u + 1)..4 {
                    if rng.gen_bool(0.5) {
                        g.insert_edge(e(u, v));
                    }
                }
            }
            let clamped = enf.clamp(g);
            checker
                .observe(&clamped)
                .expect("enforcer must be σ-stable");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sigma_checker_panics() {
        let _ = StabilityChecker::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_sigma_enforcer_panics() {
        let _ = StabilityEnforcer::new(0);
    }
}
