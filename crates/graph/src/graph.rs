//! Immutable-per-round graph snapshots.
//!
//! A [`Graph`] is the communication graph `G_r = (V, E_r)` of one round. The
//! vertex set is fixed for the lifetime of an execution (the paper's model
//! has no node churn); only the edge set varies between rounds.
//!
//! Adjacency is stored in **CSR form** (compressed sparse row): one
//! `offsets` array of `n + 1` cumulative degrees and one flat `targets`
//! array holding every node's sorted neighbor list back to back. Compared
//! to the former `Vec<Vec<NodeId>>` this is a single allocation instead of
//! `n`, clones are two `memcpy`s, and iterating a round's worth of
//! neighborhoods walks one contiguous array — the properties that let the
//! experiment grids run at `n` in the thousands.

use crate::edge::{Edge, EdgeSet};
use crate::node::NodeId;
use crate::union_find::UnionFind;

/// Reusable buffers for the batched delta path, excluded from clones and
/// comparisons (a cloned snapshot starts with empty scratch).
#[derive(Default)]
struct DeltaScratch {
    /// Double buffer the merged `targets` array is built into.
    targets: Vec<NodeId>,
    /// Sorted copies of unsorted delta slices.
    ins_sorted: Vec<Edge>,
    rm_sorted: Vec<Edge>,
    /// Directed `(node, neighbor)` pairs of the effective delta.
    add_pairs: Vec<(NodeId, NodeId)>,
    rm_pairs: Vec<(NodeId, NodeId)>,
    /// Double buffer for the edge set's sorted vector.
    edges: Vec<Edge>,
}

/// A snapshot of the communication graph of a single round.
///
/// Stores both an edge set (for per-edge queries and round-delta
/// computation) and a CSR adjacency structure (for per-node iteration).
/// The two representations are kept consistent by construction.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{Graph, NodeId};
///
/// let g = Graph::path(4);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.is_connected());
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// ```
pub struct Graph {
    n: usize,
    edges: EdgeSet,
    /// `offsets[v]..offsets[v + 1]` indexes `v`'s neighbors in `targets`.
    offsets: Vec<u32>,
    /// All neighbor lists, concatenated; each node's slice is sorted.
    targets: Vec<NodeId>,
    /// Lazily allocated, boxed so a snapshot stays two pointers smaller
    /// than the `large_enum_variant` threshold of `GraphUpdate::Full`.
    scratch: Option<Box<DeltaScratch>>,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        Graph {
            n: self.n,
            edges: self.edges.clone(),
            offsets: self.offsets.clone(),
            targets: self.targets.clone(),
            scratch: None,
        }
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // The CSR arrays are derived from the edge set; comparing them
        // would be redundant work.
        self.n == other.n && self.edges == other.edges
    }
}

impl Eq for Graph {}

impl Graph {
    /// The empty graph `(V, ∅)` on `n` nodes — the paper's `G_0`.
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            edges: EdgeSet::new(),
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            scratch: None,
        }
    }

    /// Builds a graph on `n` nodes from an edge iterator.
    ///
    /// Duplicate edges are deduplicated. This is the bulk path: one sort
    /// over the edge list, one counting pass, and a single contiguous fill
    /// of the CSR arrays — no per-node allocations and no per-edge
    /// shifting.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn from_edges<I: IntoIterator<Item = Edge>>(n: usize, edges: I) -> Self {
        let mut list: Vec<Edge> = edges.into_iter().collect();
        list.sort_unstable();
        list.dedup();
        let mut offsets = vec![0u32; n + 1];
        for e in &list {
            assert!(e.hi().index() < n, "edge {e} out of range for n = {n}");
            offsets[e.lo().index() + 1] += 1;
            offsets[e.hi().index() + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![NodeId::new(0); list.len() * 2];
        // `list` is sorted by (lo, hi). For a node `u`, its sub-`u`
        // neighbors arrive while scanning edges with `hi = u` (increasing
        // `lo`) and its super-`u` neighbors while scanning edges with
        // `lo = u` (increasing `hi`) — and all `hi = u` edges sort before
        // all `lo = u` edges, so every row comes out sorted.
        for e in &list {
            let (lo, hi) = (e.lo(), e.hi());
            targets[cursor[lo.index()] as usize] = hi;
            cursor[lo.index()] += 1;
            targets[cursor[hi.index()] as usize] = lo;
            cursor[hi.index()] += 1;
        }
        Graph {
            n,
            edges: EdgeSet::from_sorted_vec(list),
            offsets,
            targets,
            scratch: None,
        }
    }

    /// The path `v0 – v1 – … – v(n-1)`.
    pub fn path(n: usize) -> Self {
        Graph::from_edges(
            n,
            (1..n).map(|i| Edge::new(NodeId::new(i as u32 - 1), NodeId::new(i as u32))),
        )
    }

    /// The cycle on `n ≥ 3` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 nodes, got {n}");
        let mut g = Graph::path(n);
        g.insert_edge(Edge::new(NodeId::new(0), NodeId::new(n as u32 - 1)));
        g
    }

    /// The star with center `v0`.
    pub fn star(n: usize) -> Self {
        Graph::from_edges(
            n,
            (1..n).map(|i| Edge::new(NodeId::new(0), NodeId::new(i as u32))),
        )
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        Graph::from_edges(
            n,
            (0..n as u32).flat_map(|u| {
                ((u + 1)..n as u32).map(move |v| Edge::new(NodeId::new(u), NodeId::new(v)))
            }),
        )
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges `m_r = |E_r|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge set `E_r`.
    #[inline]
    pub fn edges(&self) -> &EdgeSet {
        &self.edges
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.edges.contains(Edge::new(u, v))
    }

    /// The neighbors of `v`, sorted by node ID.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// The degree of `v` in this round.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Iterates over all node IDs.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        NodeId::all(self.n)
    }

    /// Inserts `b` into `a`'s sorted CSR row, shifting the tail of
    /// `targets` and bumping the offsets of all later rows.
    fn csr_insert(&mut self, a: NodeId, b: NodeId) {
        let (start, end) = (
            self.offsets[a.index()] as usize,
            self.offsets[a.index() + 1] as usize,
        );
        let pos = start + self.targets[start..end].partition_point(|&x| x < b);
        self.targets.insert(pos, b);
        for o in &mut self.offsets[a.index() + 1..] {
            *o += 1;
        }
    }

    /// Removes `b` from `a`'s sorted CSR row.
    fn csr_remove(&mut self, a: NodeId, b: NodeId) {
        let (start, end) = (
            self.offsets[a.index()] as usize,
            self.offsets[a.index() + 1] as usize,
        );
        let pos = start + self.targets[start..end].partition_point(|&x| x < b);
        debug_assert!(self.targets[pos] == b);
        self.targets.remove(pos);
        for o in &mut self.offsets[a.index() + 1..] {
            *o -= 1;
        }
    }

    /// Inserts an edge, keeping adjacency sorted. Returns `true` if new.
    ///
    /// Incremental inserts shift the flat `targets` array; adversaries use
    /// this for their few-edges-per-round churn. Bulk construction should
    /// go through [`Graph::from_edges`], and per-round deltas through
    /// [`Graph::apply_delta`], which rebuilds the CSR in one merge pass.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn insert_edge(&mut self, e: Edge) -> bool {
        assert!(
            e.hi().index() < self.n,
            "edge {e} out of range for n = {}",
            self.n
        );
        if !self.edges.insert(e) {
            return false;
        }
        let (u, v) = e.endpoints();
        self.csr_insert(u, v);
        self.csr_insert(v, u);
        true
    }

    /// Removes an edge. Returns `true` if it was present.
    pub fn remove_edge(&mut self, e: Edge) -> bool {
        if !self.edges.remove(e) {
            return false;
        }
        let (u, v) = e.endpoints();
        self.csr_remove(u, v);
        self.csr_remove(v, u);
        true
    }

    /// Whether the graph is connected (the model requires every `G_r`,
    /// `r ≥ 1`, to be connected).
    ///
    /// The empty-vertex-set graph and the single-node graph are connected.
    pub fn is_connected(&self) -> bool {
        self.component_structure().component_count() == 1 || self.n <= 1
    }

    /// Like [`Graph::is_connected`], but reuses the caller's union–find
    /// buffer instead of allocating — the per-round fast path.
    pub fn is_connected_with(&self, uf: &mut UnionFind) -> bool {
        self.component_structure_into(uf);
        uf.component_count() == 1 || self.n <= 1
    }

    /// Union–find over the graph's edges; exposes components.
    pub fn component_structure(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.n);
        self.component_structure_into(&mut uf);
        uf
    }

    /// Rebuilds `uf` (resetting it) as the union–find over this graph's
    /// edges, reusing its buffers.
    pub fn component_structure_into(&self, uf: &mut UnionFind) {
        uf.reset(self.n);
        for &e in self.edges.as_slice() {
            uf.union(e.lo().index(), e.hi().index());
        }
    }

    /// Applies a round delta: removes `removed`, then inserts `inserted`,
    /// in one epoch-batched pass. Returns `(actually_inserted,
    /// actually_removed)` counts.
    ///
    /// Instead of per-edge adjacency shifts, the sorted delta is merged
    /// into the edge set's sorted vector and into the sorted CSR `targets`
    /// array in a single linear sweep each — `O(n + m + |δ| log |δ|)`
    /// regardless of how many edges the round touches, with no per-node
    /// allocations. The merge buffers are retained on the graph, so
    /// steady-state rounds allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if an inserted edge's endpoint is `>= n` (like
    /// [`Graph::insert_edge`]). Panics (in debug builds) if the delta is
    /// inconsistent with the current edge set — an inserted edge already
    /// present or a removed edge absent — since that indicates a corrupted
    /// delta. In release builds inconsistent entries are skipped and
    /// excluded from the returned counts, exactly like the former per-edge
    /// path.
    pub fn apply_delta(&mut self, inserted: &[Edge], removed: &[Edge]) -> (usize, usize) {
        if inserted.is_empty() && removed.is_empty() {
            return (0, 0);
        }
        for e in inserted {
            assert!(
                e.hi().index() < self.n,
                "edge {e} out of range for n = {}",
                self.n
            );
        }
        let mut scratch = self.scratch.take().unwrap_or_default();
        let inserted = sorted_view(inserted, &mut scratch.ins_sorted);
        let removed = sorted_view(removed, &mut scratch.rm_sorted);

        // Pass 1: merge the sorted delta into the edge set's sorted
        // vector, collecting the *effective* changes as directed pairs.
        scratch.add_pairs.clear();
        scratch.rm_pairs.clear();
        let (ins, rm) = self.edges.apply_sorted_delta(
            inserted,
            removed,
            &mut scratch.edges,
            |e| {
                scratch.add_pairs.push((e.lo(), e.hi()));
                scratch.add_pairs.push((e.hi(), e.lo()));
            },
            |e| {
                scratch.rm_pairs.push((e.lo(), e.hi()));
                scratch.rm_pairs.push((e.hi(), e.lo()));
            },
        );

        // Pass 2: merge the directed pairs into the CSR arrays.
        scratch.add_pairs.sort_unstable();
        scratch.rm_pairs.sort_unstable();
        scratch.targets.clear();
        scratch
            .targets
            .reserve(self.targets.len() + scratch.add_pairs.len() - scratch.rm_pairs.len());
        let (mut ai, mut ri) = (0, 0);
        // `offsets` is rewritten in place as rows are emitted, so the old
        // row bounds are carried forward separately.
        let mut old_start = 0usize;
        for v in 0..self.n {
            let old_end = self.offsets[v + 1] as usize;
            let vid = NodeId::new(v as u32);
            for &t in &self.targets[old_start..old_end] {
                if ri < scratch.rm_pairs.len() && scratch.rm_pairs[ri] == (vid, t) {
                    ri += 1;
                    continue;
                }
                while ai < scratch.add_pairs.len()
                    && scratch.add_pairs[ai].0 == vid
                    && scratch.add_pairs[ai].1 < t
                {
                    scratch.targets.push(scratch.add_pairs[ai].1);
                    ai += 1;
                }
                scratch.targets.push(t);
            }
            while ai < scratch.add_pairs.len() && scratch.add_pairs[ai].0 == vid {
                scratch.targets.push(scratch.add_pairs[ai].1);
                ai += 1;
            }
            self.offsets[v + 1] = scratch.targets.len() as u32;
            old_start = old_end;
        }
        debug_assert_eq!(ai, scratch.add_pairs.len());
        debug_assert_eq!(ri, scratch.rm_pairs.len());
        std::mem::swap(&mut self.targets, &mut scratch.targets);
        self.scratch = Some(scratch);
        (ins, rm)
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        if self.n == 0 {
            return 0;
        }
        self.component_structure().component_count()
    }

    /// Breadth-first distances from `src`; `None` for unreachable nodes.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.n];
        dist[src.index()] = Some(0);
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued nodes have distances");
            for &w in self.neighbors(u) {
                if dist[w.index()].is_none() {
                    dist[w.index()] = Some(du + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The diameter (longest shortest path); `None` if disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for v in self.nodes() {
            let dist = self.bfs_distances(v);
            for d in dist {
                best = best.max(d?);
            }
        }
        Some(best)
    }
}

/// Returns `slice` if already strictly sorted, otherwise a sorted,
/// deduplicated copy built in `buf`. Delta slices produced by the
/// sorted-merge diff are always sorted, so the copy is the rare path.
fn sorted_view<'a>(slice: &'a [Edge], buf: &'a mut Vec<Edge>) -> &'a [Edge] {
    if slice.windows(2).all(|w| w[0] < w[1]) {
        return slice;
    }
    buf.clear();
    buf.extend_from_slice(slice);
    buf.sort_unstable();
    buf.dedup();
    buf
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.edges.len())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_connected());
        assert_eq!(g.component_count(), 5);
    }

    #[test]
    fn single_node_graph_is_connected() {
        assert!(Graph::empty(1).is_connected());
        assert!(Graph::empty(0).is_connected());
    }

    #[test]
    fn path_shape() {
        let g = Graph::path(5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
        assert_eq!(g.degree(nid(0)), 1);
        assert_eq!(g.degree(nid(2)), 2);
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn cycle_shape() {
        let g = Graph::cycle(6);
        assert_eq!(g.edge_count(), 6);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = Graph::cycle(2);
    }

    #[test]
    fn star_shape() {
        let g = Graph::star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(nid(0)), 6);
        assert_eq!(g.degree(nid(3)), 1);
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn complete_shape() {
        let g = Graph::complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.diameter(), Some(1));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn insert_remove_keeps_adjacency_sorted_and_consistent() {
        let mut g = Graph::empty(4);
        assert!(g.insert_edge(Edge::new(nid(2), nid(0))));
        assert!(g.insert_edge(Edge::new(nid(0), nid(3))));
        assert!(!g.insert_edge(Edge::new(nid(3), nid(0))));
        assert_eq!(g.neighbors(nid(0)), &[nid(2), nid(3)]);
        assert!(g.has_edge(nid(0), nid(2)));
        assert!(g.remove_edge(Edge::new(nid(0), nid(2))));
        assert!(!g.remove_edge(Edge::new(nid(0), nid(2))));
        assert_eq!(g.neighbors(nid(0)), &[nid(3)]);
        assert_eq!(g.neighbors(nid(2)), &[] as &[NodeId]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::empty(3);
        g.insert_edge(Edge::new(nid(1), nid(3)));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::path(4);
        let d = g.bfs_distances(nid(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = Graph::from_edges(4, [Edge::new(nid(0), nid(1))]);
        let d = g.bfs_distances(nid(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn has_edge_rejects_self_pair() {
        let g = Graph::path(3);
        assert!(!g.has_edge(nid(1), nid(1)));
    }

    #[test]
    fn component_count_of_two_islands() {
        let g = Graph::from_edges(5, [Edge::new(nid(0), nid(1)), Edge::new(nid(2), nid(3))]);
        assert_eq!(g.component_count(), 3); // {0,1}, {2,3}, {4}
    }

    #[test]
    fn csr_rows_match_per_edge_construction() {
        // Bulk build and incremental build of the same edge set must agree
        // on every row.
        let edges = [
            Edge::new(nid(0), nid(3)),
            Edge::new(nid(1), nid(2)),
            Edge::new(nid(0), nid(1)),
            Edge::new(nid(2), nid(4)),
            Edge::new(nid(3), nid(4)),
        ];
        let bulk = Graph::from_edges(5, edges);
        let mut inc = Graph::empty(5);
        for e in edges {
            inc.insert_edge(e);
        }
        for v in bulk.nodes() {
            assert_eq!(bulk.neighbors(v), inc.neighbors(v), "row {v}");
            assert!(bulk.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(bulk, inc);
    }

    #[test]
    fn apply_delta_matches_per_edge_mutation() {
        let mut batched = Graph::path(6);
        let mut per_edge = Graph::path(6);
        let removed = [Edge::new(nid(2), nid(3)), Edge::new(nid(4), nid(5))];
        let inserted = [
            Edge::new(nid(0), nid(3)),
            Edge::new(nid(2), nid(5)),
            Edge::new(nid(1), nid(4)),
        ];
        let counts = batched.apply_delta(&inserted, &removed);
        assert_eq!(counts, (3, 2));
        for e in removed {
            per_edge.remove_edge(e);
        }
        for e in inserted {
            per_edge.insert_edge(e);
        }
        assert_eq!(batched, per_edge);
        for v in batched.nodes() {
            assert_eq!(batched.neighbors(v), per_edge.neighbors(v), "row {v}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_delta_rejects_out_of_range_endpoints() {
        let mut g = Graph::empty(6);
        g.apply_delta(&[Edge::new(nid(5), nid(9))], &[]);
    }

    #[test]
    fn apply_delta_accepts_unsorted_slices() {
        let mut g = Graph::empty(4);
        g.apply_delta(
            &[
                Edge::new(nid(2), nid(3)),
                Edge::new(nid(0), nid(1)),
                Edge::new(nid(1), nid(2)),
            ],
            &[],
        );
        assert!(g.is_connected());
        assert_eq!(g.neighbors(nid(1)), &[nid(0), nid(2)]);
    }

    #[test]
    fn apply_delta_reuses_buffers_across_rounds() {
        // Two delta rounds through the same graph exercise the retained
        // scratch path; equality with a fresh build checks the result.
        let mut g = Graph::from_edges(5, [Edge::new(nid(0), nid(1)), Edge::new(nid(1), nid(2))]);
        g.apply_delta(&[Edge::new(nid(2), nid(3))], &[Edge::new(nid(0), nid(1))]);
        g.apply_delta(&[Edge::new(nid(3), nid(4)), Edge::new(nid(0), nid(4))], &[]);
        let expect = Graph::from_edges(
            5,
            [
                Edge::new(nid(1), nid(2)),
                Edge::new(nid(2), nid(3)),
                Edge::new(nid(3), nid(4)),
                Edge::new(nid(0), nid(4)),
            ],
        );
        assert_eq!(g, expect);
        for v in g.nodes() {
            assert_eq!(g.neighbors(v), expect.neighbors(v), "row {v}");
        }
    }
}
