//! Immutable-per-round graph snapshots.
//!
//! A [`Graph`] is the communication graph `G_r = (V, E_r)` of one round. The
//! vertex set is fixed for the lifetime of an execution (the paper's model
//! has no node churn); only the edge set varies between rounds.

use crate::edge::{Edge, EdgeSet};
use crate::node::NodeId;
use crate::union_find::UnionFind;

/// A snapshot of the communication graph of a single round.
///
/// Stores both an edge set (for per-edge queries and round-delta
/// computation) and a sorted adjacency list (for per-node iteration). The
/// two representations are kept consistent by construction.
///
/// # Examples
///
/// ```
/// use dynspread_graph::{Graph, NodeId};
///
/// let g = Graph::path(4);
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.is_connected());
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: EdgeSet,
    adj: Vec<Vec<NodeId>>,
}

impl Graph {
    /// The empty graph `(V, ∅)` on `n` nodes — the paper's `G_0`.
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            edges: EdgeSet::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph on `n` nodes from an edge iterator.
    ///
    /// Duplicate edges are deduplicated. This is the bulk path: one sort
    /// over the edge list, exact-capacity adjacency rows, and a single
    /// bitmap allocation — no per-edge shifting.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn from_edges<I: IntoIterator<Item = Edge>>(n: usize, edges: I) -> Self {
        let mut list: Vec<Edge> = edges.into_iter().collect();
        list.sort_unstable();
        list.dedup();
        let mut deg = vec![0usize; n];
        for e in &list {
            assert!(e.hi().index() < n, "edge {e} out of range for n = {n}");
            deg[e.lo().index()] += 1;
            deg[e.hi().index()] += 1;
        }
        let mut adj: Vec<Vec<NodeId>> = deg.iter().map(|&d| Vec::with_capacity(d)).collect();
        // `list` is sorted by (lo, hi), so for each endpoint the opposite
        // ends arrive in increasing order: every row comes out sorted.
        for e in &list {
            adj[e.lo().index()].push(e.hi());
            adj[e.hi().index()].push(e.lo());
        }
        Graph {
            n,
            edges: EdgeSet::from_sorted_vec(list),
            adj,
        }
    }

    /// The path `v0 – v1 – … – v(n-1)`.
    pub fn path(n: usize) -> Self {
        Graph::from_edges(
            n,
            (1..n).map(|i| Edge::new(NodeId::new(i as u32 - 1), NodeId::new(i as u32))),
        )
    }

    /// The cycle on `n ≥ 3` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 nodes, got {n}");
        let mut g = Graph::path(n);
        g.insert_edge(Edge::new(NodeId::new(0), NodeId::new(n as u32 - 1)));
        g
    }

    /// The star with center `v0`.
    pub fn star(n: usize) -> Self {
        Graph::from_edges(
            n,
            (1..n).map(|i| Edge::new(NodeId::new(0), NodeId::new(i as u32))),
        )
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.insert_edge(Edge::new(NodeId::new(u as u32), NodeId::new(v as u32)));
            }
        }
        g
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges `m_r = |E_r|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge set `E_r`.
    #[inline]
    pub fn edges(&self) -> &EdgeSet {
        &self.edges
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.edges.contains(Edge::new(u, v))
    }

    /// The neighbors of `v`, sorted by node ID.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// The degree of `v` in this round.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Iterates over all node IDs.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        NodeId::all(self.n)
    }

    /// Inserts an edge, keeping adjacency sorted. Returns `true` if new.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn insert_edge(&mut self, e: Edge) -> bool {
        assert!(
            e.hi().index() < self.n,
            "edge {e} out of range for n = {}",
            self.n
        );
        if !self.edges.insert(e) {
            return false;
        }
        let (u, v) = e.endpoints();
        let au = &mut self.adj[u.index()];
        if let Err(pos) = au.binary_search(&v) {
            au.insert(pos, v);
        }
        let av = &mut self.adj[v.index()];
        if let Err(pos) = av.binary_search(&u) {
            av.insert(pos, u);
        }
        true
    }

    /// Removes an edge. Returns `true` if it was present.
    pub fn remove_edge(&mut self, e: Edge) -> bool {
        if !self.edges.remove(e) {
            return false;
        }
        let (u, v) = e.endpoints();
        if let Ok(pos) = self.adj[u.index()].binary_search(&v) {
            self.adj[u.index()].remove(pos);
        }
        if let Ok(pos) = self.adj[v.index()].binary_search(&u) {
            self.adj[v.index()].remove(pos);
        }
        true
    }

    /// Whether the graph is connected (the model requires every `G_r`,
    /// `r ≥ 1`, to be connected).
    ///
    /// The empty-vertex-set graph and the single-node graph are connected.
    pub fn is_connected(&self) -> bool {
        self.component_structure().component_count() == 1 || self.n <= 1
    }

    /// Like [`Graph::is_connected`], but reuses the caller's union–find
    /// buffer instead of allocating — the per-round fast path.
    pub fn is_connected_with(&self, uf: &mut UnionFind) -> bool {
        self.component_structure_into(uf);
        uf.component_count() == 1 || self.n <= 1
    }

    /// Union–find over the graph's edges; exposes components.
    pub fn component_structure(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.n);
        self.component_structure_into(&mut uf);
        uf
    }

    /// Rebuilds `uf` (resetting it) as the union–find over this graph's
    /// edges, reusing its buffers.
    pub fn component_structure_into(&self, uf: &mut UnionFind) {
        uf.reset(self.n);
        for &e in self.edges.as_slice() {
            uf.union(e.lo().index(), e.hi().index());
        }
    }

    /// Applies a round delta in place: removes `removed`, then inserts
    /// `inserted`. Returns `(actually_inserted, actually_removed)` counts.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the delta is inconsistent with the
    /// current edge set — an inserted edge already present or a removed
    /// edge absent — since that indicates a corrupted delta.
    pub fn apply_delta(&mut self, inserted: &[Edge], removed: &[Edge]) -> (usize, usize) {
        let mut rm = 0;
        for &e in removed {
            let did = self.remove_edge(e);
            debug_assert!(did, "delta inconsistent: removes absent edge {e}");
            rm += did as usize;
        }
        let mut ins = 0;
        for &e in inserted {
            let did = self.insert_edge(e);
            debug_assert!(did, "delta inconsistent: inserts duplicate edge {e}");
            ins += did as usize;
        }
        (ins, rm)
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        if self.n == 0 {
            return 0;
        }
        self.component_structure().component_count()
    }

    /// Breadth-first distances from `src`; `None` for unreachable nodes.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.n];
        dist[src.index()] = Some(0);
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].expect("queued nodes have distances");
            for &w in self.neighbors(u) {
                if dist[w.index()].is_none() {
                    dist[w.index()] = Some(du + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The diameter (longest shortest path); `None` if disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for v in self.nodes() {
            let dist = self.bfs_distances(v);
            for d in dist {
                best = best.max(d?);
            }
        }
        Some(best)
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.edges.len())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.is_connected());
        assert_eq!(g.component_count(), 5);
    }

    #[test]
    fn single_node_graph_is_connected() {
        assert!(Graph::empty(1).is_connected());
        assert!(Graph::empty(0).is_connected());
    }

    #[test]
    fn path_shape() {
        let g = Graph::path(5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
        assert_eq!(g.degree(nid(0)), 1);
        assert_eq!(g.degree(nid(2)), 2);
        assert_eq!(g.diameter(), Some(4));
    }

    #[test]
    fn cycle_shape() {
        let g = Graph::cycle(6);
        assert_eq!(g.edge_count(), 6);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.diameter(), Some(3));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        let _ = Graph::cycle(2);
    }

    #[test]
    fn star_shape() {
        let g = Graph::star(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(nid(0)), 6);
        assert_eq!(g.degree(nid(3)), 1);
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn complete_shape() {
        let g = Graph::complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.diameter(), Some(1));
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn insert_remove_keeps_adjacency_sorted_and_consistent() {
        let mut g = Graph::empty(4);
        assert!(g.insert_edge(Edge::new(nid(2), nid(0))));
        assert!(g.insert_edge(Edge::new(nid(0), nid(3))));
        assert!(!g.insert_edge(Edge::new(nid(3), nid(0))));
        assert_eq!(g.neighbors(nid(0)), &[nid(2), nid(3)]);
        assert!(g.has_edge(nid(0), nid(2)));
        assert!(g.remove_edge(Edge::new(nid(0), nid(2))));
        assert!(!g.remove_edge(Edge::new(nid(0), nid(2))));
        assert_eq!(g.neighbors(nid(0)), &[nid(3)]);
        assert_eq!(g.neighbors(nid(2)), &[] as &[NodeId]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::empty(3);
        g.insert_edge(Edge::new(nid(1), nid(3)));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::path(4);
        let d = g.bfs_distances(nid(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = Graph::from_edges(4, [Edge::new(nid(0), nid(1))]);
        let d = g.bfs_distances(nid(0));
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn has_edge_rejects_self_pair() {
        let g = Graph::path(3);
        assert!(!g.has_edge(nid(1), nid(1)));
    }

    #[test]
    fn component_count_of_two_islands() {
        let g = Graph::from_edges(5, [Edge::new(nid(0), nid(1)), Edge::new(nid(2), nid(3))]);
        assert_eq!(g.component_count(), 3); // {0,1}, {2,3}, {4}
    }
}
