//! Equivalence of the delta-applied data plane with naive rebuilds.
//!
//! The overhaul's safety net: random update sequences driven through the
//! in-place [`GraphUpdate`] path must produce snapshots, adjacency, meters,
//! and connectivity verdicts identical to rebuilding every round's graph
//! from its edge list from scratch.

use dynspread_graph::dynamic::{GraphUpdate, RoundDelta};
use dynspread_graph::generators::Topology;
use dynspread_graph::{DynamicGraph, Edge, Graph, NodeId, UnionFind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reference model: the set of edges as a plain sorted vector.
fn naive_graph(n: usize, edges: &[Edge]) -> Graph {
    let mut g = Graph::empty(n);
    for &e in edges {
        g.insert_edge(e);
    }
    g
}

fn assert_same_graph(a: &Graph, b: &Graph) {
    assert_eq!(a, b);
    assert_eq!(a.edge_count(), b.edge_count());
    for v in a.nodes() {
        assert_eq!(a.neighbors(v), b.neighbors(v), "adjacency differs at {v}");
        assert_eq!(a.degree(v), b.degree(v));
    }
    assert_eq!(a.is_connected(), b.is_connected());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random per-round edge multisets: the delta-applied path must track a
    /// from-scratch rebuild exactly, round by round.
    #[test]
    fn delta_path_matches_naive_rebuild(
        n in 2usize..24,
        rounds in prop::collection::vec(
            prop::collection::vec((0u32..24, 0u32..24), 0..40),
            1..12,
        ),
        use_delta in prop::bool::ANY,
    ) {
        let mut dg = DynamicGraph::with_history(n);
        let mut prev_edges: Vec<Edge> = Vec::new();
        let mut naive_snapshots = vec![Graph::empty(n)];
        for raw in &rounds {
            let mut edges: Vec<Edge> = raw
                .iter()
                .filter(|(u, v)| u % n as u32 != v % n as u32)
                .map(|(u, v)| Edge::new(NodeId::new(u % n as u32), NodeId::new(v % n as u32)))
                .collect();
            edges.sort_unstable();
            edges.dedup();
            let next = naive_graph(n, &edges);
            if use_delta {
                // Exercise the in-place Delta path with an explicit diff.
                let inserted: Vec<Edge> =
                    edges.iter().filter(|e| !prev_edges.contains(e)).copied().collect();
                let removed: Vec<Edge> =
                    prev_edges.iter().filter(|e| !edges.contains(e)).copied().collect();
                if inserted.is_empty() && removed.is_empty() {
                    dg.apply(GraphUpdate::Unchanged);
                } else {
                    dg.apply(GraphUpdate::Delta(RoundDelta { inserted, removed }));
                }
            } else {
                dg.apply(GraphUpdate::Full(next.clone()));
            }
            assert_same_graph(dg.current(), &next);
            naive_snapshots.push(next);
            prev_edges = edges;
        }
        // Delta-replayed history reconstructs every snapshot.
        for (r, want) in naive_snapshots.iter().enumerate() {
            let got = dg.snapshot_at(r as u64).expect("history retained");
            assert_same_graph(&got, want);
        }
    }

    /// `advance` (Full) and explicit deltas account the topology meter
    /// identically over generated topology schedules.
    #[test]
    fn full_and_delta_paths_agree_on_meter(
        n in 3usize..20,
        seed in 0u64..500,
        steps in 1usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule: Vec<Graph> = (0..steps)
            .map(|_| {
                match rng.gen_range(0..3u32) {
                    0 => Topology::RandomTree.sample(n, &mut rng),
                    1 => Topology::SparseConnected(1.5).sample(n, &mut rng),
                    _ => Topology::Gnp(0.2).sample(n, &mut rng),
                }
            })
            .collect();
        let mut full = DynamicGraph::new(n);
        let mut delta = DynamicGraph::new(n);
        for g in &schedule {
            full.advance(g.clone());
            let inserted: Vec<Edge> =
                g.edges().difference(delta.current().edges()).collect();
            let removed: Vec<Edge> =
                delta.current().edges().difference(g.edges()).collect();
            delta.apply(GraphUpdate::Delta(RoundDelta { inserted, removed }));
            assert_same_graph(full.current(), delta.current());
            assert_eq!(full.meter(), delta.meter());
            assert_eq!(full.last_delta(), delta.last_delta());
        }
    }

    /// The reusable union–find connectivity check agrees with the
    /// allocating one across arbitrary graphs, including reuse across
    /// graphs of different node counts.
    #[test]
    fn reused_union_find_matches_fresh(
        sizes in prop::collection::vec(1usize..30, 1..8),
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut uf = UnionFind::new(0);
        for n in sizes {
            let g = if n >= 3 && rng.gen_bool(0.7) {
                Topology::SparseConnected(1.3).sample(n, &mut rng)
            } else {
                // Possibly disconnected: random edge subset.
                let mut g = Graph::empty(n);
                for _ in 0..n {
                    let u = rng.gen_range(0..n as u32);
                    let v = rng.gen_range(0..n as u32);
                    if u != v {
                        g.insert_edge(Edge::new(NodeId::new(u), NodeId::new(v)));
                    }
                }
                g
            };
            assert_eq!(g.is_connected_with(&mut uf), g.is_connected());
        }
    }
}
