//! Property-based tests of the dynamic-graph substrate.

use dynspread_graph::connectivity::{bridges, connect_components};
use dynspread_graph::dynamic::{topological_changes, GraphUpdate, RoundDelta};
use dynspread_graph::generators::Topology;
use dynspread_graph::stability::{check_schedule, StabilityEnforcer};
use dynspread_graph::{DynamicGraph, Edge, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Path),
        Just(Topology::Cycle),
        Just(Topology::Star),
        Just(Topology::RandomTree),
        (0.05f64..0.5).prop_map(Topology::Gnp),
        (1.0f64..3.0).prop_map(Topology::SparseConnected),
        (2usize..5).prop_map(Topology::NearRegular),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_generator_yields_connected_graphs(
        topology in topology_strategy(),
        n in 3usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology.sample(n, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn adjacency_and_edge_set_agree(
        topology in topology_strategy(),
        n in 3usize..25,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology.sample(n, &mut rng);
        // Sum of degrees = 2·|E|, and neighbors mirror has_edge.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        for v in g.nodes() {
            for &w in g.neighbors(v) {
                prop_assert!(g.has_edge(v, w));
                prop_assert!(g.neighbors(w).contains(&v));
            }
        }
    }

    #[test]
    fn union_find_components_match_bfs(
        topology in topology_strategy(),
        n in 3usize..25,
        seed in 0u64..1000,
        drop in 0usize..10,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = topology.sample(n, &mut rng);
        // Drop some edges so we exercise multi-component cases.
        let edges: Vec<Edge> = g.edges().iter().collect();
        for e in edges.iter().take(drop) {
            g.remove_edge(*e);
        }
        // BFS-derived component count.
        let mut seen = vec![false; n];
        let mut bfs_components = 0;
        for v in 0..n {
            if !seen[v] {
                bfs_components += 1;
                let dist = g.bfs_distances(NodeId::new(v as u32));
                for (i, d) in dist.iter().enumerate() {
                    if d.is_some() {
                        seen[i] = true;
                    }
                }
            }
        }
        prop_assert_eq!(g.component_count(), bfs_components);
    }

    #[test]
    fn connect_components_always_connects(
        n in 2usize..30,
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..40),
        seed in 0u64..1000,
    ) {
        let mut g = Graph::empty(n);
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                g.insert_edge(Edge::new(NodeId::new(u), NodeId::new(v)));
            }
        }
        let before_components = g.component_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let added = connect_components(&mut g, &mut rng);
        prop_assert!(g.is_connected());
        prop_assert_eq!(added.len(), before_components.saturating_sub(1));
    }

    #[test]
    fn removing_a_non_bridge_preserves_component_count(
        topology in topology_strategy(),
        n in 4usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = topology.sample(n, &mut rng);
        let bridge_set: std::collections::BTreeSet<Edge> = bridges(&g).into_iter().collect();
        let components = g.component_count();
        for e in g.edges().iter() {
            let mut h = g.clone();
            h.remove_edge(e);
            if bridge_set.contains(&e) {
                prop_assert_eq!(h.component_count(), components + 1);
            } else {
                prop_assert_eq!(h.component_count(), components);
            }
        }
    }

    #[test]
    fn enforcer_output_is_sigma_stable_and_supersets_proposal_minus_old(
        sigma in 1u64..5,
        n in 3usize..15,
        seeds in prop::collection::vec(0u64..1000, 3..20),
    ) {
        let mut enforcer = StabilityEnforcer::new(sigma);
        let mut schedule = Vec::new();
        for seed in seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let proposal = Topology::Gnp(0.3).sample(n, &mut rng);
            let clamped = enforcer.clamp(proposal.clone());
            // Clamping only adds edges.
            for e in proposal.edges().iter() {
                prop_assert!(clamped.edges().contains(e));
            }
            schedule.push(clamped);
        }
        prop_assert!(check_schedule(sigma, &schedule).is_ok());
    }

    /// CSR equivalence: random delta sequences applied to the CSR-backed
    /// `DynamicGraph` must agree with a naive `BTreeSet`-of-edges model on
    /// `neighbors`, `degree`, `has_edge`, and connectivity at every round.
    #[test]
    fn csr_delta_application_matches_btreeset_model(
        n in 4usize..28,
        steps in prop::collection::vec((0u64..10_000, 0usize..10, 0usize..6), 1..12),
    ) {
        let mut dg = DynamicGraph::new(n);
        let mut model: BTreeSet<Edge> = BTreeSet::new();
        for (seed, ins_draws, rm_draws) in steps {
            let mut rng = StdRng::seed_from_u64(seed);
            // Removals: sampled from the model's current edges.
            let current: Vec<Edge> = model.iter().copied().collect();
            let mut removed: BTreeSet<Edge> = BTreeSet::new();
            if !current.is_empty() {
                for _ in 0..rm_draws {
                    removed.insert(current[rng.gen_range(0..current.len())]);
                }
            }
            // Insertions: sampled from the complement (disjoint from
            // `removed` by construction, as the delta contract requires).
            let mut inserted: BTreeSet<Edge> = BTreeSet::new();
            for _ in 0..ins_draws {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v {
                    let e = Edge::new(NodeId::new(u), NodeId::new(v));
                    if !model.contains(&e) {
                        inserted.insert(e);
                    }
                }
            }
            for &e in &removed {
                model.remove(&e);
            }
            for &e in &inserted {
                model.insert(e);
            }
            dg.apply(GraphUpdate::Delta(RoundDelta {
                inserted: inserted.into_iter().collect(),
                removed: removed.into_iter().collect(),
            }));

            let g = dg.current();
            prop_assert_eq!(g.edge_count(), model.len());
            for u in 0..n as u32 {
                let uid = NodeId::new(u);
                let mut expect: Vec<NodeId> = model
                    .iter()
                    .filter(|e| e.touches(uid))
                    .map(|e| e.other(uid))
                    .collect();
                expect.sort_unstable();
                prop_assert_eq!(g.neighbors(uid), expect.as_slice(), "row {}", uid);
                prop_assert_eq!(g.degree(uid), expect.len());
                for v in (u + 1)..n as u32 {
                    let vid = NodeId::new(v);
                    prop_assert_eq!(
                        g.has_edge(uid, vid),
                        model.contains(&Edge::new(uid, vid))
                    );
                }
            }
            // Connectivity vs a BFS over the model's adjacency.
            let mut seen = vec![false; n];
            let mut stack = vec![NodeId::new(0)];
            seen[0] = true;
            let mut reached = 1;
            while let Some(u) = stack.pop() {
                for e in model.iter().filter(|e| e.touches(u)) {
                    let w = e.other(u);
                    if !seen[w.index()] {
                        seen[w.index()] = true;
                        reached += 1;
                        stack.push(w);
                    }
                }
            }
            prop_assert_eq!(g.is_connected(), reached == n || n <= 1);
        }
    }

    #[test]
    fn online_and_offline_tc_agree(
        n in 2usize..15,
        seeds in prop::collection::vec(0u64..1000, 1..15),
    ) {
        let mut dg = DynamicGraph::new(n);
        let mut schedule = Vec::new();
        for seed in seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = Topology::RandomTree.sample(n, &mut rng);
            dg.advance(g.clone());
            schedule.push(g);
        }
        prop_assert_eq!(dg.topological_changes(), topological_changes(n, &schedule));
        prop_assert!(dg.meter().deletions <= dg.meter().insertions);
    }
}
