//! Progress (token-learning) curve analysis.
//!
//! The Section 2 lower bound is a statement about *progress per round*:
//! the adversary caps token learnings at `O(log n)` per round. These
//! helpers turn the tracker's per-round learning counts into the
//! quantities the experiments report.

/// Cumulative learning curve: entry `r` is the total learnings in rounds
/// `1..=r+1`.
pub fn cumulative(learnings_per_round: &[u64]) -> Vec<u64> {
    let mut total = 0u64;
    learnings_per_round
        .iter()
        .map(|&x| {
            total += x;
            total
        })
        .collect()
}

/// The maximum learnings in any single round.
pub fn max_per_round(learnings_per_round: &[u64]) -> u64 {
    learnings_per_round.iter().copied().max().unwrap_or(0)
}

/// The first round (1-based) at which the cumulative learnings reach
/// `target`, if ever.
pub fn round_reaching(learnings_per_round: &[u64], target: u64) -> Option<u64> {
    let mut total = 0u64;
    for (i, &x) in learnings_per_round.iter().enumerate() {
        total += x;
        if total >= target {
            return Some(i as u64 + 1);
        }
    }
    None
}

/// Fraction of rounds with zero learnings (the adversary's "stall rate").
pub fn stall_fraction(learnings_per_round: &[u64]) -> f64 {
    if learnings_per_round.is_empty() {
        return 0.0;
    }
    learnings_per_round.iter().filter(|&&x| x == 0).count() as f64
        / learnings_per_round.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_sums() {
        assert_eq!(cumulative(&[1, 0, 2, 3]), vec![1, 1, 3, 6]);
        assert!(cumulative(&[]).is_empty());
    }

    #[test]
    fn max_per_round_handles_empty() {
        assert_eq!(max_per_round(&[]), 0);
        assert_eq!(max_per_round(&[2, 7, 3]), 7);
    }

    #[test]
    fn round_reaching_finds_first_crossing() {
        assert_eq!(round_reaching(&[1, 0, 2, 3], 3), Some(3));
        assert_eq!(round_reaching(&[1, 0, 2, 3], 1), Some(1));
        assert_eq!(round_reaching(&[1, 0, 2, 3], 7), None);
        assert_eq!(round_reaching(&[5], 0), Some(1));
    }

    #[test]
    fn stall_fraction_counts_zero_rounds() {
        assert_eq!(stall_fraction(&[0, 1, 0, 0]), 0.75);
        assert_eq!(stall_fraction(&[]), 0.0);
        assert_eq!(stall_fraction(&[1, 1]), 0.0);
    }
}
