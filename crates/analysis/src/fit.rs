//! Least-squares fits, in particular log–log slope (power-law exponent)
//! estimation.
//!
//! The paper's bounds are asymptotic (`Θ(n²)`, `O(n^{5/2} k^{1/4})`, …).
//! The experiments sweep `n` or `k` and check the *exponent* of the
//! measured cost curve against the predicted exponent by fitting a line to
//! `(log x, log y)` pairs.

/// Result of a simple linear regression `y ≈ a + b·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit; NaN when
    /// the ys are constant).
    pub r_squared: f64,
}

/// Fits `y ≈ a + b·x` by ordinary least squares.
///
/// # Panics
///
/// Panics with fewer than two points or when all xs coincide.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "xs and ys must pair up");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "xs must not all coincide");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        f64::NAN
    };
    LinearFit {
        intercept,
        slope,
        r_squared,
    }
}

/// Fits a power law `y ≈ C·x^e` by regressing `ln y` on `ln x`; returns
/// the exponent estimate and fit quality.
///
/// # Panics
///
/// Panics if any coordinate is non-positive, or on fewer than two points.
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "power-law fit needs positive data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [5.0, 7.0, 9.0, 11.0];
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r_squared_below_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.1, 3.9, 6.2, 7.8, 10.1];
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 0.1);
        assert!(fit.r_squared > 0.99 && fit.r_squared < 1.0);
    }

    #[test]
    fn quadratic_power_law_exponent() {
        let xs: Vec<f64> = (1..=6).map(|i| i as f64 * 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let fit = power_law_fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-9, "exponent {}", fit.slope);
        assert!((fit.intercept - 3.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn fractional_exponent_recovered() {
        let xs: Vec<f64> = vec![16.0, 64.0, 256.0, 1024.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.powf(0.75)).collect();
        let fit = power_law_fit(&xs, &ys);
        assert!((fit.slope - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_panics() {
        linear_fit(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn degenerate_xs_panic() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn power_law_rejects_nonpositive() {
        power_law_fit(&[1.0, 0.0], &[1.0, 2.0]);
    }
}
