//! ASCII tables and CSV output for experiment results.
//!
//! The benchmark harness prints the paper's tables as aligned ASCII (so a
//! terminal run reads like the paper) and optionally writes CSV for
//! plotting.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use dynspread_analysis::table::Table;
///
/// let mut t = Table::new(&["n", "messages"]);
/// t.row(&["16", "1234"]);
/// t.row(&["32", "5678"]);
/// let s = t.render();
/// assert!(s.contains("n"));
/// assert!(s.contains("5678"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-ish; cells containing commas or
    /// quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Formats a float compactly for table cells (`1234.5` → `"1234.5"`,
/// `0.000123` → `"1.23e-4"`).
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 && v.abs() < 1e7 {
        let s = format!("{v:.2}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["x", "value"]);
        t.row(&["1", "10"]).row(&["100", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["name", "note"]);
        t.row(&["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_has_header_line() {
        let t = Table::new(&["n", "m"]);
        assert_eq!(t.to_csv(), "n,m\n");
        assert!(t.is_empty());
    }

    #[test]
    fn fmt_f64_modes() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234.5");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(0.000123), "1.230e-4");
        assert_eq!(fmt_f64(1e9), "1.000e9");
    }

    #[test]
    fn row_owned_appends() {
        let mut t = Table::new(&["a"]);
        t.row_owned(vec!["x".to_string()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }
}
