//! Terminal plots for experiment reports.
//!
//! The experiment binaries are the repository's "figures"; these helpers
//! render series (learning curves, per-round message counts) as compact
//! ASCII charts so a terminal run reads like the paper's plots.

/// Renders a series as a fixed-height ASCII column chart.
///
/// Values are binned to `width` columns (averaging within bins) and scaled
/// to `height` rows. Returns a multi-line string, top row first, with a
/// y-axis legend of the maximum value.
///
/// # Examples
///
/// ```
/// use dynspread_analysis::plot::column_chart;
///
/// let chart = column_chart(&[0.0, 1.0, 2.0, 3.0], 4, 3);
/// assert_eq!(chart.lines().count(), 4); // 3 rows + legend
/// ```
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
pub fn column_chart(values: &[f64], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "chart dimensions must be positive");
    if values.is_empty() {
        return format!("{}(empty series)\n", " ".repeat(2));
    }
    let cols = width.min(values.len());
    // Bin by averaging.
    let binned: Vec<f64> = (0..cols)
        .map(|c| {
            let lo = c * values.len() / cols;
            let hi = ((c + 1) * values.len() / cols).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let max = binned.iter().copied().fold(0.0f64, f64::max);
    let mut out = String::new();
    for row in (1..=height).rev() {
        let threshold = max * (row as f64 - 0.5) / height as f64;
        for &v in &binned {
            out.push(if max > 0.0 && v >= threshold {
                '█'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out.push_str(&format!("max = {max:.1}, {} points\n", values.len()));
    out
}

/// Renders a series as a single-line sparkline using eighth-block glyphs.
///
/// # Examples
///
/// ```
/// use dynspread_analysis::plot::sparkline;
///
/// let s = sparkline(&[1.0, 2.0, 4.0, 8.0]);
/// assert_eq!(s.chars().count(), 4);
/// ```
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                GLYPHS[0]
            } else {
                let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
                GLYPHS[idx]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_has_height_plus_legend_lines() {
        let chart = column_chart(&[1.0, 5.0, 3.0], 10, 5);
        assert_eq!(chart.lines().count(), 6);
        assert!(chart.contains("max = 5.0"));
    }

    #[test]
    fn chart_peak_reaches_top_row() {
        let chart = column_chart(&[0.0, 0.0, 10.0], 3, 4);
        let top = chart.lines().next().unwrap();
        assert_eq!(top.chars().filter(|&c| c == '█').count(), 1);
    }

    #[test]
    fn chart_of_zeros_is_blank() {
        let chart = column_chart(&[0.0; 5], 5, 3);
        for line in chart.lines().take(3) {
            assert!(line.chars().all(|c| c == ' '));
        }
    }

    #[test]
    fn chart_bins_long_series() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let chart = column_chart(&values, 20, 4);
        // 20 columns per row.
        assert!(chart.lines().take(4).all(|l| l.chars().count() == 20));
        assert!(chart.contains("1000 points"));
    }

    #[test]
    fn empty_series_is_handled() {
        assert!(column_chart(&[], 10, 3).contains("empty"));
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimensions_panic() {
        let _ = column_chart(&[1.0], 0, 3);
    }

    #[test]
    fn sparkline_is_monotone_in_value() {
        let s: Vec<char> = sparkline(&[0.0, 4.0, 8.0]).chars().collect();
        assert_eq!(s.len(), 3);
        assert!(s[0] < s[1] || s[0] == '▁');
        assert_eq!(s[2], '█');
    }

    #[test]
    fn sparkline_all_equal_is_full_blocks() {
        let s = sparkline(&[2.0, 2.0]);
        assert_eq!(s, "██");
    }
}
