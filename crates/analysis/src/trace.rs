//! Trace analysis: progress curves, event census, and the two-trace diff.
//!
//! Consumes the JSONL emitted by `dynspread_sim::trace::JsonlTracer`
//! (channel 1 of the observability layer). Because that stream is a pure
//! function of the run's seeds, these analyses are exactly reproducible —
//! and [`first_divergence`] turns a pair of traces into a determinism
//! debugger: the first differing line *names* the first divergent
//! scheduling decision.

use dynspread_sim::trace::TraceRecord;
use std::collections::BTreeMap;

/// Per-kind record counts of one trace, in kind-tag order.
///
/// Unparseable lines are counted under the synthetic kind `"invalid"` so
/// a corrupted trace is visible rather than silently shrunk.
pub fn kind_counts(jsonl: &str) -> BTreeMap<&'static str, u64> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for line in jsonl.lines() {
        let kind = TraceRecord::parse_line(line).map_or("invalid", |r| r.kind());
        *counts.entry(kind).or_insert(0) += 1;
    }
    counts
}

/// One point of a coverage-vs-virtual-time progress curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoveragePoint {
    /// Virtual time (round or tick) of the observation.
    pub t: u64,
    /// Cumulative token learnings up to and including `t`.
    pub learnings: u64,
}

/// The cumulative learning curve of a trace: one point per distinct
/// virtual time at which any node gained tokens (from `cov` records),
/// ascending in time. The final point's `learnings` equals the run's
/// total — the same quantity the Section 2 lower bound throttles, now
/// resolved over virtual time instead of summarized at the end.
pub fn coverage_curve(jsonl: &str) -> Vec<CoveragePoint> {
    let mut curve: Vec<CoveragePoint> = Vec::new();
    let mut total = 0u64;
    for line in jsonl.lines() {
        if let Some(TraceRecord::Coverage { t, gained, .. }) = TraceRecord::parse_line(line) {
            total += gained as u64;
            match curve.last_mut() {
                Some(last) if last.t == t => last.learnings = total,
                _ => curve.push(CoveragePoint {
                    t,
                    learnings: total,
                }),
            }
        }
    }
    curve
}

/// Where two traces first disagree (see [`first_divergence`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDivergence {
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// That line in the left trace (`None` = left ended first).
    pub left: Option<String>,
    /// That line in the right trace (`None` = right ended first).
    pub right: Option<String>,
}

impl std::fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "traces diverge at line {}:", self.line)?;
        writeln!(f, "  left:  {}", self.left.as_deref().unwrap_or("<end>"))?;
        write!(f, "  right: {}", self.right.as_deref().unwrap_or("<end>"))
    }
}

/// Compares two traces line by line and reports the first divergence, or
/// `None` when they are byte-identical. Two same-seed traces that
/// diverge expose a determinism violation; the returned line pinpoints
/// the first scheduling decision that differed, which is usually within
/// a few events of the root cause.
pub fn first_divergence(left: &str, right: &str) -> Option<TraceDivergence> {
    let mut l = left.lines();
    let mut r = right.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (l.next(), r.next()) {
            (None, None) => return None,
            (a, b) if a == b => {}
            (a, b) => {
                return Some(TraceDivergence {
                    line,
                    left: a.map(str::to_owned),
                    right: b.map(str::to_owned),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    fn sample_trace() -> String {
        let records = [
            TraceRecord::Round {
                r: 1,
                inserted: 3,
                removed: 0,
            },
            TraceRecord::Send {
                t: 1,
                from: 0,
                to: 1,
            },
            TraceRecord::Delivered {
                t: 1,
                from: 0,
                to: 1,
            },
            TraceRecord::Coverage {
                t: 1,
                node: 1,
                gained: 1,
                known: 2,
            },
            TraceRecord::Round {
                r: 2,
                inserted: 0,
                removed: 0,
            },
            TraceRecord::Coverage {
                t: 2,
                node: 2,
                gained: 2,
                known: 2,
            },
            TraceRecord::Coverage {
                t: 2,
                node: 3,
                gained: 1,
                known: 1,
            },
        ];
        let mut out = String::new();
        for r in &records {
            r.write_jsonl(&mut out);
        }
        out
    }

    #[test]
    fn kind_counts_census_the_trace() {
        let counts = kind_counts(&sample_trace());
        assert_eq!(counts["round"], 2);
        assert_eq!(counts["send"], 1);
        assert_eq!(counts["deliver"], 1);
        assert_eq!(counts["cov"], 3);
        assert!(!counts.contains_key("invalid"));
    }

    #[test]
    fn kind_counts_flag_garbage_lines() {
        let mut trace = sample_trace();
        let _ = writeln!(trace, "not json at all");
        assert_eq!(kind_counts(&trace)["invalid"], 1);
    }

    #[test]
    fn coverage_curve_accumulates_and_merges_same_time_points() {
        let curve = coverage_curve(&sample_trace());
        assert_eq!(
            curve,
            vec![
                CoveragePoint { t: 1, learnings: 1 },
                CoveragePoint { t: 2, learnings: 4 },
            ]
        );
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let trace = sample_trace();
        assert_eq!(first_divergence(&trace, &trace), None);
    }

    #[test]
    fn divergence_reports_the_first_differing_line() {
        let left = sample_trace();
        let right = left.replacen("\"from\":0,\"to\":1", "\"from\":0,\"to\":2", 1);
        let div = first_divergence(&left, &right).expect("traces differ");
        assert_eq!(div.line, 2, "first line is the round record");
        assert!(div.left.as_deref().unwrap().contains("\"to\":1"));
        assert!(div.right.as_deref().unwrap().contains("\"to\":2"));
        assert!(div.to_string().contains("diverge at line 2"));
    }

    #[test]
    fn truncation_is_a_divergence() {
        let left = sample_trace();
        let shorter: String = left.lines().take(3).map(|l| format!("{l}\n")).collect();
        let div = first_divergence(&left, &shorter).expect("lengths differ");
        assert_eq!(div.line, 4);
        assert_eq!(div.right, None, "right trace ended first");
    }
}
