//! Adversary-competitive message-complexity accounting (Definition 1.3).
//!
//! An algorithm has *α-adversary-competitive message complexity `M`* if in
//! every execution, `total messages ≤ M + α · TC(E)`. Experimentally, we
//! compute the *residual* `total − α·TC` per run and compare it against a
//! candidate bound function `M(n, k, s)` — e.g. `c(n² + nk)` for
//! Theorem 3.1 or `c(n²s + nk)` for Theorem 3.5.

use dynspread_sim::RunReport;

/// One run's adversary-competitive accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompetitiveRecord {
    /// Total messages of the run.
    pub total_messages: u64,
    /// The run's `TC(E)`.
    pub tc: u64,
    /// `total − α·TC`.
    pub residual: f64,
    /// The candidate bound `M(n, k, s)` evaluated for the run.
    pub bound: f64,
    /// `residual / bound` — at most the hidden constant if the theorem
    /// holds.
    pub ratio: f64,
}

/// Evaluates Definition 1.3 for a set of runs against a candidate bound.
///
/// `bound` receives `(n, k)` from each report; fold `s` into the closure
/// if needed.
pub fn competitive_records<F: Fn(&RunReport) -> f64>(
    reports: &[RunReport],
    alpha: f64,
    bound: F,
) -> Vec<CompetitiveRecord> {
    reports
        .iter()
        .map(|r| {
            let residual = r.competitive_residual(alpha);
            let b = bound(r);
            CompetitiveRecord {
                total_messages: r.total_messages,
                tc: r.tc(),
                residual,
                bound: b,
                ratio: residual / b,
            }
        })
        .collect()
}

/// The worst (largest) residual/bound ratio over a set of runs — the
/// empirical hidden constant.
pub fn worst_ratio(records: &[CompetitiveRecord]) -> f64 {
    records
        .iter()
        .map(|r| r.ratio)
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The Theorem 3.1 bound `n² + nk` for a report.
pub fn single_source_bound(r: &RunReport) -> f64 {
    (r.n * r.n + r.n * r.k) as f64
}

/// The Theorem 3.5 bound `n²s + nk` for a report, with `s` supplied by the
/// experiment (the report doesn't carry it).
pub fn multi_source_bound(s: usize) -> impl Fn(&RunReport) -> f64 {
    move |r| (r.n * r.n * s + r.n * r.k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::TopologyMeter;
    use dynspread_sim::message::MessageClass;
    use dynspread_sim::meter::MessageMeter;

    fn report(n: usize, k: usize, msgs: u64, tc: u64) -> RunReport {
        let mut meter = MessageMeter::new();
        meter.begin_round(1);
        for _ in 0..msgs {
            meter.record_unicast(MessageClass::Token);
        }
        RunReport::from_meters(
            "a",
            "b",
            n,
            k,
            1,
            true,
            &meter,
            TopologyMeter {
                insertions: tc,
                deletions: 0,
            },
            0,
        )
    }

    #[test]
    fn residual_subtracts_alpha_tc() {
        let r = report(4, 2, 100, 30);
        let recs = competitive_records(&[r], 1.0, single_source_bound);
        assert_eq!(recs[0].residual, 70.0);
        assert_eq!(recs[0].bound, 24.0);
        assert!((recs[0].ratio - 70.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_plain_message_complexity() {
        let r = report(4, 2, 100, 30);
        let recs = competitive_records(&[r], 0.0, single_source_bound);
        assert_eq!(recs[0].residual, 100.0);
    }

    #[test]
    fn worst_ratio_selects_maximum() {
        let rs = vec![report(4, 2, 10, 0), report(4, 2, 50, 0)];
        let recs = competitive_records(&rs, 1.0, single_source_bound);
        assert!((worst_ratio(&recs) - 50.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn multi_source_bound_includes_s() {
        let r = report(10, 5, 0, 0);
        let b = multi_source_bound(3);
        assert_eq!(b(&r), (10 * 10 * 3 + 10 * 5) as f64);
    }
}
