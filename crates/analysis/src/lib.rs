//! # dynspread-analysis — metrics and reporting
//!
//! Analysis utilities consumed by the benchmark harness:
//!
//! * [`stats`] — summary statistics over repeated runs (mean, stddev,
//!   approximate 95% confidence intervals, median).
//! * [`fit`] — least-squares fits; [`fit::power_law_fit`] estimates the
//!   exponent of a measured cost curve on a log–log scale, which is how
//!   the experiments compare measured scaling against the paper's
//!   asymptotic bounds.
//! * [`competitive`] — Definition 1.3 accounting: residuals
//!   `M − α·TC(E)` against candidate bounds like `c(n² + nk)`
//!   (Theorem 3.1) and `c(n²s + nk)` (Theorem 3.5).
//! * [`progress`] — per-round token-learning curves (the quantity the
//!   Section 2 lower bound throttles).
//! * [`table`] — aligned ASCII tables and CSV output, used to regenerate
//!   the paper's Table 1 and the per-theorem experiment reports.
//! * [`trace`] — deterministic-trace analysis: per-kind event census,
//!   coverage-vs-virtual-time progress curves, and a two-trace diff
//!   whose first divergent line localizes determinism violations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod competitive;
pub mod fit;
pub mod plot;
pub mod progress;
pub mod stats;
pub mod table;
pub mod trace;

pub use competitive::{competitive_records, worst_ratio, CompetitiveRecord};
pub use fit::{linear_fit, power_law_fit, LinearFit};
pub use stats::Summary;
pub use table::Table;
pub use trace::{coverage_curve, first_divergence, kind_counts, TraceDivergence};
