//! Summary statistics for repeated experiment runs.

/// Summary of a sample of f64 observations.
///
/// # Examples
///
/// ```
/// use dynspread_analysis::stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// assert_eq!(s.n, 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; empty input yields all-NaN moments with `n = 0`.
    pub fn from_samples(xs: &[f64]) -> Summary {
        let n = xs.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: f64::NAN,
                stddev: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of an approximate 95% confidence interval for the mean
    /// (normal approximation: `1.96 · s/√n`; 0 for `n < 2`).
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} ± {:.2} (n={}, min {:.2}, max {:.2})",
            self.mean,
            self.ci95_half_width(),
            self.n,
            self.min,
            self.max
        )
    }
}

/// The median of a sample (average of middle two for even length).
///
/// # Panics
///
/// Panics on empty input.
pub fn median(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// The `p`-th percentile (0–100) by linear interpolation between order
/// statistics.
///
/// # Panics
///
/// Panics on empty input or `p` outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "p must be in [0, 100]");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    if v.len() == 1 {
        return v[0];
    }
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] + (v[hi] - v[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::from_samples(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_of_empty_sample() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }

    #[test]
    fn summary_single_sample_has_zero_spread() {
        let s = Summary::from_samples(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn stddev_matches_hand_computation() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
        let s = Summary::from_samples(&[2., 4., 4., 4., 5., 5., 7., 9.]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        median(&[]);
    }

    #[test]
    fn percentile_endpoints_and_interpolation() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        // p50 matches median on odd samples.
        let odd = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&odd, 50.0), median(&odd));
        // Single sample: every percentile is that value.
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn percentile_rejects_bad_p() {
        percentile(&[1.0], 150.0);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_samples(&[1.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("2.00"));
        assert!(text.contains("n=2"));
    }
}
