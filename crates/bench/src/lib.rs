//! # dynspread-bench — benchmark and experiment harness
//!
//! Shared runners used by the experiment binaries (`src/bin/*.rs`) and the
//! criterion benches (`benches/*.rs`). Every binary regenerates one of the
//! paper's quantitative artifacts; the mapping lives in DESIGN.md
//! (per-experiment index) and results are recorded in EXPERIMENTS.md.
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 (amortized cost of the oblivious algorithm vs k) |
//! | `fig1_free_edges` | Figure 1 / Lemma 2.2 (free-edge graph structure) |
//! | `exp_local_broadcast_lb` | Theorem 2.3 (local-broadcast lower bound) |
//! | `exp_single_source` | Theorems 3.1 and 3.4 |
//! | `exp_multi_source` | Theorems 3.5 and 3.6 |
//! | `exp_oblivious` | Theorem 3.8 |
//! | `exp_random_walk` | Lemma 3.7 |
//! | `exp_stability_ablation` | σ-stability ablation (design choice of §3.1) |
//! | `exp_priority_ablation` | request-priority ablation (Algorithm 1) |
//!
//! Two binaries step *outside* the paper's lossless synchronous model via
//! the `dynspread-runtime` synchronizer (the round-based protocols run
//! unchanged; every send is routed through a seeded link model):
//!
//! | binary | scenario |
//! |---|---|
//! | `exp_lossy_links` | message-drop sweep: handshake degradation vs drop probability |
//! | `exp_latency_sweep` | delivery-delay sweep: round stretch vs fixed latency + jitter |
//! | `exp_async_vs_sync` | retransmission premium of the async ports vs the lossless sync reference |
//! | `exp_scale` | n ∈ {1k, 2k, 4k, 8k} grid over flooding / single-source / multi-source / async single-source / async oblivious; writes `BENCH_runtime.json` |
//! | `exp_oblivious_async` | drop × jitter sweep of the asynchronous two-phase oblivious pipeline |
//! | `exp_profile` | wall-clock phase attribution of the engines (self-profiler); writes `BENCH_profile.json` |
//! | `exp_sessions` | multi-session service sweep: arrival traces replayed through `Scenario::run_sessions`, per-session latency percentiles + aggregate envelope load; writes `BENCH_sessions.json` |
//! | `bench_check` | CI perf-regression gate: fresh `exp_scale --smoke` + `bench_core` vs the committed baselines (see [`check`]) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod check;
pub mod parallel;
pub mod perf;

pub use parallel::{derive_seed, par_map, par_runs, worker_count};

use dynspread_core::flooding::PhasedFlooding;
use dynspread_core::multi_source::MultiSourceNode;
use dynspread_core::single_source::{RequestPolicy, SingleSourceNode, SsMsg};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::{NodeId, Round};
use dynspread_sim::adversary::{BroadcastAdversary, UnicastAdversary};
use dynspread_sim::sim::{BroadcastSim, SimConfig, UnicastSim};
use dynspread_sim::token::TokenAssignment;
use dynspread_sim::RunReport;

/// The default 3-edge-stable oblivious adversary used across experiments:
/// a fresh random tree every 3 rounds.
pub fn default_adversary(seed: u64) -> PeriodicRewiring {
    PeriodicRewiring::new(Topology::RandomTree, 3, seed)
}

/// Runs Single-Source-Unicast (Algorithm 1) to completion.
pub fn run_single_source<A: UnicastAdversary<SsMsg>>(
    n: usize,
    k: usize,
    adversary: A,
    max_rounds: Round,
) -> RunReport {
    run_single_source_with_policy(n, k, adversary, max_rounds, RequestPolicy::Prioritized)
}

/// Runs Single-Source-Unicast with an explicit request policy.
pub fn run_single_source_with_policy<A: UnicastAdversary<SsMsg>>(
    n: usize,
    k: usize,
    adversary: A,
    max_rounds: Round,
    policy: RequestPolicy,
) -> RunReport {
    let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
    let nodes = NodeId::all(n)
        .map(|v| SingleSourceNode::with_policy(v, &assignment, policy))
        .collect();
    let mut sim = UnicastSim::new(
        match policy {
            RequestPolicy::Prioritized => "single-source-unicast",
            RequestPolicy::Unprioritized => "single-source-unicast(unprioritized)",
        },
        nodes,
        adversary,
        &assignment,
        SimConfig::with_max_rounds(max_rounds),
    );
    sim.run_to_completion()
}

/// Runs Single-Source-Unicast with wall-clock self-profiling enabled —
/// the report carries [`RunReport::profile`] phase attribution. Used by
/// `exp_profile`.
pub fn run_single_source_profiled<A: UnicastAdversary<SsMsg>>(
    n: usize,
    k: usize,
    adversary: A,
    max_rounds: Round,
) -> RunReport {
    let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
    let nodes = NodeId::all(n)
        .map(|v| SingleSourceNode::with_policy(v, &assignment, RequestPolicy::Prioritized))
        .collect();
    let mut sim = UnicastSim::new(
        "single-source-unicast",
        nodes,
        adversary,
        &assignment,
        SimConfig::with_max_rounds(max_rounds),
    );
    sim.enable_profiling();
    sim.run_to_completion()
}

/// Runs Multi-Source-Unicast with wall-clock self-profiling enabled
/// (see [`run_single_source_profiled`]).
pub fn run_multi_source_profiled<A>(
    assignment: &TokenAssignment,
    adversary: A,
    max_rounds: Round,
) -> RunReport
where
    A: UnicastAdversary<dynspread_core::multi_source::MsMsg>,
{
    let (nodes, _map) = MultiSourceNode::nodes(assignment);
    let mut sim = UnicastSim::new(
        "multi-source-unicast",
        nodes,
        adversary,
        assignment,
        SimConfig::with_max_rounds(max_rounds),
    );
    sim.enable_profiling();
    sim.run_to_completion()
}

/// Runs phased flooding with wall-clock self-profiling enabled
/// (see [`run_single_source_profiled`]).
pub fn run_phased_flooding_profiled<A>(
    assignment: &TokenAssignment,
    adversary: A,
    cfg: SimConfig,
) -> RunReport
where
    A: BroadcastAdversary<dynspread_core::flooding::BcastMsg>,
{
    let nodes = PhasedFlooding::nodes(assignment);
    let mut sim = BroadcastSim::new("phased-flooding", nodes, adversary, assignment, cfg);
    sim.enable_profiling();
    sim.run_to_completion()
}

/// Runs Multi-Source-Unicast to completion on an arbitrary single-holder
/// assignment.
pub fn run_multi_source<A>(
    assignment: &TokenAssignment,
    adversary: A,
    max_rounds: Round,
) -> RunReport
where
    A: UnicastAdversary<dynspread_core::multi_source::MsMsg>,
{
    let (nodes, _map) = MultiSourceNode::nodes(assignment);
    let mut sim = UnicastSim::new(
        "multi-source-unicast",
        nodes,
        adversary,
        assignment,
        SimConfig::with_max_rounds(max_rounds),
    );
    sim.run_to_completion()
}

/// Runs phased flooding (the naive local-broadcast algorithm) to
/// completion.
pub fn run_phased_flooding<A>(
    assignment: &TokenAssignment,
    adversary: A,
    max_rounds: Round,
) -> RunReport
where
    A: BroadcastAdversary<dynspread_core::flooding::BcastMsg>,
{
    run_phased_flooding_cfg(
        assignment,
        adversary,
        SimConfig::with_max_rounds(max_rounds),
    )
}

/// Runs phased flooding with an explicit engine configuration — the scale
/// grid uses this to enable sampled metering
/// (`SimConfig::meter_sampling`), which keeps the `n = 8192` flooding
/// cell from being dominated by ~200 M per-message meter updates.
pub fn run_phased_flooding_cfg<A>(
    assignment: &TokenAssignment,
    adversary: A,
    cfg: SimConfig,
) -> RunReport
where
    A: BroadcastAdversary<dynspread_core::flooding::BcastMsg>,
{
    let nodes = PhasedFlooding::nodes(assignment);
    let mut sim = BroadcastSim::new("phased-flooding", nodes, adversary, assignment, cfg);
    sim.run_to_completion()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_source_runner_completes() {
        let report = run_single_source(8, 4, default_adversary(1), 100_000);
        assert!(report.completed);
        assert_eq!(report.n, 8);
        assert_eq!(report.k, 4);
    }

    #[test]
    fn multi_source_runner_completes() {
        let a = TokenAssignment::round_robin_sources(8, 8, 4);
        let report = run_multi_source(&a, default_adversary(2), 200_000);
        assert!(report.completed);
    }

    #[test]
    fn phased_flooding_runner_completes() {
        let a = TokenAssignment::round_robin_sources(8, 4, 4);
        let report = run_phased_flooding(&a, default_adversary(3), 1_000);
        assert!(report.completed);
    }

    #[test]
    fn unprioritized_policy_also_completes_under_benign_dynamics() {
        let report = run_single_source_with_policy(
            8,
            4,
            default_adversary(4),
            200_000,
            RequestPolicy::Unprioritized,
        );
        assert!(report.completed);
    }
}
