//! **Beyond the paper's model** — the asynchronous port of Algorithm 1
//! against its synchronous reference.
//!
//! Each grid cell runs the same single-source instance twice: the
//! round-based `SingleSourceNode` under `UnicastSim` (the paper's
//! synchronous, lossless model) and the `AsyncSingleSource` event port
//! under `EventSim` with a configurable drop probability and jitter. At
//! drop 0 the async port must complete with zero retransmission overhead
//! in messages-per-learning terms comparable to the reference; as the
//! drop probability grows, explicit retransmission buys completion the
//! synchronous algorithm cannot achieve at all over a lossy channel
//! (its one-shot completeness announcements are never re-sent).
//!
//! The async arm reports through `EventSim::run_report`, so the table's
//! `unrt` column shows sends dropped at the source because the adversary
//! removed the edge mid-flight — an asynchronous hazard the synchronous
//! engines turn into a panic instead of a statistic.
//!
//! Sweeps drop probability × adversary × seed; every cell is an
//! independent seeded run fanned through `par_map` (parallel output is
//! byte-identical to serial — set `DYNSPREAD_THREADS=1` to check).

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{derive_seed, par_map};
use dynspread_core::single_source::SingleSourceNode;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::{ChurnAdversary, PeriodicRewiring};
use dynspread_graph::NodeId;
use dynspread_runtime::engine::{EventSim, StopReason};
use dynspread_runtime::link::{DropLink, LinkModelExt};
use dynspread_runtime::protocol::{AsyncConfig, AsyncSingleSource};
use dynspread_sim::sim::{SimConfig, UnicastSim};
use dynspread_sim::token::TokenAssignment;
use dynspread_sim::RunReport;

struct Cell {
    sync: RunReport,
    async_report: RunReport,
    final_time: u64,
    events: u64,
    stopped: StopReason,
}

fn run_cell(n: usize, k: usize, drop_p: f64, arm: u8, seed: u64) -> Cell {
    let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
    macro_rules! cell {
        ($mk_adv:expr) => {{
            let mut sync_sim = UnicastSim::new(
                "single-source-unicast",
                SingleSourceNode::nodes(&assignment),
                $mk_adv,
                &assignment,
                SimConfig::with_max_rounds(2_000_000),
            );
            let sync = sync_sim.run_to_completion();
            let mut async_sim = EventSim::with_tracking(
                AsyncSingleSource::nodes(&assignment, AsyncConfig::default()),
                $mk_adv,
                DropLink::new(drop_p).with_jitter(2),
                2,
                derive_seed(seed, 0xEE),
                &assignment,
            );
            let event_report = async_sim.run(4_000_000);
            Cell {
                sync,
                async_report: async_sim.run_report("async-single-source"),
                final_time: event_report.final_time,
                events: event_report.events,
                stopped: event_report.stopped,
            }
        }};
    }
    match arm {
        0 => cell!(PeriodicRewiring::new(Topology::RandomTree, 3, seed)),
        _ => cell!(ChurnAdversary::new(
            Topology::SparseConnected(2.0),
            2,
            3,
            seed
        )),
    }
}

fn main() {
    let base_seed = 47u64;
    let (n, k) = (24, 16);
    let seeds_per_cell = 3usize;
    println!("Async vs sync: Algorithm 1 and its EventProtocol port (n={n}, k={k})");
    println!("async arm: explicit retransmission + acked announcements over drop+jitter(2)\n");

    let drops = [0.0, 0.15, 0.3];
    let arms: [(u8, &str); 2] = [(0, "rewire(tree,ρ=3)"), (1, "churn(c=2,σ=3)")];
    let jobs: Vec<(f64, u8, &str, usize)> = drops
        .iter()
        .flat_map(|&p| {
            arms.iter()
                .flat_map(move |&(arm, name)| (0..seeds_per_cell).map(move |s| (p, arm, name, s)))
        })
        .collect();
    let runs = par_map(jobs, |(p, arm, name, s)| {
        let seed = derive_seed(base_seed, ((arm as u64) << 32) | s as u64);
        (p, name, s, run_cell(n, k, p, arm, seed))
    });

    let mut table = Table::new(&[
        "adversary",
        "drop p",
        "seed#",
        "async done",
        "vtime",
        "epochs",
        "events",
        "async msgs",
        "unrt",
        "sync rounds",
        "sync msgs",
        "msg ×",
    ]);
    for (p, name, s, cell) in &runs {
        assert!(cell.sync.completed, "sync reference failed: {}", cell.sync);
        assert_eq!(
            cell.stopped,
            StopReason::Complete,
            "async {name} p={p} seed#{s} did not complete: {}",
            cell.async_report
        );
        assert_eq!(cell.async_report.learnings, cell.sync.learnings);
        table.row_owned(vec![
            name.to_string(),
            fmt_f64(*p),
            s.to_string(),
            cell.async_report.completed.to_string(),
            cell.final_time.to_string(),
            cell.async_report.rounds.to_string(),
            cell.events.to_string(),
            cell.async_report.total_messages.to_string(),
            cell.async_report.unroutable.to_string(),
            cell.sync.rounds.to_string(),
            cell.sync.total_messages.to_string(),
            fmt_f64(cell.async_report.total_messages as f64 / cell.sync.total_messages as f64),
        ]);
    }
    println!("{}", table.render());

    println!("reading the table:");
    println!("  vtime/epochs — async virtual completion time and elapsed topology epochs;");
    println!("  unrt — async sends dropped at the source (edge churned away mid-exchange);");
    println!("  msg × — async transmissions over the lossless synchronous reference:");
    println!("  the retransmission premium, which grows with drop p while completion");
    println!("  (impossible for the sync algorithm under loss) is preserved.");
}
