//! `exp_byzantine` — Byzantine degradation of the async protocol ports.
//!
//! Sweeps the malicious fraction ∈ {0, 5%, 15%, 30%} × misbehavior kind
//! (false claims, forged transfers, seq replay, dropped acks, mutated
//! tokens) × all three async protocols, each cell one seeded run through
//! the `dynspread_runtime::byzantine` drivers: wrapped nodes, recorded
//! transcripts, post-run audit. Tabulated per cell:
//!
//! * **done** — whether the run still reached full dissemination;
//! * **coverage** — mean fraction of the token universe known by the
//!   *honest* nodes at the end (the degradation metric);
//! * **viol / nodes** — violations proven by the auditor and distinct
//!   nodes indicted (the accountability metric);
//! * **inj** — misbehaving actions actually injected, so detection can
//!   be read against opportunity.
//!
//! The binary asserts auditor soundness on every cell (only planted
//! nodes indicted; zero verdicts at fraction 0) — these are the repo's
//! first Byzantine-resilience numbers, and they double as an end-to-end
//! soundness sweep.
//!
//! Usage:
//!   `cargo run --release -p dynspread-bench --bin exp_byzantine [--smoke] [OUT.json]`
//!
//! `--smoke` runs the fraction ∈ {0, 15%} columns only — the CI guard.
//! Results go to `BENCH_byzantine.json` (default); `bench_check
//! --byzantine` gates fresh runs against the committed baseline (wall
//! times on matched cells, plus coverage/violations must not regress).

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{derive_seed, par_map};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};
use dynspread_graph::{Graph, NodeId};
use dynspread_runtime::byzantine::{
    run_byzantine_multi_source, run_byzantine_oblivious, run_byzantine_single_source,
    MisbehaviorKind, MisbehaviorPlan,
};
use dynspread_runtime::link::{DropLink, LinkModelExt};
use dynspread_runtime::protocol::{AsyncConfig, AsyncObliviousConfig};
use dynspread_sim::token::TokenAssignment;
use std::io::Write as _;
use std::time::Instant;

const PROTOCOLS: [&str; 3] = [
    "async-single-source",
    "async-multi-source",
    "async-oblivious",
];

/// Nodes per cell — large enough that 5% rounds to ≥ 1 malicious node.
const N: usize = 24;

struct Cell {
    protocol: &'static str,
    fraction_pct: u32,
    kind: &'static str,
    byzantine_nodes: usize,
    completed: bool,
    coverage: f64,
    violations: u64,
    verdicts: u64,
    injected: u64,
    wall_ns: u64,
}

fn plan_for(fraction: f64, kind: Option<MisbehaviorKind>, seed: u64) -> MisbehaviorPlan {
    match kind {
        None => MisbehaviorPlan::honest(N),
        Some(k) => MisbehaviorPlan::uniform(N, fraction, k, seed),
    }
}

fn run_cell(
    protocol: &'static str,
    fraction: f64,
    kind: Option<MisbehaviorKind>,
    seed: u64,
) -> Cell {
    let start = Instant::now();
    let plan = plan_for(fraction, kind, derive_seed(seed, 0xB12));
    let link = || DropLink::new(0.1).with_jitter(1);
    let (completed, coverage, violations, verdicts, injected) = match protocol {
        "async-single-source" => {
            let a = TokenAssignment::single_source(N, 8, NodeId::new(0));
            let out = run_byzantine_single_source(
                &a,
                StaticAdversary::new(Graph::complete(N)),
                link(),
                2,
                seed,
                AsyncConfig::default(),
                &plan,
                150_000,
            );
            for e in &out.evidence {
                assert!(plan.is_malicious(e.culprit), "honest node indicted: {e:?}");
            }
            (
                out.completed,
                out.honest_coverage,
                out.report.violations_detected,
                out.report.evidence_verdicts,
                out.injected,
            )
        }
        "async-multi-source" => {
            let a = TokenAssignment::round_robin_sources(N, 12, 4);
            let out = run_byzantine_multi_source(
                &a,
                StaticAdversary::new(Graph::complete(N)),
                link(),
                2,
                seed,
                AsyncConfig::default(),
                &plan,
                150_000,
            );
            for e in &out.evidence {
                assert!(plan.is_malicious(e.culprit), "honest node indicted: {e:?}");
            }
            (
                out.completed,
                out.honest_coverage,
                out.report.violations_detected,
                out.report.evidence_verdicts,
                out.injected,
            )
        }
        "async-oblivious" => {
            let a = TokenAssignment::n_gossip(N);
            let cfg = AsyncObliviousConfig {
                seed,
                source_threshold: Some(1.0),
                center_probability: Some(0.2),
                phase1_deadline: 20_000,
                phase1_max_time: 50_000,
                phase2_max_time: 300_000,
                ..AsyncObliviousConfig::default()
            };
            let out = run_byzantine_oblivious(
                &a,
                StaticAdversary::new(Graph::complete(N)),
                PeriodicRewiring::new(Topology::RandomTree, 3, derive_seed(seed, 0xB13)),
                link(),
                link(),
                &cfg,
                &plan,
            );
            for e in &out.evidence {
                assert!(plan.is_malicious(e.culprit), "honest node indicted: {e:?}");
            }
            (
                out.completed,
                out.honest_coverage,
                out.report.violations_detected,
                out.report.evidence_verdicts,
                out.injected,
            )
        }
        other => unreachable!("unknown protocol arm {other}"),
    };
    if plan.byzantine_nodes() == 0 {
        assert_eq!(violations, 0, "{protocol}: honest run with verdicts");
        assert!(completed, "{protocol}: honest run must complete");
    }
    Cell {
        protocol,
        fraction_pct: (fraction * 100.0).round() as u32,
        kind: kind.map_or("none", MisbehaviorKind::label),
        byzantine_nodes: plan.byzantine_nodes(),
        completed,
        coverage,
        violations,
        verdicts,
        injected,
        wall_ns: start.elapsed().as_nanos() as u64,
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_byzantine.json");
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let fractions: &[f64] = if smoke {
        &[0.0, 0.15]
    } else {
        &[0.0, 0.05, 0.15, 0.30]
    };
    let base_seed = 20_260_807u64;
    println!(
        "Byzantine grid: n = {N}, fraction ∈ {fractions:?} × kind × {PROTOCOLS:?}{}",
        if smoke { " (smoke)" } else { "" }
    );

    // Fraction 0 collapses to one honest row per protocol.
    let mut jobs: Vec<(&'static str, f64, Option<MisbehaviorKind>, u64)> = Vec::new();
    for (pi, &p) in PROTOCOLS.iter().enumerate() {
        for &frac in fractions {
            let kinds: Vec<Option<MisbehaviorKind>> = if frac == 0.0 {
                vec![None]
            } else {
                MisbehaviorKind::ALL.iter().copied().map(Some).collect()
            };
            // Seed from the fraction's *value*, not its grid index: the
            // smoke grid is a subset of the full grid's fractions, and
            // bench_check matches cells on (protocol, fraction, kind) —
            // an index-derived seed would hand the "same" cell different
            // executions in smoke vs full runs, making their wall times
            // incomparable.
            let pct = (frac * 100.0) as u64;
            for (ki, kind) in kinds.into_iter().enumerate() {
                let seed = derive_seed(base_seed, (pi as u64 * 101 + pct) * 16 + ki as u64);
                jobs.push((p, frac, kind, seed));
            }
        }
    }
    let cells = par_map(jobs, |(p, frac, kind, seed)| run_cell(p, frac, kind, seed));

    let mut table = Table::new(&[
        "protocol", "byz %", "kind", "byz", "done", "coverage", "viol", "nodes", "inj", "wall ms",
    ]);
    let mut json_cells = Vec::new();
    for c in &cells {
        table.row_owned(vec![
            c.protocol.to_string(),
            c.fraction_pct.to_string(),
            c.kind.to_string(),
            c.byzantine_nodes.to_string(),
            c.completed.to_string(),
            fmt_f64(c.coverage),
            c.violations.to_string(),
            c.verdicts.to_string(),
            c.injected.to_string(),
            fmt_f64(c.wall_ns as f64 / 1e6),
        ]);
        json_cells.push(format!(
            "    {{\"protocol\": \"{}\", \"fraction_pct\": {}, \"kind\": \"{}\", \"byzantine_nodes\": {}, \"completed\": {}, \"coverage\": {:.4}, \"violations\": {}, \"verdicts\": {}, \"injected\": {}, \"wall_ms\": {:.1}}}",
            c.protocol,
            c.fraction_pct,
            c.kind,
            c.byzantine_nodes,
            c.completed,
            c.coverage,
            c.violations,
            c.verdicts,
            c.injected,
            c.wall_ns as f64 / 1e6,
        ));
    }
    println!("{}", table.render());
    println!("coverage = mean honest-node fraction of the token universe;");
    println!("viol/nodes = auditor verdicts (soundness asserted per cell).");

    let json = format!(
        "{{\n  \"n\": {N},\n  \"smoke\": {smoke},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_byzantine.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_byzantine.json");
    eprintln!("wrote {out_path}");
}
