//! `bench_check` — the CI perf-regression gate.
//!
//! Compares freshly measured bench artifacts against the committed
//! baselines and fails (exit 1) if any gated metric regressed beyond the
//! tolerance, printing the full delta table either way. CI runs it after
//! regenerating the fresh side:
//!
//! ```text
//! cargo run --release -p dynspread-bench --bin exp_scale -- --smoke BENCH_runtime.fresh.json
//! cargo run --release -p dynspread-bench --bin bench_core -- BENCH_core.fresh.json
//! cargo run --release -p dynspread-bench --bin bench_check -- \
//!     --tolerance 0.30 --min-wall-ms 40 \
//!     --runtime BENCH_runtime.json BENCH_runtime.fresh.json \
//!     --core BENCH_core.json BENCH_core.fresh.json \
//!     --byzantine BENCH_byzantine.json BENCH_byzantine.fresh.json \
//!     --faults BENCH_faults.json BENCH_faults.fresh.json \
//!     --sessions BENCH_sessions.json BENCH_sessions.fresh.json
//! ```
//!
//! The default 30% tolerance absorbs shared-runner noise, and grid
//! cells whose baseline wall time is under `--min-wall-ms` (default
//! 40 ms) are not gated at all — a single sub-50 ms run jitters past
//! any tolerance on a shared runner. The `core` microbench family has
//! no wall floor to hide behind (each metric is a sub-millisecond
//! median, and CI measures `bench_core` straight after the all-cores
//! `exp_scale` step, which shifts the whole distribution), so those
//! metrics are gated at **double** the tolerance instead of being
//! dropped. What the gate catches is the
//! step-function regressions (an accidental O(n) in the event loop, a
//! lost batching path) that used to be able to land silently because
//! nothing ever *read* the perf artifacts in CI. When a legitimate
//! change moves a metric past the tolerance, refresh the committed
//! baselines in the same PR — the gate then documents the new level
//! instead of blocking it.
//!
//! `--byzantine`, `--faults`, and `--sessions` join the gate like the
//! other artifacts — committed `BENCH_byzantine.json` /
//! `BENCH_faults.json` / `BENCH_sessions.json` baselines exist, so a
//! missing baseline file is an error, and the comparisons use the same
//! tolerance and wall floor (the session grid's *virtual* metrics —
//! latency percentiles and envelope load — are deterministic and gated
//! with no floor at all).

use dynspread_bench::check::{
    byzantine_deltas, core_deltas, faults_deltas, runtime_deltas, sessions_deltas, Delta, Json,
};

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_check: cannot read {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("bench_check: cannot parse {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.30f64;
    // Cells whose baseline wall time is under this are not gated: a
    // single sub-50 ms run jitters past any tolerance on a shared
    // runner. --runtime arguments are gathered first so the floor flag
    // works in any position.
    let mut min_wall_ms = 40.0f64;
    let mut runtime_files: Vec<(String, String)> = Vec::new();
    let mut byzantine_files: Vec<(String, String)> = Vec::new();
    let mut faults_files: Vec<(String, String)> = Vec::new();
    let mut sessions_files: Vec<(String, String)> = Vec::new();
    let mut deltas: Vec<Delta> = Vec::new();
    let mut compared_files = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                tolerance = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance needs a number, e.g. 0.30");
                i += 2;
            }
            "--min-wall-ms" => {
                min_wall_ms = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--min-wall-ms needs a number, e.g. 40");
                i += 2;
            }
            "--runtime" => {
                runtime_files.push((args[i + 1].clone(), args[i + 2].clone()));
                compared_files += 1;
                i += 3;
            }
            "--byzantine" => {
                byzantine_files.push((args[i + 1].clone(), args[i + 2].clone()));
                i += 3;
            }
            "--faults" => {
                faults_files.push((args[i + 1].clone(), args[i + 2].clone()));
                i += 3;
            }
            "--sessions" => {
                sessions_files.push((args[i + 1].clone(), args[i + 2].clone()));
                i += 3;
            }
            "--core" => {
                let (base, fresh) = (&args[i + 1], &args[i + 2]);
                deltas.extend(core_deltas(&load(base), &load(fresh)));
                compared_files += 1;
                i += 3;
            }
            other => panic!("bench_check: unknown argument {other}"),
        }
    }
    for (base, fresh) in &runtime_files {
        deltas.extend(runtime_deltas(&load(base), &load(fresh), min_wall_ms));
    }
    for (base, fresh) in &byzantine_files {
        deltas.extend(byzantine_deltas(&load(base), &load(fresh), min_wall_ms));
        compared_files += 1;
    }
    for (base, fresh) in &faults_files {
        deltas.extend(faults_deltas(&load(base), &load(fresh), min_wall_ms));
        compared_files += 1;
    }
    for (base, fresh) in &sessions_files {
        deltas.extend(sessions_deltas(&load(base), &load(fresh), min_wall_ms));
        compared_files += 1;
    }
    assert!(
        compared_files > 0,
        "bench_check: nothing to compare; pass --runtime and/or --core BASE FRESH"
    );
    assert!(
        !deltas.is_empty(),
        "bench_check: no comparable metrics found — baseline and fresh artifacts share no cells"
    );

    // The core microbenches are sub-millisecond medians with no wall
    // floor to exempt them, and CI runs bench_core right after the
    // all-cores exp_scale smoke — residual load shifts their whole
    // sample distribution by far more than grid-cell jitter. Double
    // tolerance keeps them gated (a real step-function regression is
    // 5-10x) without crying wolf.
    let tol_for =
        |d: &Delta| -> f64 { tolerance * if d.key.starts_with("core ") { 2.0 } else { 1.0 } };
    println!(
        "{:<44} {:>12} {:>12} {:>9}   (tolerance +{:.0}%, core +{:.0}%)",
        "metric",
        "baseline",
        "fresh",
        "delta",
        tolerance * 100.0,
        tolerance * 200.0
    );
    println!("{}", "-".repeat(84));
    let mut regressions = Vec::new();
    for d in &deltas {
        let verdict = if d.regressed(tol_for(d)) {
            regressions.push(d.key.clone());
            "  REGRESSED"
        } else {
            ""
        };
        println!("{d}{verdict}");
    }
    println!("{}", "-".repeat(84));
    if regressions.is_empty() {
        println!(
            "bench_check: OK — {} metrics within tolerance of baseline",
            deltas.len()
        );
    } else {
        eprintln!(
            "bench_check: FAILED — {}/{} metrics regressed beyond tolerance:",
            regressions.len(),
            deltas.len()
        );
        for key in &regressions {
            eprintln!("  {key}");
        }
        eprintln!("(legitimate change? refresh the committed baselines in this PR)");
        std::process::exit(1);
    }
}
