//! **Section 1.2 contrast** — token forwarding vs network coding.
//!
//! The paper: "the k-gossip problem on the adversarial model of \[32\] can be
//! solved using network coding in O(n + k) rounds assuming the token sizes
//! are sufficiently large", while token-forwarding needs `Ω(nk/log n)`
//! rounds (and phased flooding pays `O(nk)`).
//!
//! This binary runs n-gossip (k = n) with phased flooding and with RLNC
//! gossip over the same rewired-tree dynamics and compares rounds and
//! messages. Expected shape: RLNC rounds grow ~linearly in n (`O(n + k)`);
//! flooding rounds grow ~quadratically (`Θ(nk) = Θ(n²)`).

use dynspread_analysis::fit::power_law_fit;
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::par_map;
use dynspread_core::flooding::PhasedFlooding;
use dynspread_core::network_coding::RlncNode;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_sim::sim::{BroadcastSim, SimConfig};
use dynspread_sim::token::TokenAssignment;

fn main() {
    let seed = 53u64;
    println!("Token forwarding vs network coding (n-gossip, rewired random trees)\n");

    let ns = [8usize, 12, 16, 24, 32];
    let mut table = Table::new(&[
        "n (=k)",
        "flooding rounds",
        "RLNC rounds",
        "flooding msgs",
        "RLNC msgs",
        "round speedup",
    ]);
    let mut xs = Vec::new();
    let mut flood_rounds = Vec::new();
    let mut rlnc_rounds = Vec::new();
    // Both arms per n are independent seeded runs: fan across cores.
    let runs = par_map(ns.into_iter().enumerate().collect(), |(i, n)| {
        let assignment = TokenAssignment::n_gossip(n);
        let mut flood_sim = BroadcastSim::new(
            "phased-flooding",
            PhasedFlooding::nodes(&assignment),
            PeriodicRewiring::new(Topology::RandomTree, 1, seed + i as u64),
            &assignment,
            SimConfig::with_max_rounds((n * n) as u64),
        );
        let flood = flood_sim.run_to_completion();

        let mut rlnc_sim = BroadcastSim::new(
            "rlnc-gossip",
            RlncNode::nodes(&assignment, seed + 100 + i as u64),
            PeriodicRewiring::new(Topology::RandomTree, 1, seed + i as u64),
            &assignment,
            SimConfig::with_max_rounds((n * n) as u64),
        );
        (n, flood, rlnc_sim.run_to_completion())
    });
    for (n, flood, rlnc) in runs {
        assert!(flood.completed, "flooding n={n}");
        assert!(rlnc.completed, "rlnc n={n}");

        table.row_owned(vec![
            n.to_string(),
            flood.rounds.to_string(),
            rlnc.rounds.to_string(),
            flood.total_messages.to_string(),
            rlnc.total_messages.to_string(),
            fmt_f64(flood.rounds as f64 / rlnc.rounds as f64),
        ]);
        xs.push(n as f64);
        flood_rounds.push(flood.rounds as f64);
        rlnc_rounds.push(rlnc.rounds as f64);
    }
    println!("{}", table.render());
    let ff = power_law_fit(&xs, &flood_rounds);
    let rf = power_law_fit(&xs, &rlnc_rounds);
    println!(
        "rounds scaling: flooding ~ n^{:.2} (R²={:.3}), RLNC ~ n^{:.2} (R²={:.3})",
        ff.slope, ff.r_squared, rf.slope, rf.r_squared
    );
    println!(
        "paper predicts: flooding Θ(nk)=Θ(n²) (exponent 2), RLNC O(n+k)=O(n) (exponent 1); \
         the coding advantage requires Ω(n log n)-bit tokens (each packet carries a k-bit header)"
    );
}
