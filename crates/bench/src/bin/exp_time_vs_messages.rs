//! **Section 1.2's time-vs-messages tradeoff** — "a message-efficient
//! algorithm can take a longer time but exchanging less total number of
//! messages, e.g., by sending messages only along a few edges and/or by
//! using silence."
//!
//! Runs naive unicast flooding (time-greedy: every node pushes tokens over
//! every edge every round) and Algorithm 1 (message-lean: silence except
//! for the request/response handshake) on identical dynamics and reports
//! the tradeoff: flooding finishes faster; Algorithm 1 sends far fewer
//! messages net of the adversary's budget.

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::par_map;
use dynspread_core::baselines::UnicastFlooding;
use dynspread_core::single_source::SingleSourceNode;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::NodeId;
use dynspread_sim::sim::{SimConfig, UnicastSim};
use dynspread_sim::token::TokenAssignment;

fn main() {
    let seed = 61u64;
    println!("Time vs messages (unicast): naive flooding vs Algorithm 1, k = 2n\n");

    let mut table = Table::new(&[
        "n",
        "algorithm",
        "rounds",
        "messages",
        "residual M−TC",
        "amortized msgs/token",
    ]);
    // Both arms of every n are independent seeded runs: fan across cores.
    let jobs: Vec<(usize, usize, bool)> = [12usize, 16, 24, 32]
        .into_iter()
        .enumerate()
        .flat_map(|(i, n)| [(i, n, true), (i, n, false)])
        .collect();
    let runs = par_map(jobs, |(i, n, flood_arm)| {
        let k = 2 * n;
        let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
        let adversary = PeriodicRewiring::new(Topology::Gnp(0.3), 3, seed + i as u64);
        let cfg = SimConfig::with_max_rounds(1_000_000);
        let report = if flood_arm {
            UnicastSim::new(
                "unicast-flooding",
                UnicastFlooding::nodes(&assignment),
                adversary,
                &assignment,
                cfg,
            )
            .run_to_completion()
        } else {
            UnicastSim::new(
                "single-source-unicast",
                SingleSourceNode::nodes(&assignment),
                adversary,
                &assignment,
                cfg,
            )
            .run_to_completion()
        };
        (n, report)
    });
    for (n, r) in &runs {
        assert!(r.completed, "n={n}: {r}");
        {
            table.row_owned(vec![
                n.to_string(),
                r.algorithm.to_string(),
                r.rounds.to_string(),
                r.total_messages.to_string(),
                fmt_f64(r.competitive_residual(1.0)),
                fmt_f64(r.amortized()),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: flooding wins on rounds (pays Θ(n²) messages/token for it); \
         Algorithm 1 wins on messages — its residual stays O(n² + nk) while flooding's \
         grows with the edge density. This is the tradeoff that motivates studying \
         message complexity separately from time complexity."
    );
}
