//! `exp_faults` — crash-recovery and partition degradation of the async
//! protocol ports.
//!
//! Sweeps crash fraction × recovery delay × partition episodes over all
//! three async protocols, each cell one seeded run through the
//! `dynspread_runtime::faults` drivers: a pure-data [`FaultPlan`], the
//! engine's crash/recovery/partition machinery, and the protocols'
//! self-healing hooks. Tabulated per cell:
//!
//! * **done** — whether the run still reached full dissemination (it
//!   must: every planted fault is crash-*recovery*, so the protocols
//!   are expected to heal);
//! * **coverage** — mean fraction of the token universe known by the
//!   nodes still up at the end (the degradation metric);
//! * **crash / recov / part** — fault events that actually fired, so
//!   degradation can be read against injected adversity.
//!
//! The binary asserts completion on every cell and exact zeros on the
//! fault-free column — a liveness sweep of the self-healing paths that
//! doubles as the perf baseline for `bench_check --faults`.
//!
//! Usage:
//!   `cargo run --release -p dynspread-bench --bin exp_faults [--smoke] [OUT.json]`
//!
//! `--smoke` runs the crash fraction ∈ {0, 20%} scenarios only — the CI
//! guard. Results go to `BENCH_faults.json` (default); `bench_check
//! --faults` gates fresh runs against the committed baseline.

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{derive_seed, par_map};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};
use dynspread_graph::{Graph, NodeId};
use dynspread_runtime::faults::{
    run_faulty_multi_source, run_faulty_oblivious, run_faulty_single_source, FaultPlan,
    RecoveryMode,
};
use dynspread_runtime::link::{DropLink, LinkModelExt};
use dynspread_runtime::protocol::{AsyncConfig, AsyncObliviousConfig};
use dynspread_sim::token::TokenAssignment;
use std::io::Write as _;
use std::time::Instant;

const PROTOCOLS: [&str; 3] = [
    "async-single-source",
    "async-multi-source",
    "async-oblivious",
];

/// Nodes per cell — large enough that 10% rounds to ≥ 2 crashed nodes.
const N: usize = 24;

/// `(crash %, recovery delay, partition episodes)` — the swept
/// scenarios. Crashes land in the first 10 ticks — before any node can
/// have collected a full token set even on the fastest (single-source,
/// complete-graph) cell — so the down, incomplete nodes hold every run
/// open until the planned recoveries fire and the counters reflect the
/// whole plan.
const SCENARIOS: [(u32, u64, u32); 5] = [
    (0, 0, 0),
    (10, 200, 0),
    (10, 200, 1),
    (20, 1000, 0),
    (20, 1000, 1),
];

struct Cell {
    protocol: &'static str,
    crash_pct: u32,
    recovery_delay: u64,
    episodes: u32,
    completed: bool,
    coverage: f64,
    crashes: u64,
    recoveries: u64,
    partitions: u64,
    wall_ns: u64,
}

fn plan_for(crash_pct: u32, recovery_delay: u64, episodes: u32, seed: u64) -> FaultPlan {
    let mut plan = if crash_pct == 0 {
        FaultPlan::none(N)
    } else {
        FaultPlan::crash_recovery(
            N,
            f64::from(crash_pct) / 100.0,
            10,
            recovery_delay,
            RecoveryMode::Amnesia,
            seed,
        )
    };
    if episodes == 1 {
        plan = plan.with_random_partition(5, 150);
    }
    plan
}

fn run_cell(protocol: &'static str, crash_pct: u32, recovery_delay: u64, episodes: u32) -> Cell {
    // Seeds derive from the scenario's *values*, not its grid index, so
    // a smoke cell is byte-identical to the same cell in the full grid
    // and their wall times stay comparable in bench_check.
    let base_seed = 20_260_807u64;
    let pi = PROTOCOLS.iter().position(|&p| p == protocol).unwrap() as u64;
    let seed = derive_seed(
        base_seed,
        pi * 1009 + u64::from(crash_pct) * 17 + recovery_delay + u64::from(episodes),
    );
    let plan = plan_for(
        crash_pct,
        recovery_delay,
        episodes,
        derive_seed(seed, 0xF17),
    );
    let link = || DropLink::new(0.1).with_jitter(1);
    let start = Instant::now();
    let (completed, coverage, crashes, recoveries, partitions) = match protocol {
        "async-single-source" => {
            let a = TokenAssignment::single_source(N, 8, NodeId::new(0));
            let out = run_faulty_single_source(
                &a,
                StaticAdversary::new(Graph::complete(N)),
                link(),
                2,
                seed,
                AsyncConfig::default(),
                &plan,
                500_000,
            );
            (
                out.completed,
                out.live_coverage,
                out.report.crashes,
                out.report.recoveries,
                out.report.partition_episodes,
            )
        }
        "async-multi-source" => {
            let a = TokenAssignment::round_robin_sources(N, 12, 4);
            let out = run_faulty_multi_source(
                &a,
                StaticAdversary::new(Graph::complete(N)),
                link(),
                2,
                seed,
                AsyncConfig::default(),
                &plan,
                500_000,
            );
            (
                out.completed,
                out.live_coverage,
                out.report.crashes,
                out.report.recoveries,
                out.report.partition_episodes,
            )
        }
        "async-oblivious" => {
            let a = TokenAssignment::n_gossip(N);
            let cfg = AsyncObliviousConfig {
                seed,
                source_threshold: Some(1.0),
                center_probability: Some(0.2),
                phase1_deadline: 20_000,
                phase1_max_time: 50_000,
                phase2_max_time: 500_000,
                ..AsyncObliviousConfig::default()
            };
            // The walk phase runs fault-free; the plan hits the spread
            // phase, where recovery resyncs pull the rejoiners back up.
            let out = run_faulty_oblivious(
                &a,
                StaticAdversary::new(Graph::complete(N)),
                PeriodicRewiring::new(Topology::RandomTree, 3, derive_seed(seed, 0xF18)),
                link(),
                link(),
                &cfg,
                &FaultPlan::none(N),
                &plan,
            );
            (
                out.completed,
                out.live_coverage,
                out.report.crashes,
                out.report.recoveries,
                out.report.partition_episodes,
            )
        }
        other => unreachable!("unknown protocol arm {other}"),
    };
    assert!(
        completed,
        "{protocol} at {crash_pct}%/{recovery_delay}/{episodes}ep did not self-heal"
    );
    if crash_pct == 0 && episodes == 0 {
        assert_eq!(crashes, 0, "{protocol}: fault-free run recorded crashes");
        assert_eq!(partitions, 0, "{protocol}: fault-free run saw a partition");
    }
    Cell {
        protocol,
        crash_pct,
        recovery_delay,
        episodes,
        completed,
        coverage,
        crashes,
        recoveries,
        partitions,
        wall_ns: start.elapsed().as_nanos() as u64,
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_faults.json");
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let scenarios: Vec<(u32, u64, u32)> = SCENARIOS
        .iter()
        .copied()
        .filter(|&(pct, _, _)| !smoke || pct == 0 || pct == 20)
        .collect();
    println!(
        "Fault grid: n = {N}, scenarios {scenarios:?} × {PROTOCOLS:?}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut jobs: Vec<(&'static str, u32, u64, u32)> = Vec::new();
    for &p in &PROTOCOLS {
        for &(pct, delay, eps) in &scenarios {
            jobs.push((p, pct, delay, eps));
        }
    }
    let cells = par_map(jobs, |(p, pct, delay, eps)| run_cell(p, pct, delay, eps));

    let mut table = Table::new(&[
        "protocol", "crash %", "delay", "part", "done", "coverage", "crash", "recov", "part",
        "wall ms",
    ]);
    let mut json_cells = Vec::new();
    for c in &cells {
        table.row_owned(vec![
            c.protocol.to_string(),
            c.crash_pct.to_string(),
            c.recovery_delay.to_string(),
            c.episodes.to_string(),
            c.completed.to_string(),
            fmt_f64(c.coverage),
            c.crashes.to_string(),
            c.recoveries.to_string(),
            c.partitions.to_string(),
            fmt_f64(c.wall_ns as f64 / 1e6),
        ]);
        json_cells.push(format!(
            "    {{\"protocol\": \"{}\", \"crash_pct\": {}, \"recovery_delay\": {}, \"episodes\": {}, \"completed\": {}, \"coverage\": {:.4}, \"crashes\": {}, \"recoveries\": {}, \"partitions\": {}, \"wall_ms\": {:.1}}}",
            c.protocol,
            c.crash_pct,
            c.recovery_delay,
            c.episodes,
            c.completed,
            c.coverage,
            c.crashes,
            c.recoveries,
            c.partitions,
            c.wall_ns as f64 / 1e6,
        ));
    }
    println!("{}", table.render());
    println!("coverage = mean live-node fraction of the token universe;");
    println!("crash/recov/part = fault events fired (completion asserted per cell).");

    let json = format!(
        "{{\n  \"n\": {N},\n  \"smoke\": {smoke},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_faults.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_faults.json");
    eprintln!("wrote {out_path}");
}
