//! **Theorem 3.8** — the oblivious two-phase algorithm:
//! `O(n^{5/2} k^{1/4} log^{5/4} n)` total messages, amortized
//! `O(n^{5/2} log^{5/4} n / k^{3/4})`.
//!
//! Sweeps `k` at fixed `n` (all nodes sources — the n-gossip-like regime
//! the paper motivates) and compares the two-phase algorithm against plain
//! Multi-Source-Unicast. Expected shape: the oblivious algorithm's
//! amortized cost falls with exponent ≈ −3/4 in `k` and undercuts plain
//! Multi-Source (whose amortized cost is Θ(n²s/k + n)) once `s` is large.

use dynspread_analysis::fit::power_law_fit;
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{par_map, run_multi_source};
use dynspread_core::oblivious::{run_oblivious_multi_source, ObliviousConfig};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_sim::message::MessageClass;
use dynspread_sim::token::TokenAssignment;

fn main() {
    let seed = 37u64;
    let n = 40usize;
    let nf = n as f64;
    println!("Theorem 3.8 reproduction: oblivious two-phase algorithm, n = {n}, s = min(k, n)");
    println!("(log factors dropped at laptop scale; see DESIGN.md)\n");

    let ks = [n / 2, n, 2 * n, 4 * n, 8 * n];
    let mut table = Table::new(&[
        "k",
        "s",
        "centers",
        "walk msgs",
        "oblivious total",
        "oblivious amortized",
        "multi-source amortized",
        "predicted n^(5/2)/k^(3/4)",
    ]);
    let mut kv = Vec::new();
    let mut av = Vec::new();
    // Both arms of every k cell are independent seeded runs: fan across
    // cores (results return in input order, so tables are unchanged).
    let runs = par_map(ks.into_iter().enumerate().collect(), |(i, k)| {
        let s = k.min(n);
        let assignment = TokenAssignment::round_robin_sources(n, k, s);
        let f = (nf.sqrt() * (k as f64).powf(0.25)).min(nf / 2.0);
        let cfg = ObliviousConfig {
            seed: seed + i as u64,
            source_threshold: Some(nf.powf(2.0 / 3.0)),
            center_probability: Some((f / nf).min(0.5)),
            degree_threshold: Some(nf / f),
            phase1_max_rounds: 300_000,
            phase2_max_rounds: 4_000_000,
        };
        let out = run_oblivious_multi_source(
            &assignment,
            PeriodicRewiring::new(Topology::Gnp(0.15), 3, seed + 100 + i as u64),
            PeriodicRewiring::new(Topology::RandomTree, 3, seed + 200 + i as u64),
            &cfg,
        );
        let ms = run_multi_source(
            &assignment,
            PeriodicRewiring::new(Topology::RandomTree, 3, seed + 300 + i as u64),
            4_000_000,
        );
        (k, s, out, ms)
    });
    for (k, s, out, ms) in runs {
        assert!(out.completed(), "k={k}: oblivious run failed");
        assert!(ms.completed, "k={k}: multi-source run failed");
        let walk_msgs = out
            .phase1
            .as_ref()
            .map_or(0, |r| r.class(MessageClass::Walk));
        table.row_owned(vec![
            k.to_string(),
            s.to_string(),
            out.centers.len().to_string(),
            walk_msgs.to_string(),
            out.total_messages().to_string(),
            fmt_f64(out.amortized()),
            fmt_f64(ms.amortized()),
            fmt_f64(nf.powf(2.5) / (k as f64).powf(0.75)),
        ]);
        kv.push(k as f64);
        av.push(out.amortized());
    }
    println!("{}", table.render());
    let fit = power_law_fit(&kv, &av);
    println!(
        "measured oblivious amortized ~ k^{:.3} (R² = {:.3}); paper predicts k^-0.75",
        fit.slope, fit.r_squared
    );
    // Every algorithm pays an additive Θ(n) floor per token (each node
    // must receive it); subtracting it isolates the f·n² + walk term whose
    // exponent the paper's k^{-3/4} describes.
    let floored: Vec<f64> = av.iter().map(|a| (a - (n as f64 - 1.0)).max(1.0)).collect();
    let ffit = power_law_fit(&kv, &floored);
    println!(
        "floor-corrected (amortized − (n−1)) ~ k^{:.3} (R² = {:.3})",
        ffit.slope, ffit.r_squared
    );
    println!(
        "expected crossover: for s = Θ(n), plain multi-source pays Θ(n²s/k + n) amortized \
         while the two-phase algorithm pays o(n²) — the oblivious column should win for large k"
    );
}
