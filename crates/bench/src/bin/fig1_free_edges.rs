//! **Figure 1 / Lemma 2.2** — structure of the free-edge graph.
//!
//! Figure 1 depicts the free-edge graph in a round with few broadcasters:
//! the silent nodes `B̄` form a clique of free edges and every broadcaster
//! in `B` hangs off `B̄` by at least one free edge, so `F(r)` is a single
//! connected component (Lemma 2.2, for `β ≤ n/(c log n)`). Lemma 2.1 says
//! that even for arbitrary (worst-case) assignments, `F(r)` has `O(log n)`
//! components.
//!
//! Lemma 2.2 quantifies over **all** token assignments, so this binary
//! samples two arms per broadcaster count `β`:
//!
//! * *random* — each broadcaster broadcasts a uniformly random known
//!   token (what a typical algorithm round looks like);
//! * *adversarial* — each broadcaster picks a distinct token of minimum
//!   coverage (`|{v : t ∈ K_v ∪ K'_v}|`), the algorithm's best attempt at
//!   creating non-free edges.
//!
//! Expected shape: `F(r)` is connected with probability 1 for small `β` in
//! both arms (Lemma 2.2); under the adversarial arm with large `β`, a few
//! components appear — but always `O(log n)` many (Lemma 2.1), which is
//! exactly the `O(log n)`-per-round progress cap behind Theorem 2.3.

use dynspread_analysis::stats::Summary;
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_core::lower_bound::{free_edge_structure, FreeEdgeStructure, KPrimeSets};
use dynspread_sim::token::{TokenId, TokenSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample_knowledge(n: usize, k: usize, density: f64, rng: &mut StdRng) -> Vec<TokenSet> {
    (0..n)
        .map(|_| {
            let mut s = TokenSet::new(k);
            for t in TokenId::all(k) {
                if rng.gen_bool(density) {
                    s.insert(t);
                }
            }
            s
        })
        .collect()
}

/// Distinct minimum-coverage tokens for the first `beta` nodes; each
/// broadcaster is seeded with its chosen token so the choice is legal.
fn adversarial_choices(
    beta: usize,
    know: &mut [TokenSet],
    kprime: &KPrimeSets,
    k: usize,
) -> Vec<Option<TokenId>> {
    let n = know.len();
    let mut coverage: Vec<(usize, TokenId)> = TokenId::all(k)
        .map(|t| {
            let cov = (0..n)
                .filter(|&v| {
                    know[v].contains(t)
                        || kprime
                            .get(dynspread_graph::NodeId::new(v as u32))
                            .contains(t)
                })
                .count();
            (cov, t)
        })
        .collect();
    coverage.sort();
    let mut choices = vec![None; n];
    for b in 0..beta {
        let (_, t) = coverage[b % coverage.len()];
        know[b].insert(t);
        choices[b] = Some(t);
    }
    choices
}

#[allow(clippy::too_many_arguments)]
fn run_arm(
    n: usize,
    k: usize,
    beta: usize,
    trials: usize,
    adversarial: bool,
    density: f64,
    rng: &mut StdRng,
) -> (f64, Summary, f64) {
    let mut connected = 0usize;
    let mut comps = Vec::new();
    let mut free = 0f64;
    for _ in 0..trials {
        let kprime = KPrimeSets::sample(n, k, density, rng);
        let mut know = sample_knowledge(n, k, density, rng);
        let choices: Vec<Option<TokenId>> = if adversarial {
            adversarial_choices(beta, &mut know, &kprime, k)
        } else {
            let mut c = vec![None; n];
            for (b, slot) in c.iter_mut().take(beta).enumerate() {
                let t = TokenId::new(rng.gen_range(0..k as u32));
                know[b].insert(t);
                *slot = Some(t);
            }
            c
        };
        let FreeEdgeStructure {
            free_edges,
            components,
            connected: is_conn,
        } = free_edge_structure(&choices, &know, &kprime);
        if is_conn {
            connected += 1;
        }
        comps.push(components as f64);
        free += free_edges as f64;
    }
    (
        connected as f64 / trials as f64,
        Summary::from_samples(&comps),
        free / trials as f64,
    )
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);
    let k = n / 2;
    let trials = 40;
    let seed = 7u64;
    println!(
        "Figure 1 / Lemma 2.2 reproduction: n = {n}, k = {k}, K' density 1/4, {trials} trials/arm"
    );
    println!(
        "n/ln(n) = {:.1}, ln(n) = {:.1}\n",
        n as f64 / (n as f64).ln(),
        (n as f64).ln()
    );

    let mut table = Table::new(&[
        "β",
        "P(conn) random",
        "comps random",
        "P(conn) adversarial",
        "comps adversarial (mean)",
        "comps adversarial (max)",
    ]);
    let mut betas = vec![];
    let mut beta = 1usize;
    while beta < n {
        betas.push(beta);
        beta *= 2;
    }
    betas.push(n);

    // Each (β, arm) cell is an independent seeded batch of trials: fan
    // across cores with a per-cell derived RNG stream.
    let jobs: Vec<(usize, bool)> = betas
        .iter()
        .flat_map(|&beta| [(beta, false), (beta, true)])
        .collect();
    let cells = dynspread_bench::par_map(jobs, |(beta, adversarial)| {
        let stream = dynspread_bench::derive_seed(seed, (beta as u64) << 1 | adversarial as u64);
        let mut rng = StdRng::seed_from_u64(stream);
        run_arm(n, k, beta, trials, adversarial, 0.25, &mut rng)
    });
    for (bi, &beta) in betas.iter().enumerate() {
        let (p_rand, c_rand, _) = cells[2 * bi];
        let (p_adv, c_adv, _) = cells[2 * bi + 1];
        table.row_owned(vec![
            beta.to_string(),
            fmt_f64(p_rand),
            fmt_f64(c_rand.mean),
            fmt_f64(p_adv),
            fmt_f64(c_adv.mean),
            fmt_f64(c_adv.max),
        ]);
    }
    println!("{}", table.render());
    println!(
        "at the paper's density 1/4, F(r) is connected for every β at this scale — \
         the adversary concedes zero potential progress in (nearly) every round, which \
         is the Theorem 2.3 mechanism. Components never exceed O(log n) (Lemma 2.1).\n"
    );

    // Density sweep: the connectivity transition of the B–B̄ attachment.
    // A broadcaster attaches to the silent clique w.p. 1 − (1−q)^(n−β)
    // where q ≈ P(token harmless) — lowering the K/K' density exposes the
    // Figure 1 structure's failure point.
    println!("density sweep (adversarial token choices):");
    let mut dtable = Table::new(&[
        "K/K' density",
        "β",
        "P(F connected)",
        "components (mean)",
        "components (max)",
        "ln n",
    ]);
    // Density × β sweep: independent cells, fanned across cores.
    let djobs: Vec<(f64, usize)> = [0.25, 0.05, 0.02]
        .iter()
        .flat_map(|&density| [4usize, n / 2, (9 * n) / 10].map(move |beta| (density, beta)))
        .collect();
    let dcells = dynspread_bench::par_map(djobs.clone(), |(density, beta)| {
        let stream = dynspread_bench::derive_seed(
            seed ^ 0xD5,
            (beta as u64) << 8 | (density * 100.0) as u64,
        );
        let mut rng = StdRng::seed_from_u64(stream);
        run_arm(n, k, beta, trials, true, density, &mut rng)
    });
    for ((density, beta), (p, c, _)) in djobs.into_iter().zip(dcells) {
        {
            dtable.row_owned(vec![
                fmt_f64(density),
                beta.to_string(),
                fmt_f64(p),
                fmt_f64(c.mean),
                fmt_f64(c.max),
                fmt_f64((n as f64).ln()),
            ]);
        }
    }
    println!("{}", dtable.render());
    println!(
        "expected shape: sparse β stays connected even at low density (Lemma 2.2's \
         regime: every broadcaster finds a free edge into the silent clique); large β \
         with low density disconnects — and the adversary then pays ℓ−1 non-free \
         edges, i.e. O(components) = O(log n) potential per round"
    );
}
