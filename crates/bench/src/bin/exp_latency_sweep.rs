//! **Beyond the paper's model** — link latency: what happens to the
//! synchronous algorithms when messages take extra rounds to arrive.
//!
//! The runtime's synchronizer keeps the paper's round structure but
//! delays every delivery by a fixed latency plus optional seeded jitter
//! (jitter also *reorders*: two messages on one link can swap arrival
//! order). Algorithm 1's handshake is latency-tolerant — each leg of
//! announce/request/response just arrives later — so rounds stretch by
//! roughly the per-leg delay while message complexity stays put.
//!
//! Sweeps latency × jitter × seed through `par_map` (deterministic:
//! parallel output is byte-identical to `DYNSPREAD_THREADS=1`).

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{derive_seed, par_map};
use dynspread_core::single_source::SingleSourceNode;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::NodeId;
use dynspread_runtime::link::{LinkModelExt, PerfectLink};
use dynspread_runtime::sync::UnicastSynchronizer;
use dynspread_sim::sim::SimConfig;
use dynspread_sim::token::TokenAssignment;
use dynspread_sim::RunReport;

fn run_latent(n: usize, k: usize, latency: u64, jitter: u64, seed: u64) -> RunReport {
    let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
    let link = PerfectLink.with_latency(latency).with_jitter(jitter);
    let mut sim = UnicastSynchronizer::new(
        "single-source-unicast",
        SingleSourceNode::nodes(&assignment),
        PeriodicRewiring::new(Topology::RandomTree, 3, seed),
        &assignment,
        SimConfig::with_max_rounds(4_000_000),
        link,
        derive_seed(seed, 0x17),
    );
    sim.run_to_completion()
}

fn main() {
    let base_seed = 31u64;
    let (n, k) = (24, 16);
    let seeds_per_cell = 3usize;
    println!("Latency sweep: Single-Source-Unicast under delayed delivery (n={n}, k={k})");
    println!("adversary: rewire(tree, ρ=3); link: fixed latency + uniform jitter\n");

    let grid: [(u64, u64); 6] = [(0, 0), (1, 0), (2, 0), (4, 0), (1, 2), (2, 4)];
    let jobs: Vec<(u64, u64, usize)> = grid
        .iter()
        .flat_map(|&(lat, jit)| (0..seeds_per_cell).map(move |s| (lat, jit, s)))
        .collect();
    let runs = par_map(jobs, |(lat, jit, s)| {
        let seed = derive_seed(base_seed, s as u64);
        (lat, jit, s, run_latent(n, k, lat, jit, seed))
    });

    let mut table = Table::new(&[
        "latency",
        "jitter",
        "seed#",
        "completed",
        "rounds",
        "stretch",
        "messages",
        "TC(E)",
        "residual",
    ]);
    // Per-seed lossless baselines: same adversary schedule, latency 0.
    let mut baseline = vec![0u64; seeds_per_cell];
    for (lat, jit, s, report) in &runs {
        if *lat == 0 && *jit == 0 {
            baseline[*s] = report.rounds;
        }
    }
    for (lat, jit, s, report) in &runs {
        assert!(report.completed, "lat={lat} jit={jit} seed#{s}: {report}");
        table.row_owned(vec![
            lat.to_string(),
            jit.to_string(),
            s.to_string(),
            report.completed.to_string(),
            report.rounds.to_string(),
            fmt_f64(report.rounds as f64 / baseline[*s].max(1) as f64),
            report.total_messages.to_string(),
            report.tc().to_string(),
            fmt_f64(report.competitive_residual(1.0)),
        ]);
    }
    println!("{}", table.render());
    println!("expected: stretch ≈ 1 + latency per handshake leg; messages barely move");
    println!("(the handshake is latency-tolerant — only round counts pay for delay).");
}
