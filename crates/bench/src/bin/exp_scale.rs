//! `exp_scale` — the data plane at `n` in the thousands.
//!
//! The paper's bounds (`O(d·k)`, `O(n·k)` rounds) only become interesting
//! to validate empirically well beyond the `n ≤ 512` the older grids run.
//! This binary sweeps `n ∈ {1024, 2048, 4096, 8192}` over five protocol
//! arms and records the per-unit costs the scale work optimizes:
//!
//! * **flooding** — phased flooding under `BroadcastSim` (the paper's
//!   synchronous local-broadcast model), metered with the deterministic
//!   ×64 sampling factor (`SimConfig::meter_sampling`) so the cell
//!   measures the data plane rather than 200 M meter updates;
//! * **single-source** — Algorithm 1 under `UnicastSim` (synchronous
//!   unicast);
//! * **multi-source** — Section 3.2.1 under `UnicastSim`, `s = 4`
//!   sources;
//! * **async-single-source** — the `AsyncSingleSource` event port under
//!   `EventSim` with a latency-1 perfect link (the event engine's
//!   calendar queue and zero-clone fan-out are on this path);
//! * **async-oblivious** — the full two-phase `run_async_oblivious`
//!   pipeline (random-walk center reduction, then `AsyncMultiSource`)
//!   with `k = 16` tokens, ~4 expected centers, and a denser
//!   `SparseConnected(8)` phase-1 topology so center hand-offs happen at
//!   tree-sparse `n`; the deadline fallback guarantees the cell
//!   terminates even when some walks don't converge.
//!
//! Every cell is one seeded end-to-end run through `par_map` (parallel
//! output is byte-identical to serial; `DYNSPREAD_THREADS=1` to check).
//! Results go to `BENCH_runtime.json` — ns/round and ns/event at each
//! `n` — alongside `BENCH_core.json`, so the perf trajectory has scale
//! points. `crates/runtime/README.md` explains how to read the file.
//!
//! Usage:
//!   `cargo run --release -p dynspread-bench --bin exp_scale [--smoke] [OUT.json]`
//!
//! `--smoke` runs only the smallest grid column (`n = 1024`) — the CI
//! guard that keeps the scale path building and running on every PR, and
//! the fresh side of the `bench_check` perf-regression gate.

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{
    default_adversary, derive_seed, par_map, run_multi_source, run_phased_flooding_cfg,
    run_single_source,
};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::NodeId;
use dynspread_runtime::engine::EventSim;
use dynspread_runtime::link::{LinkModelExt, PerfectLink};
use dynspread_runtime::protocol::{
    run_async_oblivious, AsyncConfig, AsyncObliviousConfig, AsyncSingleSource,
};
use dynspread_sim::sim::SimConfig;
use dynspread_sim::token::TokenAssignment;
use std::io::Write as _;
use std::time::Instant;

const PROTOCOLS: [&str; 5] = [
    "flooding",
    "single-source",
    "multi-source",
    "async-single-source",
    "async-oblivious",
];

/// Deterministic meter-attribution sampling for the flooding arm.
const FLOOD_METER_SAMPLING: u64 = 64;

/// Token count of the async-oblivious arm (needs enough tokens/sources
/// for the two-phase pipeline to be meaningful; recorded per cell).
const OBLIVIOUS_K: usize = 16;

struct Cell {
    protocol: &'static str,
    n: usize,
    /// Tokens the cell actually ran with (the async-oblivious arm
    /// overrides the grid default).
    k: usize,
    completed: bool,
    /// Rounds for the synchronous arms, topology epochs for the async arm.
    rounds: u64,
    /// Unit of scheduler work: metered messages for the synchronous arms,
    /// processed events (starts + deliveries + timers) for the async arm.
    events: u64,
    wall_ns: u64,
}

fn run_cell(protocol: &'static str, n: usize, k: usize, seed: u64) -> Cell {
    let max_rounds = 500_000;
    let start = Instant::now();
    // The async-oblivious arm overrides k; every cell records the k it
    // actually ran with.
    let k = if protocol == "async-oblivious" {
        OBLIVIOUS_K
    } else {
        k
    };
    let (completed, rounds, events) = match protocol {
        "flooding" => {
            let a = TokenAssignment::single_source(n, k, NodeId::new(0));
            let cfg = SimConfig {
                max_rounds,
                meter_sampling: FLOOD_METER_SAMPLING,
                ..SimConfig::default()
            };
            let r = run_phased_flooding_cfg(&a, default_adversary(seed), cfg);
            (r.completed, r.rounds, r.total_messages)
        }
        "single-source" => {
            let r = run_single_source(n, k, default_adversary(seed), max_rounds);
            (r.completed, r.rounds, r.total_messages)
        }
        "multi-source" => {
            let a = TokenAssignment::round_robin_sources(n, k, k.min(4));
            let r = run_multi_source(&a, default_adversary(seed), max_rounds);
            (r.completed, r.rounds, r.total_messages)
        }
        "async-oblivious" => {
            // Two-phase pipeline: k tokens spread over k sources, ~4
            // expected centers regardless of n, everyone high-degree
            // (γ = 1) so tokens hand off to discovered centers. The
            // deadline fallback (stranded owners become phase-2 sources)
            // bounds phase 1 even if some walks don't converge.
            let a = TokenAssignment::round_robin_sources(n, k, k);
            let cfg = AsyncObliviousConfig {
                seed: derive_seed(seed, 0x0B1),
                source_threshold: Some(1.0),
                center_probability: Some(4.0 / n as f64),
                degree_threshold: Some(1.0),
                ticks_per_round: 2,
                phase1_deadline: 2_048,
                phase1_max_time: 4_096,
                phase2_max_time: 8 * max_rounds,
                ..AsyncObliviousConfig::default()
            };
            let out = run_async_oblivious(
                &a,
                PeriodicRewiring::new(Topology::SparseConnected(8.0), 3, seed),
                default_adversary(derive_seed(seed, 0x0B2)),
                PerfectLink.with_latency(1),
                PerfectLink.with_latency(1),
                &cfg,
            );
            (out.completed, out.total_epochs(), out.total_events())
        }
        "async-single-source" => {
            let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
            let mut sim = EventSim::with_tracking(
                AsyncSingleSource::nodes(&assignment, AsyncConfig::default()),
                default_adversary(seed),
                PerfectLink.with_latency(1),
                2,
                derive_seed(seed, 0x5CA1E),
                &assignment,
            );
            let report = sim.run(8 * max_rounds);
            (
                sim.tracker().expect("tracking enabled").all_complete(),
                report.epochs,
                report.events,
            )
        }
        other => unreachable!("unknown protocol arm {other}"),
    };
    Cell {
        protocol,
        n,
        k,
        completed,
        rounds,
        events,
        wall_ns: start.elapsed().as_nanos() as u64,
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_runtime.json");
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let sizes: &[usize] = if smoke {
        &[1024]
    } else {
        &[1024, 2048, 4096, 8192]
    };
    let k = 4;
    let base_seed = 20_260_729u64;
    println!(
        "Scale grid: n ∈ {sizes:?} × {PROTOCOLS:?}, k = {k} (async-oblivious: k = {OBLIVIOUS_K}){}",
        if smoke { " (smoke)" } else { "" }
    );

    let jobs: Vec<(usize, &'static str, u64)> = sizes
        .iter()
        .enumerate()
        .flat_map(|(si, &n)| {
            PROTOCOLS.iter().enumerate().map(move |(pi, &p)| {
                (
                    n,
                    p,
                    derive_seed(base_seed, (si * PROTOCOLS.len() + pi) as u64),
                )
            })
        })
        .collect();
    let cells = par_map(jobs, |(n, p, seed)| run_cell(p, n, k, seed));

    let mut table = Table::new(&[
        "protocol", "n", "done", "rounds", "events", "wall ms", "ns/round", "ns/event",
    ]);
    let mut json_cells = Vec::new();
    for c in &cells {
        assert!(
            c.completed,
            "{} did not complete at n = {} within the cap",
            c.protocol, c.n
        );
        let ns_per_round = c.wall_ns as f64 / c.rounds.max(1) as f64;
        let ns_per_event = c.wall_ns as f64 / c.events.max(1) as f64;
        table.row_owned(vec![
            c.protocol.to_string(),
            c.n.to_string(),
            c.completed.to_string(),
            c.rounds.to_string(),
            c.events.to_string(),
            fmt_f64(c.wall_ns as f64 / 1e6),
            fmt_f64(ns_per_round),
            fmt_f64(ns_per_event),
        ]);
        json_cells.push(format!(
            "    {{\"protocol\": \"{}\", \"n\": {}, \"k\": {}, \"completed\": {}, \"rounds\": {}, \"events\": {}, \"wall_ms\": {:.1}, \"ns_per_round\": {:.0}, \"ns_per_event\": {:.0}}}",
            c.protocol,
            c.n,
            c.k,
            c.completed,
            c.rounds,
            c.events,
            c.wall_ns as f64 / 1e6,
            ns_per_round,
            ns_per_event,
        ));
    }
    println!("{}", table.render());
    println!("rounds = topology epochs for the async arm; events = metered");
    println!("messages (sync) or processed engine events (async).");

    // Top-level k is the grid default; each cell records the k it
    // actually ran with (the async-oblivious arm overrides it).
    let json = format!(
        "{{\n  \"k\": {k},\n  \"smoke\": {smoke},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_runtime.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_runtime.json");
    eprintln!("wrote {out_path}");
}
