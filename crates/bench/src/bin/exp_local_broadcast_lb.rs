//! **Theorem 2.3** — the `Ω(n²/log²n)` amortized lower bound for local
//! broadcast, measured.
//!
//! Runs the naive phased-flooding algorithm (the `O(n²)`-amortized upper
//! bound) against the executable Section 2 adversary and reports, per `n`:
//!
//! * amortized broadcasts per token vs. the `n²/log²n` lower-bound shape
//!   and the `n²` upper-bound shape;
//! * the maximum per-round potential increase (Lemma 2.1 caps it at
//!   `O(log n)`);
//! * the stall behavior of round-robin flooding (which, lacking the phase
//!   structure, the adversary blocks outright — the Lemma 2.2 mechanism).

use dynspread_analysis::fit::power_law_fit;
use dynspread_analysis::plot::column_chart;
use dynspread_analysis::progress::{cumulative, stall_fraction};
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_core::flooding::{PhasedFlooding, RoundRobinBroadcast};
use dynspread_core::lower_bound::{bernoulli_assignment, PotentialAdversary};
use dynspread_graph::Round;
use dynspread_sim::sim::{BroadcastSim, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 11u64;
    println!("Theorem 2.3 reproduction: phased flooding vs the §2 potential adversary");
    println!("initial knowledge density 1/4, K' density 1/4, k = n/2, seed = {seed}\n");

    let ns = [16usize, 24, 32, 48, 64];
    let mut table = Table::new(&[
        "n",
        "k",
        "rounds",
        "amortized msgs/token",
        "n²/ln²n (LB shape)",
        "n² (UB shape)",
        "max Φ-increase/round",
        "ln n",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut last_curve: Vec<f64> = Vec::new();
    // Every n is an independent seeded run: fan across cores; the closure
    // extracts everything the report rows need before the sim is dropped.
    let runs = dynspread_bench::par_map(ns.into_iter().enumerate().collect(), |(i, n)| {
        let k = n / 2;
        let mut rng = StdRng::seed_from_u64(seed + i as u64);
        let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
        let adversary = PotentialAdversary::new(&assignment, 0.25, seed + 100 + i as u64);
        let mut sim = BroadcastSim::new(
            "phased-flooding",
            PhasedFlooding::nodes(&assignment),
            adversary,
            &assignment,
            SimConfig::with_max_rounds(2 * (n * k) as Round),
        );
        let report = sim.run_to_completion();
        let max_phi = sim
            .adversary()
            .potential_increases()
            .into_iter()
            .max()
            .unwrap_or(0);
        let curve: Vec<f64> = cumulative(sim.tracker().learnings_per_round())
            .into_iter()
            .map(|v| v as f64)
            .collect();
        (n, k, report, max_phi, curve)
    });
    for (n, k, report, max_phi, curve) in runs {
        assert!(report.completed, "phased flooding must complete: {report}");
        let ln = (n as f64).ln();
        table.row_owned(vec![
            n.to_string(),
            k.to_string(),
            report.rounds.to_string(),
            fmt_f64(report.amortized()),
            fmt_f64((n * n) as f64 / (ln * ln)),
            fmt_f64((n * n) as f64),
            max_phi.to_string(),
            fmt_f64(ln),
        ]);
        xs.push(n as f64);
        ys.push(report.amortized());
        last_curve = curve;
    }
    println!("{}", table.render());
    println!(
        "cumulative token learnings over time (n = {}) — the adversary \
         flattens the curve to O(log n) per round:",
        ns.last().unwrap()
    );
    println!("{}", column_chart(&last_curve, 64, 8));
    let fit = power_law_fit(&xs, &ys);
    println!(
        "measured amortized ~ n^{:.2} (R² = {:.3}); Theorem 2.3 forces exponent ≥ 2 − o(1), \
         flooding's upper bound is exponent 2\n",
        fit.slope, fit.r_squared
    );

    // Round-robin arm: the adversary stalls it (Lemma 2.2 in action).
    println!("round-robin flooding arm (no phase structure):");
    let mut stall_table = Table::new(&["n", "completed?", "stall fraction (zero-learning rounds)"]);
    for (i, &n) in [16usize, 32].iter().enumerate() {
        let k = n / 2;
        let mut rng = StdRng::seed_from_u64(seed + 50 + i as u64);
        let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
        let adversary = PotentialAdversary::new(&assignment, 0.25, seed + 150 + i as u64);
        let mut sim = BroadcastSim::new(
            "round-robin",
            RoundRobinBroadcast::nodes(&assignment),
            adversary,
            &assignment,
            SimConfig::with_max_rounds(4 * (n * k) as Round),
        );
        let report = sim.run_to_completion();
        let stalls = stall_fraction(sim.tracker().learnings_per_round());
        stall_table.row_owned(vec![
            n.to_string(),
            report.completed.to_string(),
            fmt_f64(stalls),
        ]);
    }
    println!("{}", stall_table.render());
    println!("expected: round-robin does not complete; almost all rounds are stalls");
}
