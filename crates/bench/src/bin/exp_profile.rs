//! `exp_profile` — wall-clock phase attribution of the engines.
//!
//! Channel 2 of the observability layer, applied: runs the four
//! non-pipelined protocol arms of the scale grid with the engines'
//! self-profiler enabled (`enable_profiling`) and records where each
//! run's wall time actually goes, per [`Phase`](dynspread_sim::Phase).
//! The first deliverable is evidence for the scale roadmap item: the
//! `n = 4096` single-source cell names the dominant phase behind the
//! sync engines' superlinear ns/event growth (the suspected O(n)
//! per-event work), so the next perf PR starts from a measurement, not
//! a guess.
//!
//! Cells run **serially** — unlike `exp_scale`, which only records total
//! wall time per cell, the profiler's per-phase laps are wall-clock
//! readings that core contention between parallel cells would distort.
//!
//! Each cell asserts `attributed_fraction() ≥ 0.90`: the lap boundaries
//! must tile the engine loop, so un-instrumented glue beyond 10% means a
//! hook is missing.
//!
//! Results go to `BENCH_profile.json` (per-phase ns/laps/sparse log2
//! histogram, attributed fraction, dominant phase per cell).
//! `crates/runtime/README.md` § "Tracing & profiling" explains how to
//! read it. The file is **not** gated by `bench_check` — phase shares
//! are diagnostics, not regression metrics; the gated wall times live in
//! `BENCH_runtime.json`.
//!
//! Usage:
//!   `cargo run --release -p dynspread-bench --bin exp_profile [--smoke] [OUT.json]`
//!
//! `--smoke` runs only `n = 1024` — the CI guard that keeps the profile
//! path exercised on every PR. The full run adds `n = 4096`, including
//! the single-source cell the roadmap item is about.

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{
    default_adversary, derive_seed, run_multi_source_profiled, run_phased_flooding_profiled,
    run_single_source_profiled,
};
use dynspread_graph::NodeId;
use dynspread_runtime::engine::EventSim;
use dynspread_runtime::link::{LinkModelExt, PerfectLink};
use dynspread_runtime::protocol::{AsyncConfig, AsyncSingleSource};
use dynspread_sim::sim::SimConfig;
use dynspread_sim::token::TokenAssignment;
use dynspread_sim::{ProfileReport, RunReport};
use std::io::Write as _;

const PROTOCOLS: [&str; 4] = [
    "flooding",
    "single-source",
    "multi-source",
    "async-single-source",
];

/// Same deterministic meter-sampling factor as the `exp_scale` flooding
/// arm, so the profiled cell measures the same code path the scale grid
/// times.
const FLOOD_METER_SAMPLING: u64 = 64;

struct Cell {
    protocol: &'static str,
    n: usize,
    report: RunReport,
}

fn run_cell(protocol: &'static str, n: usize, k: usize, seed: u64) -> Cell {
    let max_rounds = 500_000;
    let report = match protocol {
        "flooding" => {
            let a = TokenAssignment::single_source(n, k, NodeId::new(0));
            let cfg = SimConfig {
                max_rounds,
                meter_sampling: FLOOD_METER_SAMPLING,
                ..SimConfig::default()
            };
            run_phased_flooding_profiled(&a, default_adversary(seed), cfg)
        }
        "single-source" => run_single_source_profiled(n, k, default_adversary(seed), max_rounds),
        "multi-source" => {
            let a = TokenAssignment::round_robin_sources(n, k, k.min(4));
            run_multi_source_profiled(&a, default_adversary(seed), max_rounds)
        }
        "async-single-source" => {
            let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
            let mut sim = EventSim::with_tracking(
                AsyncSingleSource::nodes(&assignment, AsyncConfig::default()),
                default_adversary(seed),
                PerfectLink.with_latency(1),
                2,
                derive_seed(seed, 0x5CA1E),
                &assignment,
            );
            sim.enable_profiling();
            let _ = sim.run(8 * max_rounds);
            sim.run_report("async-single-source")
        }
        other => unreachable!("unknown protocol arm {other}"),
    };
    Cell {
        protocol,
        n,
        report,
    }
}

/// Renders one cell's profile as a hand-formatted JSON object (the
/// workspace has no serde; same idiom as `exp_scale`).
fn cell_json(c: &Cell, profile: &ProfileReport) -> String {
    let phases: Vec<String> = profile
        .phases
        .iter()
        .map(|p| {
            let hist: Vec<String> = p
                .hist
                .iter()
                .map(|&(bucket, count)| format!("[{bucket}, {count}]"))
                .collect();
            format!(
                "      {{\"phase\": \"{}\", \"ns\": {}, \"laps\": {}, \"mean_ns\": {:.0}, \"hist\": [{}]}}",
                p.phase,
                p.ns,
                p.laps,
                p.mean_ns(),
                hist.join(", ")
            )
        })
        .collect();
    format!
        (
        "    {{\"protocol\": \"{}\", \"n\": {}, \"completed\": {}, \"total_ns\": {}, \"attributed_fraction\": {:.4}, \"dominant\": \"{}\", \"phases\": [\n{}\n    ]}}",
        c.protocol,
        c.n,
        c.report.completed,
        profile.total_ns,
        profile.attributed_fraction(),
        profile.dominant().map_or("none", |p| p.phase),
        phases.join(",\n")
    )
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_profile.json");
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let sizes: &[usize] = if smoke { &[1024] } else { &[1024, 4096] };
    let k = 4;
    let base_seed = 20_260_729u64;
    println!(
        "Profile grid: n ∈ {sizes:?} × {PROTOCOLS:?}, k = {k}{} — serial (wall-clock attribution)",
        if smoke { " (smoke)" } else { "" }
    );

    // Serial on purpose: see the module docs.
    let mut cells = Vec::new();
    for (si, &n) in sizes.iter().enumerate() {
        for (pi, &p) in PROTOCOLS.iter().enumerate() {
            let seed = derive_seed(base_seed, (si * PROTOCOLS.len() + pi) as u64);
            cells.push(run_cell(p, n, k, seed));
        }
    }

    let mut table = Table::new(&[
        "protocol",
        "n",
        "wall ms",
        "attributed",
        "dominant phase",
        "dominant share",
    ]);
    let mut json_cells = Vec::new();
    for c in &cells {
        assert!(
            c.report.completed,
            "{} did not complete at n = {} within the cap",
            c.protocol, c.n
        );
        let profile = c
            .report
            .profile
            .as_deref()
            .expect("profiling was enabled for every cell");
        assert!(
            profile.attributed_fraction() >= 0.90,
            "{} at n = {}: only {:.1}% of wall time attributed — a phase hook is missing",
            c.protocol,
            c.n,
            profile.attributed_fraction() * 100.0
        );
        let dominant = profile.dominant().expect("at least one phase ran");
        table.row_owned(vec![
            c.protocol.to_string(),
            c.n.to_string(),
            fmt_f64(profile.total_ns as f64 / 1e6),
            format!("{:.1}%", profile.attributed_fraction() * 100.0),
            dominant.phase.to_string(),
            format!(
                "{:.1}%",
                dominant.ns as f64 / profile.total_ns.max(1) as f64 * 100.0
            ),
        ]);
        json_cells.push(cell_json(c, profile));
    }
    println!("{}", table.render());

    // The roadmap deliverable: name the dominant phase of the largest
    // sync single-source cell (the superlinear ns/event suspect).
    if let Some(c) = cells.iter().rev().find(|c| c.protocol == "single-source") {
        let profile = c.report.profile.as_deref().expect("profiled");
        println!(
            "single-source at n = {}: dominant phase is {}",
            c.n,
            profile.dominant().map_or("none", |p| p.phase)
        );
        print!("{profile}");
    }

    let json = format!(
        "{{\n  \"k\": {k},\n  \"smoke\": {smoke},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_profile.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_profile.json");
    eprintln!("wrote {out_path}");
}
