//! **Theorems 3.5 & 3.6** — Multi-Source-Unicast: 1-adversary-competitive
//! `O(n²s + nk)` messages; `O(nk)` rounds under 3-edge stability.
//!
//! Sweeps the source count `s` at fixed `n, k` (showing the announcement
//! cost growing linearly in `s`) and checks the competitive residual
//! against `n²s + nk` plus the round bound.

use dynspread_analysis::competitive::{competitive_records, multi_source_bound, worst_ratio};
use dynspread_analysis::fit::linear_fit;
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{default_adversary, par_map, run_multi_source};
use dynspread_sim::message::MessageClass;
use dynspread_sim::token::TokenAssignment;

fn main() {
    let seed = 31u64;
    let n = 24usize;
    let k = 48usize;
    println!("Theorems 3.5 & 3.6 reproduction: Multi-Source-Unicast, n = {n}, k = {k}");
    println!("bound: M − TC(E) ≤ c(n²s + nk); rounds ≤ c'·nk on 3-stable graphs\n");

    let mut table = Table::new(&[
        "s",
        "messages",
        "completeness msgs",
        "TC(E)",
        "residual",
        "n²s+nk",
        "ratio",
        "rounds/nk",
    ]);
    let ss = [1usize, 2, 4, 8, 16, 24];
    let mut announce = Vec::new();
    let mut svals = Vec::new();
    // Independent seeded runs per source count: fan across cores.
    let runs = par_map(ss.iter().copied().enumerate().collect(), |(i, s)| {
        let assignment = TokenAssignment::round_robin_sources(n, k, s);
        (
            s,
            run_multi_source(&assignment, default_adversary(seed + i as u64), 4_000_000),
        )
    });
    for (s, report) in runs {
        assert!(report.completed, "s={s}: {report}");
        let residual = report.competitive_residual(1.0);
        let bound = (n * n * s + n * k) as f64;
        table.row_owned(vec![
            s.to_string(),
            report.total_messages.to_string(),
            report.class(MessageClass::Completeness).to_string(),
            report.tc().to_string(),
            fmt_f64(residual),
            fmt_f64(bound),
            fmt_f64(residual / bound),
            fmt_f64(report.rounds as f64 / (n * k) as f64),
        ]);
        announce.push(report.class(MessageClass::Completeness) as f64);
        svals.push(s as f64);
        // Per-s competitive record for the worst-ratio summary.
        let records = competitive_records(&[report], 1.0, multi_source_bound(s));
        assert!(worst_ratio(&records) < 8.0, "ratio exploded for s={s}");
    }
    println!("{}", table.render());

    let fit = linear_fit(&svals, &announce);
    println!(
        "completeness messages ≈ {:.0} + {:.0}·s (R² = {:.3}) — the Theorem 3.5 \
         O(n²s) announcement term, linear in s as predicted",
        fit.intercept, fit.slope, fit.r_squared
    );
}
