//! `bench_core` — regenerates `BENCH_core.json`, the perf trajectory file.
//!
//! Records median wall-clock numbers for the hot paths future PRs must not
//! regress:
//!
//! * `advance_connectivity_*`: one round of `DynamicGraph` update +
//!   connectivity under the default 3-stable rewiring workload, for the
//!   frozen seed baseline (`BTreeSet` + clone + fresh union–find) and the
//!   live delta-applied data plane, plus the speedup — at the historical
//!   `n = 512` (top-level keys, kept stable for trajectory comparisons)
//!   and at `n = 4096` (the `advance_connectivity_4096` block, guarding
//!   the CSR scale path).
//! * `flooding_ns_per_round` / `single_source_ns_per_round`: end-to-end
//!   simulator cost per round at fixed `(n, k)`.
//!
//! Usage: `cargo run --release -p dynspread-bench --bin bench_core`
//! (writes `BENCH_core.json` in the current directory; pass a path to
//! override).

use dynspread_bench::perf::{
    prepare_updates, run_baseline_schedule, run_delta_schedule, sample_schedule,
    to_baseline_graphs, to_graphs,
};
use dynspread_bench::{default_adversary, run_phased_flooding, run_single_source};
use dynspread_sim::token::TokenAssignment;
use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// Median of `samples` runs of `f`, in nanoseconds.
fn median_ns(samples: usize, mut f: impl FnMut() -> u64) -> f64 {
    median_ns_with_setup(samples, || (), |()| f())
}

/// Median of `samples` runs of `f(setup())`, timing only `f`.
fn median_ns_with_setup<T>(
    samples: usize,
    mut setup: impl FnMut() -> T,
    mut f: impl FnMut(T) -> u64,
) -> f64 {
    black_box(f(setup())); // warm-up
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    times[times.len() / 2]
}

/// Per-round baseline/delta medians and the speedup for one round of
/// `DynamicGraph` update + connectivity at a given `n`.
fn advance_connectivity_cell(n: usize, rounds: usize, samples: usize) -> (f64, f64, f64) {
    let schedule = sample_schedule(n, rounds, 3, 42);
    let baseline_graphs = to_baseline_graphs(n, &schedule);
    let graphs = to_graphs(n, &schedule);
    let baseline_total = median_ns(samples, || run_baseline_schedule(n, &baseline_graphs));
    let delta_total = median_ns_with_setup(
        samples,
        || prepare_updates(&graphs),
        |updates| run_delta_schedule(n, updates),
    );
    let baseline_per_round = baseline_total / rounds as f64;
    let delta_per_round = delta_total / rounds as f64;
    (
        baseline_per_round,
        delta_per_round,
        baseline_per_round / delta_per_round,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_core.json".into());
    let n = 512;
    let (baseline_per_round, delta_per_round, speedup) = advance_connectivity_cell(n, 30, 15);
    let big_n = 4096;
    let (big_baseline, big_delta, big_speedup) = advance_connectivity_cell(big_n, 30, 9);

    // End-to-end simulator cost per round at fixed sizes (completion
    // asserted so the measured work is the real dissemination). The runs
    // are seeded, so every sample takes the same number of rounds — the
    // cell captures it from the timed closures instead of re-running.
    let (fn_, fk) = (32, 16);
    let flood_rounds = std::cell::Cell::new(0u64);
    let flood = median_ns(9, || {
        let a = TokenAssignment::round_robin_sources(fn_, fk, fk);
        let r = run_phased_flooding(&a, default_adversary(7), 100_000);
        assert!(r.completed);
        flood_rounds.set(r.rounds);
        r.rounds
    });
    let flood_rounds = flood_rounds.get();
    let (sn, sk) = (32, 32);
    let single_rounds = std::cell::Cell::new(0u64);
    let single = median_ns(9, || {
        let r = run_single_source(sn, sk, default_adversary(11), 1_000_000);
        assert!(r.completed);
        single_rounds.set(r.rounds);
        r.rounds
    });
    let single_rounds = single_rounds.get();

    let json = format!(
        "{{\n  \"advance_connectivity_n\": {n},\n  \"advance_connectivity_baseline_ns_per_round\": {baseline_per_round:.0},\n  \"advance_connectivity_delta_ns_per_round\": {delta_per_round:.0},\n  \"advance_connectivity_speedup\": {speedup:.2},\n  \"advance_connectivity_4096\": {{\"n\": {big_n}, \"baseline_ns_per_round\": {big_baseline:.0}, \"delta_ns_per_round\": {big_delta:.0}, \"speedup\": {big_speedup:.2}}},\n  \"flooding\": {{\"n\": {fn_}, \"k\": {fk}, \"ns_per_round\": {:.0}, \"rounds\": {flood_rounds}}},\n  \"single_source\": {{\"n\": {sn}, \"k\": {sk}, \"ns_per_round\": {:.0}, \"rounds\": {single_rounds}}}\n}}\n",
        flood / flood_rounds as f64,
        single / single_rounds as f64,
    );
    print!("{json}");
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_core.json");
    f.write_all(json.as_bytes()).expect("write BENCH_core.json");
    eprintln!("wrote {out_path}");
    assert!(
        speedup >= 1.0 && big_speedup >= 1.0,
        "delta data plane slower than the baseline it replaced"
    );
}
