//! `exp_oblivious_async` — the asynchronous oblivious pipeline under
//! loss and latency.
//!
//! The round-based Algorithm 2 cannot run over a lossy link at all: a
//! dropped walk step silently destroys token ownership and phase 1 never
//! ends. The `run_async_oblivious` port carries walk steps as acked,
//! retransmitted ownership transfers, so this binary can sweep what the
//! synchronous experiments never could — drop probability × jitter — and
//! tabulate the cost of reliability:
//!
//! * `p1 t` / `p2 t` — virtual completion times of the two phases;
//! * `strand` — tokens whose owner froze at the phase-1 deadline
//!   (conservative fallback sources);
//! * `sent` — total link-layer transmissions (retransmissions included),
//!   whose growth with the drop rate is the retransmission premium;
//! * `dup` — duplicate walk transfers absorbed by the receiver-side
//!   sequence dedup (0 without drops: nothing is ever retransmitted).
//!
//! Every cell is one seeded end-to-end run fanned through `par_map`
//! (parallel output byte-identical to serial). All cells must reach full
//! dissemination — completion under 30% drop is the point.
//!
//! Usage: `cargo run --release -p dynspread-bench --bin exp_oblivious_async`

use dynspread_analysis::table::Table;
use dynspread_bench::{derive_seed, par_map};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_runtime::link::{DropLink, LinkModelExt};
use dynspread_runtime::protocol::{run_async_oblivious, AsyncObliviousConfig};
use dynspread_sim::token::TokenAssignment;

const DROPS: [f64; 3] = [0.0, 0.15, 0.3];
const JITTERS: [u64; 2] = [0, 2];
const SEEDS: [u64; 2] = [1, 2];

struct Cell {
    drop: f64,
    jitter: u64,
    seed: u64,
    completed: bool,
    stranded: usize,
    sources: usize,
    p1_time: u64,
    p2_time: u64,
    transmissions: u64,
    events: u64,
}

fn run_cell(n: usize, drop: f64, jitter: u64, seed: u64) -> Cell {
    let assignment = TokenAssignment::n_gossip(n);
    let cfg = AsyncObliviousConfig {
        seed: derive_seed(seed, 0xA51),
        // Force the two-phase path at this scale; ~15% centers and γ = 1
        // (everyone high-degree) keep phase 1 short.
        source_threshold: Some(1.0),
        center_probability: Some(0.15),
        degree_threshold: Some(1.0),
        phase1_deadline: 20_000,
        phase1_max_time: 50_000,
        ..AsyncObliviousConfig::default()
    };
    let out = run_async_oblivious(
        &assignment,
        PeriodicRewiring::new(Topology::Gnp(0.15), 3, derive_seed(seed, 1)),
        PeriodicRewiring::new(Topology::RandomTree, 3, derive_seed(seed, 2)),
        DropLink::new(drop).with_jitter(jitter),
        DropLink::new(drop).with_jitter(jitter),
        &cfg,
    );
    let p1 = out.phase1.as_ref().expect("two-phase path forced");
    Cell {
        drop,
        jitter,
        seed,
        completed: out.completed,
        stranded: out.stranded_tokens,
        sources: out.sources.len(),
        p1_time: p1.final_time,
        p2_time: out.phase2.final_time,
        transmissions: out.total_transmissions(),
        events: out.total_events(),
    }
}

fn main() {
    let n = 64;
    println!("Async oblivious pipeline: n = {n} (n-gossip), drop ∈ {DROPS:?} × jitter ∈ {JITTERS:?} × seeds {SEEDS:?}");

    let jobs: Vec<(f64, u64, u64)> = DROPS
        .iter()
        .flat_map(|&d| {
            JITTERS
                .iter()
                .flat_map(move |&j| SEEDS.iter().map(move |&s| (d, j, s)))
        })
        .collect();
    let cells = par_map(jobs, |(d, j, s)| run_cell(n, d, j, s));

    let mut table = Table::new(&[
        "drop", "jitter", "seed", "done", "sources", "strand", "p1 t", "p2 t", "sent", "events",
    ]);
    for c in &cells {
        assert!(
            c.completed,
            "drop {} jitter {} seed {}: did not complete",
            c.drop, c.jitter, c.seed
        );
        table.row_owned(vec![
            format!("{:.2}", c.drop),
            c.jitter.to_string(),
            c.seed.to_string(),
            c.completed.to_string(),
            c.sources.to_string(),
            c.stranded.to_string(),
            c.p1_time.to_string(),
            c.p2_time.to_string(),
            c.transmissions.to_string(),
            c.events.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("sent = link-layer transmissions incl. retransmissions; the");
    println!("drop-0 rows are the lossless reference for the premium.");
}
