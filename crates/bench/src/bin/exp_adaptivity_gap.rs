//! **Footnote 4** — strongly vs weakly adaptive adversaries.
//!
//! "The strongly adaptive adversary knows the algorithm's randomness of the
//! current round … a weakly adaptive adversary only knows the algorithm's
//! randomness up to the round before the current round."
//!
//! The Section 2 lower bound needs the *strong* variant: the adversary must
//! see the committed broadcast tokens before wiring the round. This binary
//! measures the gap: round-robin flooding (whose per-round token choice the
//! lagged adversary cannot predict) is stalled forever by the strong
//! adversary, but completes against the weak one.

use dynspread_analysis::progress::stall_fraction;
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_core::flooding::RoundRobinBroadcast;
use dynspread_core::lower_bound::{
    bernoulli_assignment, LaggedPotentialAdversary, PotentialAdversary,
};
use dynspread_sim::sim::{BroadcastSim, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 71u64;
    println!("Adaptivity gap: the §2 adversary with and without the one-round lag");
    println!("algorithm: round-robin flooding (rotating token choice); k = n/2\n");

    let mut table = Table::new(&[
        "n",
        "adversary",
        "completed?",
        "rounds",
        "messages",
        "stall fraction",
    ]);
    // Both arms per n are independent seeded runs: fan across cores.
    let runs = dynspread_bench::par_map(
        [16usize, 24, 32].into_iter().enumerate().collect(),
        |(i, n)| {
            let k = n / 2;
            let cap = 30 * (n * k) as u64;
            // Strong arm.
            let mut rng = StdRng::seed_from_u64(seed + i as u64);
            let assignment = bernoulli_assignment(n, k, 0.25, &mut rng);
            let mut sim = BroadcastSim::new(
                "round-robin",
                RoundRobinBroadcast::nodes(&assignment),
                PotentialAdversary::new(&assignment, 0.25, seed + 100 + i as u64),
                &assignment,
                SimConfig::with_max_rounds(cap),
            );
            let strong = sim.run_to_completion();
            let strong_stalls = stall_fraction(sim.tracker().learnings_per_round());
            // Weak arm (same K' seed, same initial assignment).
            let mut sim = BroadcastSim::new(
                "round-robin",
                RoundRobinBroadcast::nodes(&assignment),
                LaggedPotentialAdversary::new(&assignment, 0.25, seed + 100 + i as u64),
                &assignment,
                SimConfig::with_max_rounds(cap),
            );
            let weak = sim.run_to_completion();
            let weak_stalls = stall_fraction(sim.tracker().learnings_per_round());
            (n, strong, strong_stalls, weak, weak_stalls)
        },
    );
    for (n, strong, strong_stalls, weak, weak_stalls) in runs {
        table.row_owned(vec![
            n.to_string(),
            "strongly adaptive".into(),
            strong.completed.to_string(),
            strong.rounds.to_string(),
            strong.total_messages.to_string(),
            fmt_f64(strong_stalls),
        ]);
        table.row_owned(vec![
            n.to_string(),
            "weakly adaptive".into(),
            weak.completed.to_string(),
            weak.rounds.to_string(),
            weak.total_messages.to_string(),
            fmt_f64(weak_stalls),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape: identical K' sets and initial knowledge, yet the strong \
         adversary stalls round-robin indefinitely while the weak one cannot — \
         the one-round lag is exactly the power the Theorem 2.3 proof needs"
    );
}
