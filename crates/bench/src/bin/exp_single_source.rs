//! **Theorems 3.1 & 3.4** — Single-Source-Unicast: 1-adversary-competitive
//! `O(n² + nk)` messages; `O(nk)` rounds under 3-edge stability.
//!
//! Sweeps `n` and `k` across adversary families and reports, per run:
//! total messages, `TC(E)`, the competitive residual `M − TC`, the bound
//! `n² + nk`, their ratio (the empirical hidden constant — Theorem 3.1
//! holds iff it stays O(1)), and `rounds/(nk)` (Theorem 3.4's constant).

use dynspread_analysis::competitive::{competitive_records, single_source_bound, worst_ratio};
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{par_map, run_single_source};
use dynspread_core::adaptive::RequestCuttingAdversary;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::{ChurnAdversary, PeriodicRewiring, StaticAdversary};
use dynspread_graph::Graph;

fn main() {
    let seed = 23u64;
    println!("Theorems 3.1 & 3.4 reproduction: Single-Source-Unicast");
    println!("bound: M − TC(E) ≤ c(n² + nk); rounds ≤ c'·nk on 3-stable graphs\n");

    let mut table = Table::new(&[
        "adversary",
        "n",
        "k",
        "messages",
        "TC(E)",
        "residual",
        "n²+nk",
        "ratio",
        "rounds/nk",
    ]);
    let cases: Vec<(usize, usize)> =
        vec![(16, 8), (16, 32), (24, 24), (32, 16), (32, 64), (48, 48)];
    // Every (case, adversary) cell is an independent seeded simulation:
    // fan the grid across cores (results come back in input order).
    let jobs: Vec<(usize, usize, usize, u8)> = cases
        .iter()
        .enumerate()
        .flat_map(|(i, &(n, k))| (0u8..3).map(move |arm| (i, n, k, arm)))
        .collect();
    let runs = par_map(jobs, |(i, n, k, arm)| match arm {
        0 => (
            "static-clique".to_string(),
            n,
            k,
            run_single_source(n, k, StaticAdversary::new(Graph::complete(n)), 4_000_000),
        ),
        1 => (
            "rewire(tree,ρ=3)".to_string(),
            n,
            k,
            run_single_source(
                n,
                k,
                PeriodicRewiring::new(Topology::RandomTree, 3, seed + i as u64),
                4_000_000,
            ),
        ),
        _ => (
            "churn(c=2,σ=3)".to_string(),
            n,
            k,
            run_single_source(
                n,
                k,
                ChurnAdversary::new(Topology::SparseConnected(2.0), 2, 3, seed + 40 + i as u64),
                4_000_000,
            ),
        ),
    });
    let mut reports = Vec::new();
    {
        for (name, n, k, report) in runs {
            assert!(report.completed, "{name} n={n} k={k}: {report}");
            let residual = report.competitive_residual(1.0);
            let bound = single_source_bound(&report);
            table.row_owned(vec![
                name,
                n.to_string(),
                k.to_string(),
                report.total_messages.to_string(),
                report.tc().to_string(),
                fmt_f64(residual),
                fmt_f64(bound),
                fmt_f64(residual / bound),
                fmt_f64(report.rounds as f64 / (n * k) as f64),
            ]);
            reports.push(report);
        }
    }
    println!("{}", table.render());
    let records = competitive_records(&reports, 1.0, single_source_bound);
    println!(
        "worst residual/(n²+nk) ratio across all runs: {:.3} — Theorem 3.1 holds with this constant\n",
        worst_ratio(&records)
    );

    // Adaptive arm: unbounded request cutting may prevent termination but
    // cannot break the competitive bound (run capped).
    println!("strongly adaptive arm: request-cutting adversary (capped at 3000 rounds)");
    let mut adv_table = Table::new(&[
        "n",
        "k",
        "completed?",
        "messages",
        "TC(E)",
        "residual",
        "ratio",
    ]);
    let adaptive_runs = par_map(vec![(16usize, 8usize), (24, 12)], |(n, k)| {
        let adv = RequestCuttingAdversary::new(Topology::SparseConnected(2.0), usize::MAX, 2, seed);
        (n, k, run_single_source(n, k, adv, 3_000))
    });
    for (n, k, report) in adaptive_runs {
        let residual = report.competitive_residual(1.0);
        let bound = single_source_bound(&report);
        adv_table.row_owned(vec![
            n.to_string(),
            k.to_string(),
            report.completed.to_string(),
            report.total_messages.to_string(),
            report.tc().to_string(),
            fmt_f64(residual),
            fmt_f64(residual / bound),
        ]);
    }
    println!("{}", adv_table.render());
    println!("expected: residual ratio stays O(1) even when the adversary stalls termination");
}
