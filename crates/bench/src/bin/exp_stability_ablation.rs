//! **Ablation A-σ** — how edge stability affects Single-Source-Unicast.
//!
//! Theorem 3.4's `O(nk)` round bound assumes 3-edge stability: a request
//! sent over an edge in round `r` is answered in round `r+1` and the
//! answer is learned by `r+2`, so the request→token handshake needs every
//! edge to live ≥ 3 rounds. This ablation sweeps the rewiring period
//! σ ∈ {1, 2, 3, 5, 8} and reports rounds, messages, and wasted requests
//! (requests whose edge died before the token arrived).

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{par_map, run_single_source};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_sim::message::MessageClass;

fn main() {
    let seed = 43u64;
    let (n, k) = (24usize, 24usize);
    println!("σ-stability ablation: Single-Source-Unicast, n = {n}, k = {k}");
    println!("adversary: fresh random tree every σ rounds (σ-edge-stable by construction)\n");

    let mut table = Table::new(&[
        "σ (rewire period)",
        "rounds",
        "rounds/nk",
        "messages",
        "requests",
        "wasted requests",
        "TC(E)",
    ]);
    // One independent run per σ: fan across cores.
    let runs = par_map(
        [1u64, 2, 3, 5, 8].into_iter().enumerate().collect(),
        |(i, sigma)| {
            let adv = PeriodicRewiring::new(Topology::RandomTree, sigma, seed + i as u64);
            (sigma, run_single_source(n, k, adv, 8_000_000))
        },
    );
    for (sigma, report) in runs {
        assert!(report.completed, "σ={sigma}: {report}");
        let requests = report.class(MessageClass::Request);
        let tokens = report.class(MessageClass::Token);
        table.row_owned(vec![
            sigma.to_string(),
            report.rounds.to_string(),
            fmt_f64(report.rounds as f64 / (n * k) as f64),
            report.total_messages.to_string(),
            requests.to_string(),
            (requests - tokens).to_string(),
            report.tc().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape: σ ≥ 3 keeps rounds/nk and wasted requests low (Theorem 3.4's \
         regime); σ < 3 kills in-flight handshakes every rewiring, inflating both — \
         while the competitive bound (Theorem 3.1) still holds because TC(E) grows too"
    );
}
