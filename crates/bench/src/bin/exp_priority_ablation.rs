//! **Ablation A-prio** — the request priority (new > idle > contributive)
//! of Algorithm 1.
//!
//! The paper calls for "a careful strategy … to avoid redundant
//! communication": incomplete nodes try *new* edges first, then *idle*,
//! then *contributive*. The futile-round argument (Lemmas 3.2/3.3) hinges
//! on it. This ablation compares the prioritized policy against an
//! ID-order policy under adversaries that punish bad edge choices
//! (request cutting and fast rewiring).

use dynspread_analysis::stats::Summary;
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::run_single_source_with_policy;
use dynspread_core::adaptive::RequestCuttingAdversary;
use dynspread_core::single_source::RequestPolicy;
use dynspread_graph::adversary::Adversary;
use dynspread_graph::connectivity::connect_components;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::{Edge, Graph, NodeId, Round};
use dynspread_sim::message::MessageClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Every edge lives exactly `lifetime` rounds, with staggered births: in
/// every round some edges are brand new (safe to request on) and some are
/// one round from death (a request there is wasted). This is the regime
/// where Algorithm 1's new > idle > contributive priority pays off.
struct AgingAdversary {
    lifetime: Round,
    target_edges: usize,
    rng: StdRng,
    births: BTreeMap<Edge, Round>,
}

impl AgingAdversary {
    fn new(lifetime: Round, target_edges: usize, seed: u64) -> Self {
        AgingAdversary {
            lifetime,
            target_edges,
            rng: StdRng::seed_from_u64(seed),
            births: BTreeMap::new(),
        }
    }
}

impl Adversary for AgingAdversary {
    fn graph_for_round(&mut self, round: Round, prev: &Graph) -> Graph {
        let n = prev.node_count();
        let lifetime = self.lifetime;
        self.births.retain(|_, b| round - *b < lifetime);
        let mut g = Graph::empty(n);
        for e in self.births.keys() {
            g.insert_edge(*e);
        }
        let mut attempts = 0;
        while g.edge_count() < self.target_edges && attempts < 100 * self.target_edges {
            attempts += 1;
            let u = self.rng.gen_range(0..n as u32);
            let v = self.rng.gen_range(0..n as u32);
            if u != v {
                let e = Edge::new(NodeId::new(u), NodeId::new(v));
                if g.insert_edge(e) {
                    self.births.insert(e, round);
                }
            }
        }
        for e in connect_components(&mut g, &mut self.rng) {
            self.births.insert(e, round);
        }
        g
    }

    fn name(&self) -> &str {
        "aging(exact-lifetime)"
    }
}

fn main() {
    // Small k and dense graphs: the regime where an incomplete node has
    // more eligible edges than missing tokens, so *which* edge gets the
    // request is an actual choice.
    let (n, k) = (24usize, 4usize);
    let trials = 10u64;
    println!(
        "Request-priority ablation: Single-Source-Unicast, n = {n}, k = {k}, {trials} seeds/cell\n"
    );

    let mut table = Table::new(&[
        "adversary",
        "policy",
        "completed",
        "rounds (mean)",
        "messages (mean)",
        "wasted requests (mean)",
    ]);
    // The full (family × policy × trial) grid is embarrassingly parallel:
    // fan it across cores, then aggregate per-cell trial means in order.
    let families = [
        "rewire(tree,\u{3c1}=3)",
        "aging(lifetime=3)",
        "stable-cutter(\u{3c3}=3)",
        "request-cutting(b=1)",
    ];
    let policies = [RequestPolicy::Prioritized, RequestPolicy::Unprioritized];
    let jobs: Vec<(usize, usize, u64)> = (0..families.len())
        .flat_map(|f| (0..policies.len()).flat_map(move |p| (0..trials).map(move |t| (f, p, t))))
        .collect();
    let runs = dynspread_bench::par_map(jobs, |(f, p, t)| {
        let policy = policies[p];
        match f {
            // Oblivious rewiring: the benign control arm.
            0 => run_single_source_with_policy(
                n,
                k,
                PeriodicRewiring::new(Topology::RandomTree, 3, 1000 + t),
                2_000_000,
                policy,
            ),
            // Exact 3-round edge lifetimes with staggered births: only new
            // edges survive long enough to answer a request.
            1 => run_single_source_with_policy(
                n,
                k,
                AgingAdversary::new(3, 5 * n, 3000 + t),
                2_000_000,
                policy,
            ),
            // \u{3c3}-stable adaptive cutting (Lemma 3.2's regime): only requests
            // on *new* edges are guaranteed to be answered.
            2 => run_single_source_with_policy(
                n,
                k,
                dynspread_core::adaptive::StableRequestCutter::new(3, 3 * n, 4000 + t),
                20_000,
                policy,
            ),
            // Budget-1 cutting: one request edge killed per round.
            _ => run_single_source_with_policy(
                n,
                k,
                RequestCuttingAdversary::new(Topology::SparseConnected(2.5), 1, 1, 2000 + t),
                2_000_000,
                policy,
            ),
        }
    });
    let trials_us = trials as usize;
    for (f, family) in families.iter().enumerate() {
        for (p, policy) in policies.iter().enumerate() {
            let cell = &runs[(f * policies.len() + p) * trials_us..][..trials_us];
            let done = cell.iter().filter(|r| r.completed).count();
            let rounds: Vec<f64> = cell.iter().map(|r| r.rounds as f64).collect();
            let msgs: Vec<f64> = cell.iter().map(|r| r.total_messages as f64).collect();
            let wasted: Vec<f64> = cell
                .iter()
                .map(|r| (r.class(MessageClass::Request) - r.class(MessageClass::Token)) as f64)
                .collect();
            table.row_owned(vec![
                (*family).into(),
                format!("{policy:?}"),
                format!("{done}/{trials}"),
                fmt_f64(Summary::from_samples(&rounds).mean),
                fmt_f64(Summary::from_samples(&msgs).mean),
                fmt_f64(Summary::from_samples(&wasted).mean),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: under oblivious dynamics the policies coincide (every \
         eligible edge gets a request when tokens outnumber edges); under the σ-stable \
         adaptive cutter the prioritized policy wastes fewer requests and finishes \
         slightly sooner — the paper's priority is a worst-case (futile-round) \
         guarantee, not an average-case speedup"
    );
}
