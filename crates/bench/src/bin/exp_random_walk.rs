//! **Lemma 3.7** — visit-count bound for random walks on d-regular dynamic
//! graphs under an oblivious adversary.
//!
//! Simulates the lazy walk Algorithm 2 uses (move w.p. `d/n` on the
//! virtual n-regular multigraph) over rewired near-d-regular graphs, and
//! reports for each (d, rounds):
//!
//! * distinct nodes visited vs. the `√L/(d log n)` lower-bound shape,
//! * the maximum visits to any node vs. the `d √(t+1) log n` upper-bound
//!   shape.

use dynspread_analysis::stats::Summary;
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::par_map;
use dynspread_core::random_walk::{distinct_visit_bound, lazy_walk, visit_count_bound};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::NodeId;

fn main() {
    let seed = 41u64;
    let n = 64usize;
    let trials = 5;
    println!("Lemma 3.7 reproduction: lazy walks on near-d-regular dynamic graphs, n = {n}, {trials} trials/row\n");

    let mut table = Table::new(&[
        "d",
        "rounds",
        "actual steps (mean)",
        "distinct visits (mean)",
        "√L/(d·ln n) (LB shape)",
        "max visits (mean)",
        "d·√(t+1)·ln n (UB shape)",
    ]);
    // Every (d, rounds, trial) walk is independent: fan the whole grid
    // across cores, then aggregate trial means per cell.
    let cells: Vec<(usize, u64)> = [3usize, 4, 6]
        .into_iter()
        .flat_map(|d| [5_000u64, 20_000, 80_000].into_iter().map(move |r| (d, r)))
        .collect();
    let jobs: Vec<(usize, u64, usize)> = cells
        .iter()
        .flat_map(|&(d, r)| (0..trials).map(move |t| (d, r, t)))
        .collect();
    let walks = par_map(jobs, |(d, rounds, t)| {
        let mut adv = PeriodicRewiring::new(Topology::NearRegular(d), 5, seed + t as u64);
        let stats = lazy_walk(&mut adv, n, NodeId::new(0), rounds, seed + 100 + t as u64);
        (
            stats.distinct_visits as f64,
            stats.max_visits() as f64,
            stats.actual_steps as f64,
        )
    });
    for (ci, &(d, rounds)) in cells.iter().enumerate() {
        {
            let cell = &walks[ci * trials..(ci + 1) * trials];
            let distinct: Vec<f64> = cell.iter().map(|w| w.0).collect();
            let maxv: Vec<f64> = cell.iter().map(|w| w.1).collect();
            let actual: Vec<f64> = cell.iter().map(|w| w.2).collect();
            let mean_actual = Summary::from_samples(&actual).mean;
            table.row_owned(vec![
                d.to_string(),
                rounds.to_string(),
                fmt_f64(mean_actual),
                fmt_f64(Summary::from_samples(&distinct).mean),
                fmt_f64(distinct_visit_bound(mean_actual as u64, d, n)),
                fmt_f64(Summary::from_samples(&maxv).mean),
                fmt_f64(visit_count_bound(rounds, d, n)),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: distinct visits ≥ the LB column (walks cover nodes at \
         least at the Lemma 3.7 rate); max visits ≤ the UB column up to the 2^(c+3) constant"
    );
}
