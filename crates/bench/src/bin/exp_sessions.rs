//! `exp_sessions` — multi-session service throughput of the session mux.
//!
//! Sweeps arrival-trace shape (session count × job size × inter-arrival
//! spacing) over one shared 24-node network, each cell one seeded
//! [`SessionWorkload::uniform`] trace replayed through
//! `Scenario::run_sessions`: every session is a private single-source
//! dissemination job multiplexed over the same long-lived engine, links,
//! and virtual clock. Tabulated per cell:
//!
//! * **done** — sessions that reached full dissemination (every cell
//!   asserts all of them do);
//! * **p50 / p95 / max** — per-session completion latency percentiles on
//!   the shared virtual clock (`completed_at − arrival`);
//! * **overlap** — sessions that arrived before an earlier session had
//!   finished, i.e. how concurrent the trace actually was (asserted
//!   positive on every multi-session cell);
//! * **msgs** — aggregate envelope load staged by all sessions.
//!
//! The binary asserts zero envelope decode errors and zero foreign
//! drops on every cell — a wire-format soundness sweep of the session
//! layer that doubles as the perf baseline for `bench_check --sessions`.
//!
//! Usage:
//!   `cargo run --release -p dynspread-bench --bin exp_sessions [--smoke] [OUT.json]`
//!
//! `--smoke` runs the 5- and 20-session traces only — the CI guard,
//! which keeps the ISSUE's ≥ 20-session overlapping acceptance workload
//! in every PR run. Results go to `BENCH_sessions.json` (default);
//! `bench_check --sessions` gates fresh runs against the committed
//! baseline.

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{derive_seed, par_map};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_runtime::link::{DropLink, LinkModelExt};
use dynspread_runtime::{Scenario, SessionWorkload};
use std::io::Write as _;
use std::time::Instant;

/// Nodes on the shared network — every session's job spans all of them.
const N: usize = 24;

/// `(sessions, k, spacing)` — the swept arrival traces. Spacing is the
/// upper bound on the uniform inter-arrival gap, so lower spacing at a
/// fixed count means a more concurrent service.
const SCENARIOS: [(usize, usize, u64); 5] = [
    (5, 4, 400),
    (10, 4, 200),
    (20, 4, 100),
    (20, 8, 100),
    (40, 4, 50),
];

struct Cell {
    sessions: usize,
    k: usize,
    spacing: u64,
    completed: usize,
    overlapped: usize,
    p50: u64,
    p95: u64,
    max: u64,
    messages: u64,
    events: u64,
    wall_ns: u64,
}

fn run_cell(sessions: usize, k: usize, spacing: u64) -> Cell {
    // Seeds derive from the scenario's *values*, not its grid index, so
    // a smoke cell is byte-identical to the same cell in the full grid
    // and their wall times stay comparable in bench_check.
    let base_seed = 20_260_807u64;
    let seed = derive_seed(base_seed, sessions as u64 * 1009 + k as u64 * 31 + spacing);
    let workload = SessionWorkload::uniform(N, sessions, k, spacing, derive_seed(seed, 0x5E5));
    let start = Instant::now();
    let out = Scenario::new(N, k)
        .topology(PeriodicRewiring::new(
            Topology::RandomTree,
            3,
            derive_seed(seed, 0x70B),
        ))
        .link(DropLink::new(0.1).with_jitter(1))
        .seed(seed)
        .name("exp-sessions")
        .workload(&workload)
        .run_sessions();
    let wall_ns = start.elapsed().as_nanos() as u64;

    assert_eq!(
        out.completed_sessions(),
        sessions,
        "{sessions}x{k}/{spacing}: not every session completed"
    );
    assert_eq!(out.decode_errors, 0, "envelope decode errors");
    assert_eq!(out.foreign_drops, 0, "foreign-session drops");

    // How concurrent the trace actually was: a session overlaps if it
    // arrived before some earlier session finished.
    let overlapped = out
        .sessions
        .iter()
        .enumerate()
        .filter(|(i, s)| {
            out.sessions[..*i]
                .iter()
                .any(|earlier| earlier.completed_at.is_some_and(|done| s.arrival < done))
        })
        .count();
    if sessions >= 10 {
        assert!(
            overlapped > 0,
            "{sessions}x{k}/{spacing}: trace never overlapped"
        );
    }

    Cell {
        sessions,
        k,
        spacing,
        completed: out.completed_sessions(),
        overlapped,
        p50: out.latency_percentile(0.50).expect("completed sessions"),
        p95: out.latency_percentile(0.95).expect("completed sessions"),
        max: out.latency_percentile(1.0).expect("completed sessions"),
        messages: out.total_session_messages(),
        events: out.event.events,
        wall_ns,
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_sessions.json");
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let scenarios: Vec<(usize, usize, u64)> = SCENARIOS
        .iter()
        .copied()
        .filter(|&(s, _, _)| !smoke || s == 5 || s == 20)
        .collect();
    println!(
        "Session grid: n = {N}, (sessions, k, spacing) {scenarios:?}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let cells = par_map(scenarios, |(s, k, sp)| run_cell(s, k, sp));

    let mut table = Table::new(&[
        "sessions", "k", "spacing", "done", "overlap", "p50", "p95", "max", "msgs", "wall ms",
    ]);
    let mut json_cells = Vec::new();
    for c in &cells {
        table.row_owned(vec![
            c.sessions.to_string(),
            c.k.to_string(),
            c.spacing.to_string(),
            c.completed.to_string(),
            c.overlapped.to_string(),
            c.p50.to_string(),
            c.p95.to_string(),
            c.max.to_string(),
            c.messages.to_string(),
            fmt_f64(c.wall_ns as f64 / 1e6),
        ]);
        json_cells.push(format!(
            "    {{\"sessions\": {}, \"k\": {}, \"spacing\": {}, \"completed\": {}, \"overlapped\": {}, \"p50_latency\": {}, \"p95_latency\": {}, \"max_latency\": {}, \"messages\": {}, \"events\": {}, \"wall_ms\": {:.1}}}",
            c.sessions,
            c.k,
            c.spacing,
            c.completed,
            c.overlapped,
            c.p50,
            c.p95,
            c.max,
            c.messages,
            c.events,
            c.wall_ns as f64 / 1e6,
        ));
    }
    println!("{}", table.render());
    println!("p50/p95/max = per-session completion latency on the shared virtual clock;");
    println!("overlap = sessions that arrived before an earlier one finished;");
    println!("msgs = envelopes staged by all sessions (completion asserted per cell).");

    let json = format!(
        "{{\n  \"n\": {N},\n  \"smoke\": {smoke},\n  \"cells\": [\n{}\n  ]\n}}\n",
        json_cells.join(",\n")
    );
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_sessions.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_sessions.json");
    eprintln!("wrote {out_path}");
}
