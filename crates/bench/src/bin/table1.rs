//! **Table 1** — amortized message complexity of the oblivious algorithm
//! for different numbers of tokens.
//!
//! Paper (Section 3.2.2, Table 1), for `s ≥ n^{2/3} log^{5/3} n` sources:
//!
//! | k                      | amortized message complexity    |
//! |------------------------|---------------------------------|
//! | O(n^{2/3} log^{5/3} n) | O(n²)                           |
//! | O(n)                   | O(n^{7/4} log^{5/4} n) = o(n²)  |
//! | O(n^{3/2})             | O(n^{11/8} log^{5/4} n)         |
//! | O(n²)                  | O(n log^{5/4} n)                |
//!
//! i.e. amortized = `O(n^{5/2} log^{5/4} n / k^{3/4})`: messages per token
//! *decrease* with exponent −3/4 in `k`. At laptop scale the polylog
//! factors and thresholds exceed `n`, so (as documented in DESIGN.md) the
//! harness uses the same formulas with the log factors dropped
//! (`threshold = n^{2/3}`, `f = √n·k^{1/4}` capped at `n/2`) and checks the
//! **shape**: the measured amortized-vs-k exponent and the crossover
//! against plain Multi-Source-Unicast.

use dynspread_analysis::fit::power_law_fit;
use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{par_map, run_multi_source};
use dynspread_core::oblivious::{run_oblivious_multi_source, ObliviousConfig};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_sim::token::TokenAssignment;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let seed = 42u64;
    println!("Table 1 reproduction: n = {n}, seed = {seed}");
    println!("(log factors dropped at laptop scale; see DESIGN.md)\n");

    let nf = n as f64;
    let rows: Vec<(&str, usize)> = vec![
        ("n^(2/3)", (nf.powf(2.0 / 3.0)).round() as usize),
        ("n", n),
        ("n^(3/2)", (nf.powf(1.5)).round() as usize),
        ("n^2/2", n * n / 2),
    ];

    let mut table = Table::new(&[
        "k",
        "k (label)",
        "s",
        "oblivious total",
        "oblivious amortized",
        "multi-source amortized",
        "predicted n^(5/2)/k^(3/4)",
    ]);
    let mut ks = Vec::new();
    let mut amortized = Vec::new();
    // Each table row is an independent pair of seeded runs: fan across
    // cores; par_map returns rows in input order.
    let runs = par_map(rows.into_iter().enumerate().collect(), |(i, (label, k))| {
        let k = k.max(2);
        let s = k.min(n);
        let assignment = TokenAssignment::round_robin_sources(n, k, s);
        let f = (nf.sqrt() * (k as f64).powf(0.25)).min(nf / 2.0);
        let cfg = ObliviousConfig {
            seed: seed + i as u64,
            source_threshold: Some(nf.powf(2.0 / 3.0)),
            center_probability: Some((f / nf).min(0.5)),
            degree_threshold: Some(nf / f),
            phase1_max_rounds: 200_000,
            phase2_max_rounds: 2_000_000,
        };
        let out = run_oblivious_multi_source(
            &assignment,
            PeriodicRewiring::new(Topology::Gnp(0.15), 3, seed + 100 + i as u64),
            PeriodicRewiring::new(Topology::RandomTree, 3, seed + 200 + i as u64),
            &cfg,
        );
        let ms = run_multi_source(
            &assignment,
            PeriodicRewiring::new(Topology::RandomTree, 3, seed + 300 + i as u64),
            2_000_000,
        );
        (label, k, s, out, ms)
    });
    for (label, k, s, out, ms) in runs {
        assert!(out.completed(), "oblivious run for k={k} did not complete");
        assert!(ms.completed, "multi-source run for k={k} did not complete");
        let predicted = nf.powf(2.5) / (k as f64).powf(0.75);
        table.row_owned(vec![
            k.to_string(),
            label.to_string(),
            s.to_string(),
            out.total_messages().to_string(),
            fmt_f64(out.amortized()),
            fmt_f64(ms.amortized()),
            fmt_f64(predicted),
        ]);
        ks.push(k as f64);
        amortized.push(out.amortized());
    }
    println!("{}", table.render());

    let fit = power_law_fit(&ks, &amortized);
    println!(
        "measured amortized ~ k^{:.3} (R² = {:.3}); paper predicts k^-0.75",
        fit.slope, fit.r_squared
    );
    println!(
        "shape check: amortized cost should fall with k and undercut plain \
         multi-source for large s — see EXPERIMENTS.md (T1) for recorded values"
    );
}
