//! **Beyond the paper's model** — message loss: how Algorithm 1's
//! request/response handshake degrades when the channel drops messages.
//!
//! The paper's synchronous model delivers every message; the
//! `dynspread_runtime` synchronizer keeps the round structure but routes
//! every send through a lossy link. A dropped token response stalls the
//! requester until the adversary happens to kill the edge (which clears
//! the in-flight request), so rounds stretch super-linearly in the drop
//! probability while the *competitive* message structure stays intact.
//! Completion is *not* guaranteed at high loss: Algorithm 1 announces
//! completeness to each neighbor once ever, so a dropped announcement is
//! never repeated — runs that hit the round cap are reported as such.
//!
//! Sweeps drop probability × adversary × seed; every cell is an
//! independent seeded run fanned through `par_map` (parallel output is
//! byte-identical to serial — set `DYNSPREAD_THREADS=1` to check).

use dynspread_analysis::table::{fmt_f64, Table};
use dynspread_bench::{derive_seed, par_map};
use dynspread_core::single_source::SingleSourceNode;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::{ChurnAdversary, PeriodicRewiring};
use dynspread_graph::NodeId;
use dynspread_runtime::link::{LinkModelExt, PerfectLink};
use dynspread_runtime::sync::UnicastSynchronizer;
use dynspread_sim::sim::SimConfig;
use dynspread_sim::token::TokenAssignment;
use dynspread_sim::RunReport;

fn run_lossy(n: usize, k: usize, drop_p: f64, arm: u8, seed: u64) -> (RunReport, u64, u64) {
    let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
    let cfg = SimConfig::with_max_rounds(2_000_000);
    let link = PerfectLink.lossy(drop_p);
    let link_seed = derive_seed(seed, 0x11);
    macro_rules! run {
        ($adv:expr) => {{
            let mut sim = UnicastSynchronizer::new(
                "single-source-unicast",
                SingleSourceNode::nodes(&assignment),
                $adv,
                &assignment,
                cfg,
                link,
                link_seed,
            );
            let report = sim.run_to_completion();
            let (tx, scheduled, _) = sim.link_stats();
            (report, tx, tx - scheduled)
        }};
    }
    match arm {
        0 => run!(PeriodicRewiring::new(Topology::RandomTree, 3, seed)),
        _ => run!(ChurnAdversary::new(
            Topology::SparseConnected(2.0),
            2,
            3,
            seed
        )),
    }
}

fn main() {
    let base_seed = 29u64;
    let (n, k) = (24, 16);
    let seeds_per_cell = 3usize;
    println!("Lossy links: Single-Source-Unicast under message drop (n={n}, k={k})");
    println!("model: paper rounds + per-send Bernoulli drop; meter counts transmissions\n");

    let drops = [0.0, 0.1, 0.2, 0.35, 0.5];
    let arms: [(u8, &str); 2] = [(0, "rewire(tree,ρ=3)"), (1, "churn(c=2,σ=3)")];
    let jobs: Vec<(f64, u8, &str, usize)> = drops
        .iter()
        .flat_map(|&p| {
            arms.iter()
                .flat_map(move |&(arm, name)| (0..seeds_per_cell).map(move |s| (p, arm, name, s)))
        })
        .collect();
    let runs = par_map(jobs, |(p, arm, name, s)| {
        let seed = derive_seed(base_seed, ((arm as u64) << 32) | s as u64);
        let (report, tx, dropped) = run_lossy(n, k, p, arm, seed);
        (p, name, s, report, tx, dropped)
    });

    let mut table = Table::new(&[
        "adversary",
        "drop p",
        "seed#",
        "completed",
        "rounds",
        "messages",
        "dropped",
        "TC(E)",
        "residual",
    ]);
    // Baseline rounds per arm at p = 0 (seed 0) for the stretch summary.
    let mut baseline = [0u64; 2];
    for (p, name, s, report, tx, dropped) in &runs {
        if *p == 0.0 {
            assert!(report.completed, "lossless {name} seed#{s}: {report}");
        }
        if *p == 0.0 && *s == 0 {
            let arm = usize::from(*name != arms[0].1);
            baseline[arm] = report.rounds;
        }
        let _ = tx;
        table.row_owned(vec![
            name.to_string(),
            fmt_f64(*p),
            s.to_string(),
            report.completed.to_string(),
            report.rounds.to_string(),
            report.total_messages.to_string(),
            dropped.to_string(),
            report.tc().to_string(),
            fmt_f64(report.competitive_residual(1.0)),
        ]);
    }
    println!("{}", table.render());

    println!("round stretch vs lossless (seed 0):");
    for (p, name, s, report, _, _) in &runs {
        if *s == 0 && *p > 0.0 && report.completed {
            let arm = usize::from(*name != arms[0].1);
            println!(
                "  {name} p={p}: ×{:.2}",
                report.rounds as f64 / baseline[arm].max(1) as f64
            );
        }
    }
    println!("\nexpected: rounds grow with p — stalled *requests* recover when the");
    println!("adversary kills the carrying edge, but a dropped one-shot completeness");
    println!("announcement is lost for good, so very lossy runs may hit the cap.");
}
