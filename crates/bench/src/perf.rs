//! Shared measurement kernels for the substrate benches and the
//! `bench_core` summary binary, so criterion and the JSON emitter time the
//! exact same code.
//!
//! The workload mirrors what the engines do each round under the default
//! experiment adversary (periodic rewiring): commit the round's topology,
//! account the delta against the dynamic graph, and verify connectivity.
//! [`run_baseline_schedule`] drives the frozen seed data plane
//! ([`crate::baseline`]): per-round snapshot clone, `BTreeSet` tree-walk
//! diff, freshly allocated union–find. [`run_delta_schedule`] drives the
//! live data plane: `Unchanged` fast path between rewirings, sorted-merge
//! diff at boundaries, reused union–find buffer.

use crate::baseline::{BaselineDynamicGraph, BaselineGraph};
use dynspread_graph::dynamic::GraphUpdate;
use dynspread_graph::generators::Topology;
use dynspread_graph::{DynamicGraph, Edge, Graph, UnionFind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples a `period`-stable schedule of `rounds` connected topologies on
/// `n` nodes (a fresh sparse sample every `period` rounds, held in
/// between), as per-round edge lists.
pub fn sample_schedule(n: usize, rounds: usize, period: usize, seed: u64) -> Vec<Vec<Edge>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(rounds);
    let mut current: Vec<Edge> = Vec::new();
    for r in 0..rounds {
        if r % period == 0 || current.is_empty() {
            let g = Topology::SparseConnected(2.0).sample(n, &mut rng);
            current = g.edges().iter().collect();
        }
        out.push(current.clone());
    }
    out
}

/// Pre-builds the live-data-plane snapshots an adversary would hold
/// committed (construction happens outside the timed region, exactly as
/// `PeriodicRewiring` samples outside the engine's accounting path).
pub fn to_graphs(n: usize, schedule: &[Vec<Edge>]) -> Vec<Graph> {
    schedule
        .iter()
        .map(|e| Graph::from_edges(n, e.iter().copied()))
        .collect()
}

/// Pre-builds the seed-data-plane snapshots for the same schedule.
pub fn to_baseline_graphs(n: usize, schedule: &[Vec<Edge>]) -> Vec<BaselineGraph> {
    schedule
        .iter()
        .map(|e| BaselineGraph::from_edges(n, e.iter().copied()))
        .collect()
}

/// One full pass of the schedule through the **seed** data plane: the
/// adversary clones its committed snapshot every round (as the seed's
/// `PeriodicRewiring::graph_for_round` did), `advance` tree-walks both
/// `BTreeSet` differences, and connectivity allocates a fresh union–find.
/// Returns a checksum (total TC + connected rounds) so the work cannot be
/// optimized away.
pub fn run_baseline_schedule(n: usize, committed: &[BaselineGraph]) -> u64 {
    let mut dg = BaselineDynamicGraph::new(n);
    let mut connected_rounds = 0u64;
    for g in committed {
        dg.advance(g.clone());
        connected_rounds += dg.current().is_connected() as u64;
    }
    dg.topological_changes() + connected_rounds
}

/// Pre-builds the per-round [`GraphUpdate`]s an evolve-style adversary
/// hands the engine: owned `Full` snapshots at rewiring rounds (the
/// adversary samples and hands over by value — no clone in the engine),
/// `Unchanged` in between. Construction sits outside the timed region, as
/// topology sampling does in the engine.
pub fn prepare_updates(committed: &[Graph]) -> Vec<GraphUpdate> {
    committed
        .iter()
        .enumerate()
        .map(|(r, g)| {
            if r > 0 && committed[r - 1] == *g {
                GraphUpdate::Unchanged
            } else {
                GraphUpdate::Full(g.clone())
            }
        })
        .collect()
}

/// One full pass of the schedule through the **live** delta-applied data
/// plane: unchanged rounds are free, rewiring rounds take ownership of the
/// committed snapshot and sorted-merge diff it, and the connectivity
/// verdict is incremental (pure-insertion rounds on a connected graph skip
/// the union–find pass, which reuses its buffer when it does run). Returns
/// the same checksum shape as [`run_baseline_schedule`].
pub fn run_delta_schedule(n: usize, updates: Vec<GraphUpdate>) -> u64 {
    let mut dg = DynamicGraph::new(n);
    let mut uf = UnionFind::new(n);
    let mut connected_rounds = 0u64;
    let mut was_connected = false;
    for update in updates {
        dg.apply(update);
        if !(was_connected && dg.last_delta().removed.is_empty()) {
            was_connected = dg.current().is_connected_with(&mut uf);
        }
        connected_rounds += was_connected as u64;
    }
    dg.topological_changes() + connected_rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_data_planes_compute_identical_checksums() {
        let n = 64;
        let schedule = sample_schedule(n, 24, 3, 99);
        assert_eq!(
            run_baseline_schedule(n, &to_baseline_graphs(n, &schedule)),
            run_delta_schedule(n, prepare_updates(&to_graphs(n, &schedule)))
        );
    }

    #[test]
    fn schedule_is_period_stable_and_connected() {
        let n = 32;
        let schedule = sample_schedule(n, 9, 3, 5);
        assert_eq!(schedule.len(), 9);
        for chunk in schedule.chunks(3) {
            assert!(chunk.iter().all(|e| e == &chunk[0]));
        }
        for edges in &schedule {
            assert!(Graph::from_edges(n, edges.iter().copied()).is_connected());
        }
    }
}
