//! Perf-regression checking for the committed bench baselines.
//!
//! The perf artifacts (`BENCH_runtime.json` from `exp_scale`,
//! `BENCH_core.json` from `bench_core`) were, until PR 5, write-only:
//! CI regenerated them but compared them against nothing, so a scheduler
//! or data-plane regression could land silently. This module is the read
//! side: a dependency-free JSON parser (the workspace is offline — no
//! serde) plus the delta computation the `bench_check` binary uses to
//! gate CI, comparing a freshly measured run against the committed
//! baseline with a generous tolerance that absorbs runner noise.
//!
//! What is compared:
//!
//! * **runtime grid** — cells are matched on `(protocol, n)` (the fresh
//!   smoke run only has the `n = 1024` column; extra baseline cells are
//!   ignored), metrics `ns_per_round` and `ns_per_event`;
//! * **core microbenches** — the delta-data-plane costs
//!   (`advance_connectivity*` per-round nanoseconds) and the end-to-end
//!   `flooding`/`single_source` per-round costs. Baseline-vs-delta
//!   *speedups* are deliberately not gated: both sides move with the
//!   runner, so the ratio is noisier than the absolute delta cost.

use std::fmt;

/// A parsed JSON value (just enough for the bench artifacts).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64` (the artifacts' numbers all fit).
    Num(f64),
    /// A string (common escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect_literal(bytes, pos, "null", Json::Null),
        Some(b't') => expect_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape \\{}", *other as char)),
                });
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 passes through byte by byte; the input
                // is a &str, so the bytes are valid UTF-8.
                let start = *pos;
                let mut end = *pos + 1;
                while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..end]).expect("valid UTF-8"));
                *pos = end;
                let _ = b;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

/// One compared metric: a baseline value and its fresh measurement.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Human-readable metric key, e.g. `flooding/1024 ns_per_round`.
    pub key: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The freshly measured value.
    pub fresh: f64,
}

impl Delta {
    /// Relative change: `(fresh − baseline) / baseline`.
    pub fn relative(&self) -> f64 {
        if self.baseline > 0.0 {
            (self.fresh - self.baseline) / self.baseline
        } else {
            0.0
        }
    }

    /// Whether the fresh value regressed beyond the tolerance (e.g.
    /// `0.30` = 30% slower than the baseline).
    pub fn regressed(&self, tolerance: f64) -> bool {
        self.baseline > 0.0 && self.fresh > self.baseline * (1.0 + tolerance)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<44} {:>12.0} {:>12.0} {:>+8.1}%",
            self.key,
            self.baseline,
            self.fresh,
            self.relative() * 100.0
        )
    }
}

/// Pairs up the scale-grid cells of two `BENCH_runtime.json` documents by
/// `(protocol, n)` and returns the `ns_per_round`/`ns_per_event` deltas
/// for every cell present in both (a fresh `--smoke` run matches only its
/// `n = 1024` column against the committed full grid).
///
/// Cells whose *baseline* wall time is below `min_wall_ms` are skipped:
/// a single sub-50 ms run jitters far past any reasonable tolerance on a
/// shared CI runner, so tiny cells would make the gate cry wolf. Pass
/// `0.0` to gate everything.
pub fn runtime_deltas(baseline: &Json, fresh: &Json, min_wall_ms: f64) -> Vec<Delta> {
    let empty: &[Json] = &[];
    let base_cells = baseline
        .get("cells")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    let fresh_cells = fresh.get("cells").and_then(Json::as_array).unwrap_or(empty);
    let cell_key = |c: &Json| -> Option<(String, u64)> {
        Some((
            c.get("protocol")?.as_str()?.to_string(),
            c.get("n")?.as_f64()? as u64,
        ))
    };
    let mut deltas = Vec::new();
    for fc in fresh_cells {
        let Some(key) = cell_key(fc) else { continue };
        let Some(bc) = base_cells
            .iter()
            .find(|bc| cell_key(bc) == Some(key.clone()))
        else {
            continue;
        };
        let base_wall = bc.get("wall_ms").and_then(Json::as_f64).unwrap_or(f64::MAX);
        if base_wall < min_wall_ms {
            continue; // too small to measure reliably in one run
        }
        for metric in ["ns_per_round", "ns_per_event"] {
            if let (Some(b), Some(f)) = (
                bc.get(metric).and_then(Json::as_f64),
                fc.get(metric).and_then(Json::as_f64),
            ) {
                deltas.push(Delta {
                    key: format!("{}/{} {metric}", key.0, key.1),
                    baseline: b,
                    fresh: f,
                });
            }
        }
    }
    deltas
}

/// Pairs up the Byzantine-grid cells of two `BENCH_byzantine.json`
/// documents by `(protocol, fraction_pct, kind)` and returns the
/// `wall_ms` deltas for every cell present in both, with the same
/// baseline wall floor as [`runtime_deltas`].
///
/// The Byzantine grid is observational for now — there is no committed
/// baseline, so `bench_check` treats the baseline file as optional and
/// skips the comparison when it is absent. Once a baseline lands, the
/// wall floor keeps the sub-floor cells (most of the grid at `n = 24`)
/// ungated.
pub fn byzantine_deltas(baseline: &Json, fresh: &Json, min_wall_ms: f64) -> Vec<Delta> {
    let empty: &[Json] = &[];
    let base_cells = baseline
        .get("cells")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    let fresh_cells = fresh.get("cells").and_then(Json::as_array).unwrap_or(empty);
    let cell_key = |c: &Json| -> Option<(String, u64, String)> {
        Some((
            c.get("protocol")?.as_str()?.to_string(),
            c.get("fraction_pct")?.as_f64()? as u64,
            c.get("kind")?.as_str()?.to_string(),
        ))
    };
    let mut deltas = Vec::new();
    for fc in fresh_cells {
        let Some(key) = cell_key(fc) else { continue };
        let Some(bc) = base_cells
            .iter()
            .find(|bc| cell_key(bc) == Some(key.clone()))
        else {
            continue;
        };
        let base_wall = bc.get("wall_ms").and_then(Json::as_f64).unwrap_or(f64::MAX);
        if base_wall < min_wall_ms {
            continue;
        }
        if let (Some(b), Some(f)) = (
            bc.get("wall_ms").and_then(Json::as_f64),
            fc.get("wall_ms").and_then(Json::as_f64),
        ) {
            deltas.push(Delta {
                key: format!("byz {}/{}%/{} wall_ms", key.0, key.1, key.2),
                baseline: b,
                fresh: f,
            });
        }
    }
    deltas
}

/// Pairs up the fault-grid cells of two `BENCH_faults.json` documents by
/// `(protocol, crash_pct, episodes)` and returns the `wall_ms` deltas
/// for every cell present in both, with the same baseline wall floor as
/// [`runtime_deltas`]. The recovery delay is not part of the key: the
/// swept grid never reuses a `(crash %, episodes)` pair with two
/// delays, so the shorter key keeps a future delay re-tune from
/// silently orphaning every baseline cell.
pub fn faults_deltas(baseline: &Json, fresh: &Json, min_wall_ms: f64) -> Vec<Delta> {
    let empty: &[Json] = &[];
    let base_cells = baseline
        .get("cells")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    let fresh_cells = fresh.get("cells").and_then(Json::as_array).unwrap_or(empty);
    let cell_key = |c: &Json| -> Option<(String, u64, u64)> {
        Some((
            c.get("protocol")?.as_str()?.to_string(),
            c.get("crash_pct")?.as_f64()? as u64,
            c.get("episodes")?.as_f64()? as u64,
        ))
    };
    let mut deltas = Vec::new();
    for fc in fresh_cells {
        let Some(key) = cell_key(fc) else { continue };
        let Some(bc) = base_cells
            .iter()
            .find(|bc| cell_key(bc) == Some(key.clone()))
        else {
            continue;
        };
        let base_wall = bc.get("wall_ms").and_then(Json::as_f64).unwrap_or(f64::MAX);
        if base_wall < min_wall_ms {
            continue;
        }
        if let (Some(b), Some(f)) = (
            bc.get("wall_ms").and_then(Json::as_f64),
            fc.get("wall_ms").and_then(Json::as_f64),
        ) {
            deltas.push(Delta {
                key: format!("faults {}/{}%/{}ep wall_ms", key.0, key.1, key.2),
                baseline: b,
                fresh: f,
            });
        }
    }
    deltas
}

/// Pairs up the session-grid cells of two `BENCH_sessions.json`
/// documents by `(sessions, k, spacing)`.
///
/// Unlike the other grids, most of what `exp_sessions` measures is
/// *virtual*: per-session latency percentiles and the aggregate
/// envelope load are pure functions of the seeds, identical on every
/// replay of an unchanged service layer. Those deltas (`p95_latency`,
/// `messages`) are therefore gated with **no wall floor** — on a
/// healthy PR they are exactly 0%, and any drift is a behavioral change
/// in the mux or the protocols, not runner noise. The `wall_ms` delta
/// keeps the usual baseline floor from [`runtime_deltas`].
pub fn sessions_deltas(baseline: &Json, fresh: &Json, min_wall_ms: f64) -> Vec<Delta> {
    let empty: &[Json] = &[];
    let base_cells = baseline
        .get("cells")
        .and_then(Json::as_array)
        .unwrap_or(empty);
    let fresh_cells = fresh.get("cells").and_then(Json::as_array).unwrap_or(empty);
    let cell_key = |c: &Json| -> Option<(u64, u64, u64)> {
        Some((
            c.get("sessions")?.as_f64()? as u64,
            c.get("k")?.as_f64()? as u64,
            c.get("spacing")?.as_f64()? as u64,
        ))
    };
    let mut deltas = Vec::new();
    for fc in fresh_cells {
        let Some(key) = cell_key(fc) else { continue };
        let Some(bc) = base_cells.iter().find(|bc| cell_key(bc) == Some(key)) else {
            continue;
        };
        let label = format!("sessions {}x{}/{}", key.0, key.1, key.2);
        for metric in ["p95_latency", "messages"] {
            if let (Some(b), Some(f)) = (
                bc.get(metric).and_then(Json::as_f64),
                fc.get(metric).and_then(Json::as_f64),
            ) {
                deltas.push(Delta {
                    key: format!("{label} {metric}"),
                    baseline: b,
                    fresh: f,
                });
            }
        }
        let base_wall = bc.get("wall_ms").and_then(Json::as_f64).unwrap_or(f64::MAX);
        if base_wall < min_wall_ms {
            continue;
        }
        if let (Some(b), Some(f)) = (
            bc.get("wall_ms").and_then(Json::as_f64),
            fc.get("wall_ms").and_then(Json::as_f64),
        ) {
            deltas.push(Delta {
                key: format!("{label} wall_ms"),
                baseline: b,
                fresh: f,
            });
        }
    }
    deltas
}

/// The `BENCH_core.json` metrics the gate compares: the live data plane's
/// absolute per-round costs (speedup ratios are deliberately ungated).
pub fn core_deltas(baseline: &Json, fresh: &Json) -> Vec<Delta> {
    let paths: [&[&str]; 4] = [
        &["advance_connectivity_delta_ns_per_round"],
        &["advance_connectivity_4096", "delta_ns_per_round"],
        &["flooding", "ns_per_round"],
        &["single_source", "ns_per_round"],
    ];
    let lookup = |doc: &Json, path: &[&str]| -> Option<f64> {
        let mut cur = doc;
        for key in path {
            cur = cur.get(key)?;
        }
        cur.as_f64()
    };
    let mut deltas = Vec::new();
    for path in paths {
        if let (Some(b), Some(f)) = (lookup(baseline, path), lookup(fresh, path)) {
            deltas.push(Delta {
                key: format!("core {}", path.join(".")),
                baseline: b,
                fresh: f,
            });
        }
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_runtime_shape() {
        let doc = Json::parse(
            r#"{
  "k": 4,
  "smoke": false,
  "cells": [
    {"protocol": "flooding", "n": 1024, "completed": true, "ns_per_round": 66942, "ns_per_event": 66},
    {"protocol": "flooding", "n": 2048, "ns_per_round": 163346.5, "ns_per_event": 80}
  ]
}"#,
        )
        .expect("parses");
        assert_eq!(doc.get("k").and_then(Json::as_f64), Some(4.0));
        assert_eq!(doc.get("smoke"), Some(&Json::Bool(false)));
        let cells = doc.get("cells").and_then(Json::as_array).expect("array");
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[0].get("protocol").and_then(Json::as_str),
            Some("flooding")
        );
        assert_eq!(
            cells[1].get("ns_per_round").and_then(Json::as_f64),
            Some(163346.5)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn parses_escapes_and_negatives() {
        let doc = Json::parse(r#"{"s": "a\n\"b\"", "x": -2.5e2, "y": null}"#).expect("parses");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\n\"b\""));
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(-250.0));
        assert_eq!(doc.get("y"), Some(&Json::Null));
    }

    fn grid(cells: &[(&str, u64, f64, f64)]) -> Json {
        Json::Obj(vec![(
            "cells".into(),
            Json::Arr(
                cells
                    .iter()
                    .map(|&(p, n, round, event)| {
                        Json::Obj(vec![
                            ("protocol".into(), Json::Str(p.into())),
                            ("n".into(), Json::Num(n as f64)),
                            ("ns_per_round".into(), Json::Num(round)),
                            ("ns_per_event".into(), Json::Num(event)),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    #[test]
    fn runtime_deltas_match_on_protocol_and_n() {
        // Baseline: full grid. Fresh: smoke (1024 only) + a new protocol
        // absent from the baseline (ignored).
        let baseline = grid(&[
            ("flooding", 1024, 100.0, 10.0),
            ("flooding", 2048, 200.0, 20.0),
            ("single-source", 1024, 50.0, 5.0),
        ]);
        let fresh = grid(&[
            ("flooding", 1024, 120.0, 9.0),
            ("brand-new", 1024, 1.0, 1.0),
        ]);
        let deltas = runtime_deltas(&baseline, &fresh, 0.0);
        assert_eq!(deltas.len(), 2, "one matched cell, two metrics");
        assert_eq!(deltas[0].key, "flooding/1024 ns_per_round");
        assert!(deltas[0].regressed(0.15), "+20% beats a 15% tolerance");
        assert!(!deltas[0].regressed(0.30), "+20% is inside a 30% tolerance");
        assert!(!deltas[1].regressed(0.0), "ns_per_event improved");
    }

    #[test]
    fn runtime_deltas_skip_cells_below_the_wall_floor() {
        let cell = |p: &str, wall_ms: f64| {
            Json::Obj(vec![
                ("protocol".into(), Json::Str(p.into())),
                ("n".into(), Json::Num(1024.0)),
                ("wall_ms".into(), Json::Num(wall_ms)),
                ("ns_per_round".into(), Json::Num(100.0)),
                ("ns_per_event".into(), Json::Num(10.0)),
            ])
        };
        let doc = |cells: Vec<Json>| Json::Obj(vec![("cells".into(), Json::Arr(cells))]);
        let baseline = doc(vec![cell("tiny", 12.0), cell("big", 500.0)]);
        let fresh = doc(vec![cell("tiny", 9.0), cell("big", 480.0)]);
        // Floor 40 ms: the 12 ms baseline cell is too jittery to gate.
        let deltas = runtime_deltas(&baseline, &fresh, 40.0);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| d.key.starts_with("big/")));
        // Floor 0: everything is gated; missing wall_ms means "gate it".
        assert_eq!(runtime_deltas(&baseline, &fresh, 0.0).len(), 4);
    }

    #[test]
    fn core_deltas_follow_nested_paths_and_tolerate_missing() {
        let baseline = Json::parse(
            r#"{"advance_connectivity_delta_ns_per_round": 8000,
                "advance_connectivity_4096": {"delta_ns_per_round": 90000},
                "flooding": {"ns_per_round": 1500}}"#,
        )
        .unwrap();
        let fresh = Json::parse(
            r#"{"advance_connectivity_delta_ns_per_round": 9000,
                "advance_connectivity_4096": {"delta_ns_per_round": 80000},
                "flooding": {"ns_per_round": 1500},
                "single_source": {"ns_per_round": 6000}}"#,
        )
        .unwrap();
        let deltas = core_deltas(&baseline, &fresh);
        // single_source is missing from the baseline → 3 comparable keys.
        assert_eq!(deltas.len(), 3);
        assert!((deltas[0].relative() - 0.125).abs() < 1e-9);
        assert!(deltas[0].regressed(0.10));
        assert!(
            !deltas[1].regressed(0.10),
            "improvement is never a regression"
        );
    }

    #[test]
    fn byzantine_deltas_match_on_protocol_fraction_and_kind() {
        let cell = |p: &str, pct: f64, kind: &str, wall: f64| {
            Json::Obj(vec![
                ("protocol".into(), Json::Str(p.into())),
                ("fraction_pct".into(), Json::Num(pct)),
                ("kind".into(), Json::Str(kind.into())),
                ("wall_ms".into(), Json::Num(wall)),
            ])
        };
        let doc = |cells: Vec<Json>| Json::Obj(vec![("cells".into(), Json::Arr(cells))]);
        let baseline = doc(vec![
            cell("async-oblivious", 15.0, "drop-acks", 80.0),
            cell("async-oblivious", 15.0, "seq-replay", 8.0),
        ]);
        let fresh = doc(vec![
            cell("async-oblivious", 15.0, "drop-acks", 100.0),
            cell("async-oblivious", 15.0, "seq-replay", 9.0),
            cell("async-oblivious", 30.0, "drop-acks", 50.0), // no baseline
        ]);
        let deltas = byzantine_deltas(&baseline, &fresh, 40.0);
        assert_eq!(deltas.len(), 1, "sub-floor and unmatched cells skipped");
        assert_eq!(deltas[0].key, "byz async-oblivious/15%/drop-acks wall_ms");
        assert!(deltas[0].regressed(0.20), "+25% beats a 20% tolerance");
        assert_eq!(byzantine_deltas(&baseline, &fresh, 0.0).len(), 2);
    }

    #[test]
    fn faults_deltas_match_on_protocol_crash_pct_and_episodes() {
        let cell = |p: &str, pct: f64, eps: f64, wall: f64| {
            Json::Obj(vec![
                ("protocol".into(), Json::Str(p.into())),
                ("crash_pct".into(), Json::Num(pct)),
                ("episodes".into(), Json::Num(eps)),
                ("wall_ms".into(), Json::Num(wall)),
            ])
        };
        let doc = |cells: Vec<Json>| Json::Obj(vec![("cells".into(), Json::Arr(cells))]);
        let baseline = doc(vec![
            cell("async-oblivious", 20.0, 1.0, 90.0),
            cell("async-single-source", 20.0, 1.0, 6.0),
        ]);
        let fresh = doc(vec![
            cell("async-oblivious", 20.0, 1.0, 120.0),
            cell("async-single-source", 20.0, 1.0, 7.0),
            cell("async-oblivious", 10.0, 0.0, 70.0), // no baseline
        ]);
        let deltas = faults_deltas(&baseline, &fresh, 40.0);
        assert_eq!(deltas.len(), 1, "sub-floor and unmatched cells skipped");
        assert_eq!(deltas[0].key, "faults async-oblivious/20%/1ep wall_ms");
        assert!(deltas[0].regressed(0.30), "+33% beats a 30% tolerance");
        assert_eq!(faults_deltas(&baseline, &fresh, 0.0).len(), 2);
    }

    #[test]
    fn sessions_deltas_gate_virtual_metrics_without_a_wall_floor() {
        let cell = |s: f64, p95: f64, msgs: f64, wall: f64| {
            Json::Obj(vec![
                ("sessions".into(), Json::Num(s)),
                ("k".into(), Json::Num(4.0)),
                ("spacing".into(), Json::Num(100.0)),
                ("p95_latency".into(), Json::Num(p95)),
                ("messages".into(), Json::Num(msgs)),
                ("wall_ms".into(), Json::Num(wall)),
            ])
        };
        let doc = |cells: Vec<Json>| Json::Obj(vec![("cells".into(), Json::Arr(cells))]);
        let baseline = doc(vec![cell(20.0, 900.0, 5000.0, 8.0)]);
        let fresh = doc(vec![
            cell(20.0, 1300.0, 5000.0, 9.0),
            cell(40.0, 700.0, 9000.0, 20.0), // no baseline
        ]);
        // The 8 ms baseline wall is under the floor, but the virtual
        // metrics are still compared: +44% p95 is a real behavioral
        // regression, not runner jitter.
        let deltas = sessions_deltas(&baseline, &fresh, 40.0);
        assert_eq!(deltas.len(), 2, "p95 + messages; wall under the floor");
        assert_eq!(deltas[0].key, "sessions 20x4/100 p95_latency");
        assert!(deltas[0].regressed(0.30));
        assert!(!deltas[1].regressed(0.0), "messages unchanged");
        assert_eq!(sessions_deltas(&baseline, &fresh, 0.0).len(), 3);
    }

    #[test]
    fn delta_display_is_tabular() {
        let d = Delta {
            key: "flooding/1024 ns_per_round".into(),
            baseline: 100.0,
            fresh: 130.0,
        };
        let line = d.to_string();
        assert!(line.contains("+30.0%"), "{line}");
    }
}
