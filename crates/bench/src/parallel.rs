//! Thread-parallel experiment driver.
//!
//! Experiment binaries sweep `n × k × adversary × seed` grids of
//! *independent* simulations; this module fans those runs across CPU cores
//! with `std::thread::scope` (the toolchain vendor set has no rayon; scoped
//! threads need nothing more). Two properties the experiments rely on:
//!
//! * **Determinism** — every job owns its seed ([`derive_seed`] splits a
//!   base seed into per-job streams), and [`par_map`] returns results in
//!   input order regardless of scheduling, so a parallel sweep produces
//!   byte-identical tables to a sequential one.
//! * **Work stealing lite** — jobs are handed out from a shared atomic
//!   counter, so a slow simulation never stalls a whole chunk.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: `DYNSPREAD_THREADS` if set, otherwise
/// the machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("DYNSPREAD_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Derives a decorrelated per-job seed from a base seed and a job index
/// (SplitMix64 finalizer), so sweeps can grow without reseeding overlaps.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies `f` to every item on a scoped thread pool, returning results in
/// input order. `f` must be deterministic per item for reproducible sweeps.
///
/// Jobs are claimed from a shared counter, so uneven job costs balance
/// automatically. With one item (or one core) this degenerates to a plain
/// sequential map with no thread overhead.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = worker_count().min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let item = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("job claimed twice");
                let out = f(item);
                *results[i].lock().expect("result mutex poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex poisoned")
                .expect("worker skipped a job")
        })
        .collect()
}

/// Convenience: runs `f(job_index, derived_seed)` for `count` repetitions
/// in parallel, deterministic in `base_seed`.
pub fn par_runs<R: Send>(
    count: usize,
    base_seed: u64,
    f: impl Fn(usize, u64) -> R + Sync,
) -> Vec<R> {
    par_map((0..count).collect(), |i| {
        f(i, derive_seed(base_seed, i as u64))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..1000u64).collect(), |i| i * i);
        assert_eq!(out, (0..1000u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_matches_sequential_with_uneven_work() {
        let work = |i: u64| {
            // Uneven spin so jobs finish out of order.
            let mut acc = i;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let par = par_map((0..200u64).collect(), work);
        let seq: Vec<u64> = (0..200u64).map(work).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "seed collision");
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn par_runs_passes_indices_and_seeds() {
        let out = par_runs(10, 7, |i, s| (i, s));
        for (i, (idx, seed)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*seed, derive_seed(7, i as u64));
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = par_map(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
    }
}
