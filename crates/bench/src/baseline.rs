//! Frozen pre-overhaul data plane, kept **only** as a benchmark baseline.
//!
//! This is a faithful miniature of the seed implementation that the
//! delta-applied data plane replaced: a `BTreeSet`-backed edge set, a graph
//! whose per-round history is stored as full cloned snapshots, tree-walk
//! set differences for the round delta, and a freshly allocated union–find
//! per connectivity check. The `substrates` bench and the `bench_core`
//! binary drive this and the live [`dynspread_graph`] path over identical
//! schedules to quantify the speedup (recorded in `BENCH_core.json`).
//!
//! Do not use this module for anything except benchmarking.

use dynspread_graph::{Edge, NodeId, UnionFind};
use std::collections::BTreeSet;

/// The seed's `BTreeSet`-backed graph snapshot with `Vec<Vec<NodeId>>`
/// adjacency.
#[derive(Clone)]
pub struct BaselineGraph {
    n: usize,
    edges: BTreeSet<Edge>,
    adj: Vec<Vec<NodeId>>,
}

impl BaselineGraph {
    /// The empty graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        BaselineGraph {
            n,
            edges: BTreeSet::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds from an edge list (the seed's `Graph::from_edges`).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut g = BaselineGraph::empty(n);
        for e in edges {
            g.insert_edge(e);
        }
        g
    }

    /// Seed-style insert: `BTreeSet` insert plus sorted adjacency insert.
    pub fn insert_edge(&mut self, e: Edge) -> bool {
        if !self.edges.insert(e) {
            return false;
        }
        let (u, v) = e.endpoints();
        let au = &mut self.adj[u.index()];
        if let Err(pos) = au.binary_search(&v) {
            au.insert(pos, v);
        }
        let av = &mut self.adj[v.index()];
        if let Err(pos) = av.binary_search(&u) {
            av.insert(pos, u);
        }
        true
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Seed-style connectivity: a freshly allocated union–find per call.
    pub fn is_connected(&self) -> bool {
        let mut uf = UnionFind::new(self.n);
        for e in &self.edges {
            uf.union(e.lo().index(), e.hi().index());
        }
        uf.component_count() == 1 || self.n <= 1
    }
}

/// The seed's dynamic graph: tree-walk diffs and clone-per-round history.
pub struct BaselineDynamicGraph {
    current: BaselineGraph,
    insertions: u64,
    deletions: u64,
    history: Option<Vec<BaselineGraph>>,
}

impl BaselineDynamicGraph {
    /// Round 0: the empty graph.
    pub fn new(n: usize) -> Self {
        BaselineDynamicGraph {
            current: BaselineGraph::empty(n),
            insertions: 0,
            deletions: 0,
            history: None,
        }
    }

    /// History mode: clones every snapshot, as the seed did.
    pub fn with_history(n: usize) -> Self {
        let mut dg = BaselineDynamicGraph::new(n);
        dg.history = Some(vec![dg.current.clone()]);
        dg
    }

    /// Seed-style advance: `BTreeSet::difference` both ways, then install.
    pub fn advance(&mut self, next: BaselineGraph) -> (usize, usize) {
        let inserted: Vec<Edge> = next
            .edges
            .difference(&self.current.edges)
            .copied()
            .collect();
        let removed: Vec<Edge> = self
            .current
            .edges
            .difference(&next.edges)
            .copied()
            .collect();
        self.insertions += inserted.len() as u64;
        self.deletions += removed.len() as u64;
        self.current = next;
        if let Some(h) = &mut self.history {
            h.push(self.current.clone());
        }
        (inserted.len(), removed.len())
    }

    /// The current snapshot.
    pub fn current(&self) -> &BaselineGraph {
        &self.current
    }

    /// Total insertions (the paper's `TC(E)`).
    pub fn topological_changes(&self) -> u64 {
        self.insertions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynspread_graph::{DynamicGraph, Graph};

    fn e(u: u32, v: u32) -> Edge {
        Edge::new(NodeId::new(u), NodeId::new(v))
    }

    #[test]
    fn baseline_agrees_with_live_data_plane() {
        // Same schedule through both paths → same TC and connectivity.
        let schedules: Vec<Vec<Edge>> = vec![
            (1..8u32).map(|i| e(i - 1, i)).collect(),
            (1..8u32).map(|i| e(0, i)).collect(),
            (1..8u32).map(|i| e(i - 1, i)).chain([e(0, 7)]).collect(),
        ];
        let mut base = BaselineDynamicGraph::with_history(8);
        let mut live = DynamicGraph::with_history(8);
        for edges in &schedules {
            base.advance(BaselineGraph::from_edges(8, edges.iter().copied()));
            live.advance(Graph::from_edges(8, edges.iter().copied()));
            assert_eq!(base.current().is_connected(), live.current().is_connected());
            assert_eq!(base.current().edge_count(), live.current().edge_count());
        }
        assert_eq!(base.topological_changes(), live.topological_changes());
    }
}
