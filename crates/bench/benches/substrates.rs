//! Criterion benches of the substrates: graph generators, union–find,
//! token sets, the free-edge computation, and the stability enforcer.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dynspread_bench::perf::{
    prepare_updates, run_baseline_schedule, run_delta_schedule, sample_schedule,
    to_baseline_graphs, to_graphs,
};
use dynspread_core::lower_bound::{free_edge_structure, KPrimeSets};
use dynspread_graph::generators::{gnp_connected, random_tree, Topology};
use dynspread_graph::stability::StabilityEnforcer;
use dynspread_graph::{Graph, NodeId, UnionFind};
use dynspread_sim::token::{TokenId, TokenSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("random_tree", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| random_tree(n, &mut rng).edge_count());
        });
        group.bench_with_input(BenchmarkId::new("gnp_connected_p0.1", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| gnp_connected(n, 0.1, &mut rng).edge_count());
        });
        group.bench_with_input(BenchmarkId::new("near_regular_d4", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| Topology::NearRegular(4).sample(n, &mut rng).edge_count());
        });
    }
    group.finish();
}

fn bench_union_find(c: &mut Criterion) {
    c.bench_function("union_find/10k_random_unions", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let pairs: Vec<(usize, usize)> = (0..10_000)
            .map(|_| (rng.gen_range(0..4096), rng.gen_range(0..4096)))
            .collect();
        b.iter(|| {
            let mut uf = UnionFind::new(4096);
            for &(a, x) in &pairs {
                uf.union(a, x);
            }
            uf.component_count()
        });
    });
}

fn bench_token_set(c: &mut Criterion) {
    c.bench_function("token_set/union_count_k4096", |b| {
        let k = 4096;
        let mut rng = StdRng::seed_from_u64(5);
        let mut a = TokenSet::new(k);
        let mut x = TokenSet::new(k);
        for t in TokenId::all(k) {
            if rng.gen_bool(0.3) {
                a.insert(t);
            }
            if rng.gen_bool(0.3) {
                x.insert(t);
            }
        }
        b.iter(|| a.union_count(&x));
    });
}

fn bench_free_edges(c: &mut Criterion) {
    let mut group = c.benchmark_group("free_edge_structure");
    for &n in &[64usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let k = n / 2;
            let mut rng = StdRng::seed_from_u64(6);
            let kprime = KPrimeSets::sample(n, k, 0.25, &mut rng);
            let know: Vec<TokenSet> = (0..n)
                .map(|_| {
                    let mut s = TokenSet::new(k);
                    for t in TokenId::all(k) {
                        if rng.gen_bool(0.25) {
                            s.insert(t);
                        }
                    }
                    s
                })
                .collect();
            let choices: Vec<Option<TokenId>> = (0..n)
                .map(|_| Some(TokenId::new(rng.gen_range(0..k as u32))))
                .collect();
            b.iter(|| free_edge_structure(&choices, &know, &kprime).components);
        });
    }
    group.finish();
}

fn bench_stability_enforcer(c: &mut Criterion) {
    c.bench_function("stability_enforcer/100_rounds_n64", |b| {
        let n = 64;
        let mut rng = StdRng::seed_from_u64(7);
        let proposals: Vec<Graph> = (0..100)
            .map(|_| Topology::SparseConnected(2.0).sample(n, &mut rng))
            .collect();
        b.iter(|| {
            let mut enf = StabilityEnforcer::new(3);
            let mut edges = 0usize;
            for p in &proposals {
                edges += enf.clamp(p.clone()).edge_count();
            }
            edges
        });
    });
}

/// The acceptance benchmark of the data-plane overhaul: per-round
/// `DynamicGraph` update + connectivity at n = 512 under the default
/// 3-stable rewiring workload — frozen seed baseline vs. the live
/// delta-applied path. `bench_core` records the same kernels in
/// `BENCH_core.json`.
fn bench_dynamic_advance(c: &mut Criterion) {
    let n = 512;
    let rounds = 30;
    let schedule = sample_schedule(n, rounds, 3, 42);
    let baseline_graphs = to_baseline_graphs(n, &schedule);
    let graphs = to_graphs(n, &schedule);
    let mut group = c.benchmark_group("dynamic_advance_connectivity_n512");
    group.bench_function("baseline_btreeset_clone", |b| {
        b.iter(|| run_baseline_schedule(n, &baseline_graphs));
    });
    group.bench_function("delta_applied", |b| {
        b.iter_batched(
            || prepare_updates(&graphs),
            |updates| run_delta_schedule(n, updates),
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    c.bench_function("graph/bfs_distances_n256_gnp", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gnp_connected(256, 0.05, &mut rng);
        b.iter(|| g.bfs_distances(NodeId::new(0)).len());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generators, bench_union_find, bench_token_set,
              bench_free_edges, bench_stability_enforcer, bench_bfs,
              bench_dynamic_advance
}
criterion_main!(benches);
