//! Criterion benches of the dissemination algorithms (end-to-end runs at
//! fixed sizes). These measure the *simulator cost* of each algorithm;
//! the message-complexity results live in the experiment binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dynspread_bench::{
    default_adversary, run_multi_source, run_phased_flooding, run_single_source,
};
use dynspread_core::baselines::{TreeBroadcastStatic, UnicastFlooding};
use dynspread_core::oblivious::{run_oblivious_multi_source, ObliviousConfig};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};
use dynspread_graph::{Graph, NodeId};
use dynspread_sim::sim::{SimConfig, UnicastSim};
use dynspread_sim::token::TokenAssignment;

fn bench_single_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_source");
    for &(n, k) in &[(16usize, 16usize), (32, 32)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let r = run_single_source(n, k, default_adversary(seed), 1_000_000);
                    assert!(r.completed);
                    r.total_messages
                });
            },
        );
    }
    group.finish();
}

fn bench_multi_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_source");
    for &(n, k, s) in &[(16usize, 16usize, 4usize), (24, 24, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}_s{s}")),
            &(n, k, s),
            |b, &(n, k, s)| {
                let assignment = TokenAssignment::round_robin_sources(n, k, s);
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let r = run_multi_source(&assignment, default_adversary(seed), 2_000_000);
                    assert!(r.completed);
                    r.total_messages
                });
            },
        );
    }
    group.finish();
}

fn bench_phased_flooding(c: &mut Criterion) {
    let mut group = c.benchmark_group("phased_flooding");
    for &(n, k) in &[(16usize, 8usize), (32, 16)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let assignment = TokenAssignment::round_robin_sources(n, k, k.min(n));
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let r = run_phased_flooding(&assignment, default_adversary(seed), 100_000);
                    assert!(r.completed);
                    r.total_messages
                });
            },
        );
    }
    group.finish();
}

fn bench_unicast_flooding_baseline(c: &mut Criterion) {
    c.bench_function("unicast_flooding/n16_k8", |b| {
        let n = 16;
        let assignment = TokenAssignment::single_source(n, 8, NodeId::new(0));
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = UnicastSim::new(
                "unicast-flooding",
                UnicastFlooding::nodes(&assignment),
                default_adversary(seed),
                &assignment,
                SimConfig::with_max_rounds(100_000),
            );
            let r = sim.run_to_completion();
            assert!(r.completed);
            r.total_messages
        });
    });
}

fn bench_tree_broadcast_baseline(c: &mut Criterion) {
    c.bench_function("tree_broadcast_static/n16_k32", |b| {
        let n = 16;
        let assignment = TokenAssignment::single_source(n, 32, NodeId::new(0));
        b.iter(|| {
            let mut sim = UnicastSim::new(
                "tree-broadcast",
                TreeBroadcastStatic::nodes(NodeId::new(0), &assignment),
                StaticAdversary::new(Graph::cycle(n)),
                &assignment,
                SimConfig::with_max_rounds(10_000),
            );
            let r = sim.run_to_completion();
            assert!(r.completed);
            r.total_messages
        });
    });
}

fn bench_rlnc_gossip(c: &mut Criterion) {
    c.bench_function("rlnc_gossip/n16", |b| {
        let n = 16;
        let assignment = TokenAssignment::n_gossip(n);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = dynspread_sim::sim::BroadcastSim::new(
                "rlnc",
                dynspread_core::network_coding::RlncNode::nodes(&assignment, seed),
                PeriodicRewiring::new(Topology::RandomTree, 1, seed),
                &assignment,
                SimConfig::with_max_rounds(10_000),
            );
            let r = sim.run_to_completion();
            assert!(r.completed);
            r.rounds
        });
    });
}

fn bench_leader_election(c: &mut Criterion) {
    use dynspread_core::leader_election::{run_election, ElectionMode};
    let mut group = c.benchmark_group("leader_election");
    for mode in [ElectionMode::Eager, ElectionMode::OnChange] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}_n32")),
            &mode,
            |b, &mode| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let adv = PeriodicRewiring::new(Topology::RandomTree, 3, seed);
                    let (report, converged) = run_election(32, mode, adv, 100_000);
                    assert!(converged);
                    report.total_messages
                });
            },
        );
    }
    group.finish();
}

fn bench_oblivious_two_phase(c: &mut Criterion) {
    c.bench_function("oblivious_two_phase/n16_k16", |b| {
        let n = 16usize;
        let k = 16usize;
        let assignment = TokenAssignment::round_robin_sources(n, k, n);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = ObliviousConfig {
                seed,
                source_threshold: Some(1.0),
                center_probability: Some(0.25),
                ..ObliviousConfig::default()
            };
            let out = run_oblivious_multi_source(
                &assignment,
                PeriodicRewiring::new(Topology::Gnp(0.3), 3, seed + 1),
                PeriodicRewiring::new(Topology::RandomTree, 3, seed + 2),
                &cfg,
            );
            assert!(out.completed());
            out.total_messages()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_source, bench_multi_source, bench_phased_flooding,
              bench_unicast_flooding_baseline, bench_tree_broadcast_baseline,
              bench_oblivious_two_phase, bench_rlnc_gossip, bench_leader_election
}
criterion_main!(benches);
