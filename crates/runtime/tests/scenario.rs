//! Acceptance tests for the [`Scenario`] builder: the fault and
//! Byzantine axes — historically separate driver families — must
//! compose in one run, with tracing stacked on top, and the whole
//! composition must stay a pure function of its seeds.

use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::NodeId;
use dynspread_runtime::byzantine::{MisbehaviorKind, MisbehaviorPlan};
use dynspread_runtime::faults::{FaultPlan, RecoveryMode};
use dynspread_runtime::link::{DropLink, LinkModelExt};
use dynspread_runtime::trace::JsonlTracer;
use dynspread_runtime::Scenario;
use dynspread_sim::TokenAssignment;

/// The ISSUE's composition acceptance scenario: crash-recovery faults,
/// a partition/heal episode, and 15% malicious nodes in a single run.
/// Honest live coverage must be reported, and the audit must stay sound
/// (no honest node indicted) even though crashes now interleave with
/// misbehavior in the transcripts.
#[test]
fn faults_byzantine_and_tracing_compose_in_one_scenario_run() {
    let n = 20usize;
    let k = 8usize;
    let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
    let faults = FaultPlan::crash_recovery(n, 0.2, 40, 160, RecoveryMode::DurableSnapshot, 5)
        .with_random_partition(60, 420);
    let byz = MisbehaviorPlan::uniform(n, 0.15, MisbehaviorKind::FalseClaims, 21);
    let tracer = JsonlTracer::new();

    let run = |tr: Option<JsonlTracer>| {
        let mut s = Scenario::from_assignment(assignment.clone())
            .topology(PeriodicRewiring::new(Topology::RandomTree, 3, 12))
            .link(DropLink::new(0.25).with_jitter(2))
            .seed(17)
            .faults(faults.clone())
            .byzantine(byz.clone())
            .name("composed-acceptance");
        if let Some(tr) = tr {
            s = s.trace(tr);
        }
        s.run_single_source()
    };
    let out = run(Some(tracer.clone()));

    // Both axes actually fired.
    assert!(out.report.crashes > 0, "{}", out.report);
    assert!(out.report.recoveries > 0, "{}", out.report);
    assert_eq!(out.report.partition_episodes, 1, "{}", out.report);
    assert_eq!(out.report.byzantine_nodes, byz.byzantine_nodes());
    assert_eq!(out.report.byzantine_nodes, 3, "15% of 20");

    // Honest live coverage is reported on both axes' terms: the nodes
    // that are up AND honest at the end of the run.
    assert!((0.0..=1.0).contains(&out.live_coverage));
    assert!((0.0..=1.0).contains(&out.honest_coverage));

    // Soundness under composition: crashes and heals in the transcript
    // stream never get an honest node indicted.
    assert!(out.evidence.iter().all(|e| byz.is_malicious(e.culprit)));
    assert_eq!(out.report.violations_detected, out.evidence.len() as u64);

    // The trace captured the composed run.
    let trace = tracer.take_jsonl();
    assert!(!trace.is_empty());

    // The whole composition replays byte-identically (trace included).
    let tracer2 = JsonlTracer::new();
    let again = run(Some(tracer2.clone()));
    assert_eq!(format!("{out:?}"), format!("{again:?}"));
    assert_eq!(trace, tracer2.take_jsonl());
}

/// Composing an *empty* fault plan and an *honest* Byzantine plan must
/// be invisible: same engine report as the bare Scenario run, except
/// for the audit bookkeeping counters an honest audit legitimately
/// stamps (all zero violations).
#[test]
fn neutral_plans_compose_invisibly() {
    let n = 10usize;
    let assignment = TokenAssignment::single_source(n, 5, NodeId::new(0));
    let base = || {
        Scenario::from_assignment(assignment.clone())
            .topology(PeriodicRewiring::new(Topology::RandomTree, 3, 4))
            .link(DropLink::new(0.2))
            .seed(23)
    };
    let bare = base().run_single_source();
    let neutral = base()
        .faults(FaultPlan::none(n))
        .byzantine(MisbehaviorPlan::honest(n))
        .run_single_source();

    assert_eq!(format!("{:?}", bare.event), format!("{:?}", neutral.event));
    assert_eq!(neutral.report.violations_detected, 0);
    assert_eq!(neutral.report.byzantine_nodes, 0);
    assert!(neutral.evidence.is_empty());
    assert_eq!(bare.completed, neutral.completed);
}
