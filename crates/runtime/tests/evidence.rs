//! Property tests of the accountability auditor's two contracts:
//!
//! * **Soundness** — an honest node is never indicted: honest runs
//!   produce zero evidence, and in mixed runs every culprit is one of
//!   the plan's malicious nodes, across all three async protocols and
//!   arbitrary drop/duplication/jitter.
//! * **Completeness** — planted misbehavior that actually injects is
//!   always pinned to the planted culprit (every injected false claim or
//!   replayed transfer is on the culprit's own transcript, which is all
//!   the auditor needs).
//! * **Determinism** — verdicts are byte-identical under seeded replay.

use dynspread_core::walk::elect_centers;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};
use dynspread_graph::{Graph, NodeId};
use dynspread_runtime::byzantine::{
    run_byzantine_multi_source, run_byzantine_oblivious, run_byzantine_single_source,
    MisbehaviorKind, MisbehaviorPlan, Violation,
};
use dynspread_runtime::link::{DropLink, LinkModelExt};
use dynspread_runtime::protocol::{AsyncConfig, AsyncObliviousConfig};
use dynspread_sim::token::TokenAssignment;
use proptest::prelude::*;

/// Two-phase config forcing the walk phase at test scales.
fn two_phase_config(seed: u64) -> AsyncObliviousConfig {
    AsyncObliviousConfig {
        seed,
        source_threshold: Some(1.0),
        center_probability: Some(0.25),
        phase1_deadline: 20_000,
        phase1_max_time: 50_000,
        ..AsyncObliviousConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Honest runs of all three protocols yield zero evidence, whatever
    /// the link does.
    #[test]
    fn auditor_is_sound_on_honest_runs(
        n in 6usize..11,
        drop in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        seed in 0u64..1_000,
    ) {
        let link = || DropLink::new(drop).duplicating(dup).with_jitter(2);
        let plan = MisbehaviorPlan::honest(n);

        let ss = TokenAssignment::single_source(n, 4, NodeId::new(0));
        let out = run_byzantine_single_source(
            &ss,
            StaticAdversary::new(Graph::complete(n)),
            link(),
            2,
            seed,
            AsyncConfig::default(),
            &plan,
            200_000,
        );
        prop_assert!(out.evidence.is_empty(), "ss honest indicted: {:?}", out.evidence);
        prop_assert_eq!(out.report.byzantine_nodes, 0);
        prop_assert_eq!(out.report.violations_detected, 0);

        let ms = TokenAssignment::round_robin_sources(n, 6, 3);
        let out = run_byzantine_multi_source(
            &ms,
            PeriodicRewiring::new(Topology::Gnp(0.5), 3, seed ^ 1),
            link(),
            2,
            seed,
            AsyncConfig::default(),
            &plan,
            200_000,
        );
        prop_assert!(out.evidence.is_empty(), "ms honest indicted: {:?}", out.evidence);

        let obl = TokenAssignment::n_gossip(n);
        let out = run_byzantine_oblivious(
            &obl,
            StaticAdversary::new(Graph::complete(n)),
            PeriodicRewiring::new(Topology::RandomTree, 3, seed ^ 2),
            link(),
            link(),
            &two_phase_config(seed),
            &plan,
        );
        prop_assert!(out.evidence.is_empty(), "obl honest indicted: {:?}", out.evidence);
        prop_assert_eq!(out.stolen_recovered, 0, "honest runs never take the fallback");
    }

    /// In mixed runs — every misbehavior kind present — the auditor only
    /// ever indicts nodes the plan marked malicious.
    #[test]
    fn auditor_never_indicts_an_honest_node(
        n in 8usize..12,
        fraction in 0.2f64..0.45,
        drop in 0.0f64..0.3,
        seed in 0u64..1_000,
    ) {
        let link = || DropLink::new(drop).duplicating(0.2).with_jitter(2);
        let plan = MisbehaviorPlan::with_kinds(n, fraction, &MisbehaviorKind::ALL, seed);
        prop_assert!(plan.byzantine_nodes() >= 1);

        let ss = TokenAssignment::single_source(n, 5, NodeId::new(0));
        let out = run_byzantine_single_source(
            &ss,
            StaticAdversary::new(Graph::complete(n)),
            link(),
            2,
            seed,
            AsyncConfig::default(),
            &plan,
            200_000,
        );
        for e in &out.evidence {
            prop_assert!(plan.is_malicious(e.culprit), "honest {} indicted: {:?}", e.culprit, e);
        }

        let ms = TokenAssignment::round_robin_sources(n, 6, 3);
        let out = run_byzantine_multi_source(
            &ms,
            StaticAdversary::new(Graph::complete(n)),
            link(),
            2,
            seed,
            AsyncConfig::default(),
            &plan,
            200_000,
        );
        for e in &out.evidence {
            prop_assert!(plan.is_malicious(e.culprit), "honest {} indicted: {:?}", e.culprit, e);
        }

        let obl = TokenAssignment::n_gossip(n);
        let out = run_byzantine_oblivious(
            &obl,
            StaticAdversary::new(Graph::complete(n)),
            PeriodicRewiring::new(Topology::RandomTree, 3, seed ^ 2),
            link(),
            link(),
            &two_phase_config(seed),
            &plan,
        );
        for e in &out.evidence {
            prop_assert!(plan.is_malicious(e.culprit), "honest {} indicted: {:?}", e.culprit, e);
        }
    }

    /// Every *injected* false completeness claim is on the culprit's own
    /// transcript, so injection implies indictment of exactly that node.
    #[test]
    fn planted_false_claims_are_always_pinned(
        seed in 0u64..1_000,
        drop in 0.0f64..0.3,
    ) {
        let n = 8;
        let culprit = NodeId::new(3); // not the source: starts incomplete
        let assignment = TokenAssignment::single_source(n, 6, NodeId::new(0));
        let plan = MisbehaviorPlan::plant(n, culprit, MisbehaviorKind::FalseClaims, seed);
        let out = run_byzantine_single_source(
            &assignment,
            StaticAdversary::new(Graph::complete(n)),
            DropLink::new(drop).with_jitter(1),
            2,
            seed,
            AsyncConfig::default(),
            &plan,
            200_000,
        );
        if out.injected > 0 {
            prop_assert!(
                out.evidence.iter().any(|e| e.culprit == culprit
                    && matches!(e.violation, Violation::FalseCompleteness { .. })),
                "{} injected claims, no indictment: {:?}",
                out.injected,
                out.evidence
            );
        }
        for e in &out.evidence {
            prop_assert_eq!(e.culprit, culprit);
        }
    }

    /// Same for planted transfer replay/equivocation in the walk phase.
    #[test]
    fn planted_replay_is_always_pinned(seed in 0u64..1_000) {
        let n = 10;
        let assignment = TokenAssignment::n_gossip(n);
        let cfg = two_phase_config(seed);
        // Plant on a non-center so the node actually walks (centers hold).
        let centers = elect_centers(n, 0.25, seed);
        let culprit = NodeId::all(n)
            .find(|v| !centers[v.index()])
            .expect("p=0.25 never elects everyone at n=10");
        let plan = MisbehaviorPlan::plant(n, culprit, MisbehaviorKind::SeqReplay, seed);
        let out = run_byzantine_oblivious(
            &assignment,
            StaticAdversary::new(Graph::complete(n)),
            PeriodicRewiring::new(Topology::RandomTree, 3, seed ^ 2),
            DropLink::new(0.2).with_jitter(1),
            DropLink::new(0.2).with_jitter(1),
            &cfg,
            &plan,
        );
        if out.injected > 0 {
            prop_assert!(
                out.evidence.iter().any(|e| e.culprit == culprit
                    && matches!(
                        e.violation,
                        Violation::Equivocation { .. } | Violation::SeqReplay { .. }
                    )),
                "{} injected replays, no indictment: {:?}",
                out.injected,
                out.evidence
            );
        }
        for e in &out.evidence {
            prop_assert_eq!(e.culprit, culprit);
        }
    }
}

/// Fixed-seed smoke: the planted attacks actually fire (the conditional
/// proptests above are vacuous if injection never happens).
#[test]
fn planted_attacks_inject_and_convict() {
    let n = 8;
    let assignment = TokenAssignment::single_source(n, 6, NodeId::new(0));
    let culprit = NodeId::new(3);
    let plan = MisbehaviorPlan::plant(n, culprit, MisbehaviorKind::FalseClaims, 11);
    let out = run_byzantine_single_source(
        &assignment,
        StaticAdversary::new(Graph::complete(n)),
        DropLink::new(0.2).with_jitter(1),
        2,
        11,
        AsyncConfig::default(),
        &plan,
        200_000,
    );
    assert!(out.injected > 0, "planted false-claimer never fired");
    assert!(
        out.evidence
            .iter()
            .any(|e| e.culprit == culprit
                && matches!(e.violation, Violation::FalseCompleteness { .. })),
        "no conviction: {:?}",
        out.evidence
    );
    assert_eq!(out.report.byzantine_nodes, 1);
    assert!(out.report.violations_detected >= 1);
    assert_eq!(out.report.evidence_verdicts, 1);
}

/// A false center claim is convicted from the election flags alone.
#[test]
fn false_center_claim_is_convicted() {
    let n = 10;
    let assignment = TokenAssignment::n_gossip(n);
    let mut cfg = two_phase_config(5);
    cfg.center_probability = Some(0.0); // nobody is a real center
    let culprit = NodeId::new(4);
    let plan = MisbehaviorPlan::plant(n, culprit, MisbehaviorKind::FalseClaims, 5);
    let out = run_byzantine_oblivious(
        &assignment,
        StaticAdversary::new(Graph::complete(n)),
        PeriodicRewiring::new(Topology::RandomTree, 3, 7),
        DropLink::new(0.1).with_jitter(1),
        DropLink::new(0.1).with_jitter(1),
        &cfg,
        &plan,
    );
    assert!(out.injected > 0, "planted false center never announced");
    assert!(
        out.evidence
            .iter()
            .any(|e| e.culprit == culprit && e.violation == Violation::FalseCenterClaim),
        "no conviction: {:?}",
        out.evidence
    );
    for e in &out.evidence {
        assert_eq!(e.culprit, culprit, "honest node indicted: {e:?}");
    }
}

/// Verdicts are byte-identical under seeded replay, misbehavior and all.
#[test]
fn verdicts_are_replay_identical() {
    let n = 10;
    let assignment = TokenAssignment::n_gossip(n);
    let plan = MisbehaviorPlan::with_kinds(n, 0.3, &MisbehaviorKind::ALL, 29);
    let run = || {
        run_byzantine_oblivious(
            &assignment,
            StaticAdversary::new(Graph::complete(n)),
            PeriodicRewiring::new(Topology::RandomTree, 3, 31),
            DropLink::new(0.25).duplicating(0.2).with_jitter(2),
            DropLink::new(0.25).duplicating(0.2).with_jitter(2),
            &two_phase_config(29),
            &plan,
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(
        format!("{:?}", a.evidence),
        format!("{:?}", b.evidence),
        "verdicts must be byte-identical"
    );
    assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.stolen_recovered, b.stolen_recovered);
}
