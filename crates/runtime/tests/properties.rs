//! Property tests of the runtime's delivery and determinism guarantees:
//!
//! * with drop probability 0 and duplication 0, every transmission is
//!   delivered **exactly once**;
//! * seeded lossy/jittery/duplicating runs are **replay-identical**: the
//!   same seed reproduces the same execution byte-for-byte, in both the
//!   synchronizer adapters and the asynchronous event engine.

use dynspread_core::single_source::SingleSourceNode;
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::{PeriodicRewiring, StaticAdversary};
use dynspread_graph::NodeId;
use dynspread_runtime::engine::{EventCtx, EventProtocol, EventSim, StopReason};
use dynspread_runtime::link::{LinkModelExt, PerfectLink};
use dynspread_runtime::sync::UnicastSynchronizer;
use dynspread_sim::sim::SimConfig;
use dynspread_sim::token::TokenAssignment;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Event-protocol test node: announces its ID to all neighbors at start,
/// counts the copies it receives per sender, and optionally re-broadcasts
/// a few times on a timer (to generate nontrivial event streams).
#[derive(Default)]
struct Announcer {
    seen: BTreeMap<u32, u64>,
    retries: u32,
    max_retries: u32,
}

impl Announcer {
    fn with_retries(max_retries: u32) -> Self {
        Announcer {
            max_retries,
            ..Announcer::default()
        }
    }
}

impl EventProtocol for Announcer {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut EventCtx<'_, u32>) {
        let me = ctx.me().value();
        ctx.broadcast(me);
        if self.max_retries > 0 {
            ctx.set_timer(2, 0);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: &u32, _ctx: &mut EventCtx<'_, u32>) {
        *self.seen.entry(*msg).or_insert(0) += 1;
    }

    fn on_timer(&mut self, _id: u64, ctx: &mut EventCtx<'_, u32>) {
        if self.retries < self.max_retries {
            self.retries += 1;
            let me = ctx.me().value();
            ctx.broadcast(me);
            ctx.set_timer(2, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drop 0 / duplication 0 ⇒ exactly-once delivery: engine counters
    /// agree, and every node receives each neighbor's announcement exactly
    /// once (static topology, arbitrary fixed latency).
    #[test]
    fn perfect_links_deliver_exactly_once(
        n in 2usize..24,
        latency in 0u64..5,
        seed in 0u64..1_000,
    ) {
        let nodes: Vec<Announcer> = (0..n).map(|_| Announcer::default()).collect();
        let adversary = StaticAdversary::from_topology(Topology::RandomTree, n, seed);
        let link = PerfectLink.lossy(0.0).duplicating(0.0).with_latency(latency);
        let mut sim = EventSim::new(nodes, adversary, link, 4, seed ^ 0xA5A5);
        let report = sim.run(100_000);
        prop_assert_eq!(report.stopped, StopReason::Quiescent);
        // A random tree has n−1 edges; each endpoint announces once.
        prop_assert_eq!(report.transmissions, 2 * (n as u64 - 1));
        prop_assert_eq!(report.copies_scheduled, report.transmissions);
        prop_assert_eq!(report.copies_delivered, report.transmissions);
        let g = sim.dynamic_graph().current().clone();
        for v in NodeId::all(n) {
            let seen = &sim.node(v).seen;
            prop_assert_eq!(seen.len(), g.degree(v), "{} sender set != neighbors", v);
            for (&from, &count) in seen {
                prop_assert_eq!(count, 1, "{} copies from v{} at {}", count, from, v);
                prop_assert!(g.has_edge(v, NodeId::new(from)));
            }
        }
    }

    /// The synchronizer adapter under an arbitrary lossy/jittery/
    /// duplicating link is replay-identical: same seeds ⇒ same `RunReport`
    /// bytes, same learning log, same link statistics.
    #[test]
    fn seeded_lossy_sync_runs_are_replay_identical(
        adv_seed in 0u64..500,
        link_seed in 0u64..500,
        drop_centi in 0u64..50,
        dup_centi in 0u64..30,
        jitter in 0u64..4,
    ) {
        let run = || {
            let (n, k) = (10, 6);
            let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
            let link = PerfectLink
                .duplicating(dup_centi as f64 / 100.0)
                .lossy(drop_centi as f64 / 100.0)
                .with_jitter(jitter);
            let mut sim = UnicastSynchronizer::new(
                "ss",
                SingleSourceNode::nodes(&assignment),
                PeriodicRewiring::new(Topology::RandomTree, 3, adv_seed),
                &assignment,
                SimConfig::with_max_rounds(30_000),
                link,
                link_seed,
            );
            let report = sim.run_to_completion();
            (
                format!("{report:?}"),
                format!("{:?}", sim.tracker().log()),
                sim.link_stats(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// The asynchronous event engine is replay-identical too, including
    /// timer-driven retransmissions racing lossy deliveries.
    #[test]
    fn seeded_lossy_event_runs_are_replay_identical(
        n in 3usize..16,
        adv_seed in 0u64..300,
        engine_seed in 0u64..300,
        drop_centi in 0u64..60,
    ) {
        let run = || {
            let nodes: Vec<Announcer> = (0..n).map(|_| Announcer::with_retries(4)).collect();
            let adversary = StaticAdversary::from_topology(Topology::RandomTree, n, adv_seed);
            let link = PerfectLink.lossy(drop_centi as f64 / 100.0).with_jitter(3);
            let mut sim = EventSim::new(nodes, adversary, link, 4, engine_seed);
            let report = sim.run(100_000);
            let seen: Vec<(u32, Vec<(u32, u64)>)> = NodeId::all(n)
                .map(|v| {
                    (
                        v.value(),
                        sim.node(v).seen.iter().map(|(&f, &c)| (f, c)).collect(),
                    )
                })
                .collect();
            (format!("{report:?}"), seen)
        };
        prop_assert_eq!(run(), run());
    }
}

/// Deterministic non-property check: a duplicating link inflates copies,
/// a lossy link sheds them, and the counters stay consistent.
#[test]
fn link_stat_invariants_hold_under_loss_and_duplication() {
    let (n, k) = (12, 8);
    let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
    let mut sim = UnicastSynchronizer::new(
        "ss",
        SingleSourceNode::nodes(&assignment),
        PeriodicRewiring::new(Topology::RandomTree, 3, 9),
        &assignment,
        SimConfig::with_max_rounds(200_000),
        PerfectLink.duplicating(0.3).lossy(0.2),
        13,
    );
    let report = sim.run_to_completion();
    assert!(report.completed, "{report}");
    let (tx, scheduled, delivered) = sim.link_stats();
    assert!(tx > 0);
    // Zero latency: every scheduled copy arrives within its round.
    assert_eq!(delivered, scheduled);
    assert_eq!(sim.in_flight(), 0);
}
