//! Property tests of the async ports' retransmission invariants:
//!
//! * **No token is ever un-received** — a node's knowledge is monotone:
//!   random operation sequences on the shared `DisseminationCore` never
//!   shrink it, and full executions never record a duplicate or
//!   out-of-order learning.
//! * **Dedup means at-most-once application** — under arbitrary loss,
//!   duplication, and jitter the tracker observes *exactly* `k(n−1)`
//!   learnings: every duplicate delivery (link-level or
//!   retransmission-level) is absorbed.
//! * **Ack state is monotone** — `R_v` (the acked-announcement set) and
//!   `S_v` only ever grow, and the backoff pacer's delays stay within
//!   `[base, max]`, doubling without progress and resetting with it.

use dynspread_core::dissemination::{CompletenessLedger, DisseminationCore};
use dynspread_graph::generators::Topology;
use dynspread_graph::oblivious::PeriodicRewiring;
use dynspread_graph::NodeId;
use dynspread_runtime::engine::{EventSim, StopReason};
use dynspread_runtime::link::{LinkModelExt, PerfectLink};
use dynspread_runtime::protocol::{AsyncConfig, AsyncSingleSource, Retransmitter};
use dynspread_sim::token::{TokenAssignment, TokenId};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// End-to-end at-most-once application: a lossy + duplicating +
    /// jittery link delivers arbitrary copy multisets, yet the learning
    /// log holds exactly one ⟨node, token⟩ entry per required learning,
    /// in nondecreasing epoch order (knowledge never regresses).
    #[test]
    fn lossy_duplicating_runs_apply_each_token_at_most_once(
        n in 3usize..12,
        k in 1usize..8,
        drop_centi in 0u64..50,
        dup_centi in 0u64..40,
        jitter in 0u64..3,
        seed in 0u64..500,
    ) {
        let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
        let link = PerfectLink
            .duplicating(dup_centi as f64 / 100.0)
            .lossy(drop_centi as f64 / 100.0)
            .with_jitter(jitter);
        let mut sim = EventSim::with_tracking(
            AsyncSingleSource::nodes(&assignment, AsyncConfig::default()),
            PeriodicRewiring::new(Topology::RandomTree, 3, seed),
            link,
            2,
            seed ^ 0xFACE,
            &assignment,
        );
        let report = sim.run(1_000_000);
        prop_assert_eq!(report.stopped, StopReason::Complete, "{}", report);
        prop_assert_eq!(report.learnings, (k * (n - 1)) as u64);
        let tracker = sim.tracker().expect("tracking enabled");
        let mut seen = BTreeSet::new();
        let mut last_round = 0;
        for l in tracker.log() {
            prop_assert!(seen.insert((l.node, l.token)), "duplicate learning {:?}", l);
            prop_assert!(l.round >= last_round, "learning log went backwards");
            last_round = l.round;
        }
        // Dedup bookkeeping is consistent: every duplicate token delivery
        // was counted, none was applied.
        for v in NodeId::all(n) {
            prop_assert!(tracker.knowledge(v).is_full());
        }
    }

    /// Knowledge monotonicity of the shared decision core under random
    /// accept/release/assign interleavings: the known set only grows, a
    /// second application of the same token always reports `false`, and
    /// one assignment pass never hands out the same token twice.
    #[test]
    fn core_knowledge_is_monotone_and_assignment_distinct(
        k in 1usize..40,
        ops in prop::collection::vec((0u8..4, 0u32..40), 1..120),
    ) {
        let assignment = TokenAssignment::single_source(2, k, NodeId::new(0));
        let mut core = DisseminationCore::from_assignment(NodeId::new(1), &assignment);
        let mut applied = BTreeSet::new();
        let mut last_count = 0usize;
        for (op, raw) in ops {
            let t = TokenId::new(raw % k as u32);
            match op {
                0 => {
                    let newly = core.accept_token(t);
                    prop_assert_eq!(newly, applied.insert(t), "at-most-once violated");
                }
                1 => core.release(t),
                2 => {
                    core.refill();
                    let mut pass = BTreeSet::new();
                    while let Some(t) = core.assign_next() {
                        prop_assert!(pass.insert(t), "pass assigned {} twice", t);
                        prop_assert!(!applied.contains(&t), "requested a held token");
                    }
                }
                _ => {
                    // A lone assignment (async port's per-neighbor path).
                    core.refill();
                    if let Some(t) = core.assign_next() {
                        prop_assert!(!applied.contains(&t));
                    }
                }
            }
            let count = core.known_tokens().count();
            prop_assert!(count >= last_count, "knowledge shrank");
            last_count = count;
            prop_assert_eq!(count, applied.len());
        }
    }

    /// Ack-state monotonicity: arbitrary interleavings of announcements
    /// and acks only ever grow `S_v` and `R_v`; repeats are never news.
    #[test]
    fn ledger_ack_state_is_monotone(
        n in 1usize..20,
        ops in prop::collection::vec((prop::bool::ANY, 0u32..20), 1..100),
    ) {
        let mut ledger = CompletenessLedger::new(n);
        let mut complete = BTreeSet::new();
        let mut informed = BTreeSet::new();
        for (is_ack, raw) in ops {
            let u = NodeId::new(raw % n as u32);
            if is_ack {
                prop_assert_eq!(ledger.mark_informed(u), informed.insert(u));
            } else {
                prop_assert_eq!(ledger.note_peer_complete(u), complete.insert(u));
            }
            // Monotone: everything ever recorded is still recorded.
            for &v in &complete {
                prop_assert!(ledger.peer_complete(v));
            }
            prop_assert_eq!(ledger.informed_count(), informed.len());
        }
    }

    /// Backoff pacing: delays stay within `[base, max]`, are nondecreasing
    /// while no progress is noted, and snap back to `base` on progress.
    #[test]
    fn backoff_delays_are_bounded_and_reset_on_progress(
        base in 1u64..8,
        span in 0u64..6,
        progress_at in prop::collection::vec(prop::bool::ANY, 1..40),
    ) {
        let max = base << span;
        let mut pacer = Retransmitter::new(AsyncConfig {
            base_interval: base,
            max_interval: max,
        });
        let mut prev = base;
        for made_progress in progress_at {
            if made_progress {
                pacer.note_progress();
            }
            let d = pacer.next_delay();
            prop_assert!((base..=max).contains(&d), "delay {} outside [{}, {}]", d, base, max);
            if made_progress {
                prop_assert_eq!(d, base, "progress must reset the interval");
            } else {
                prop_assert!(d >= prev.min(max), "interval shrank without progress");
            }
            prev = d;
        }
    }
}

/// Deterministic end-to-end check of the ack-monotonicity claim: under a
/// perfect link every node's acked-peer count only grows, and the run's
/// retransmission counters stay zero (nothing to retransmit when nothing
/// is lost and the cascade outruns every heartbeat).
#[test]
fn perfect_zero_latency_run_needs_no_retransmission() {
    let (n, k) = (10, 6);
    let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
    let mut sim = EventSim::with_tracking(
        AsyncSingleSource::nodes(&assignment, AsyncConfig::default()),
        PeriodicRewiring::new(Topology::RandomTree, 3, 9),
        PerfectLink,
        1,
        4,
        &assignment,
    );
    let report = sim.run(100_000);
    assert_eq!(report.stopped, StopReason::Complete, "{report}");
    assert_eq!(report.learnings, (k * (n - 1)) as u64);
    for v in NodeId::all(n) {
        let node = sim.node(v);
        assert_eq!(
            node.retransmitted_requests(),
            0,
            "{v}: zero-latency cascade completes before any heartbeat"
        );
        assert_eq!(node.duplicate_tokens(), 0, "{v}: nothing duplicates");
        assert!(node.acked_peers() < n);
        assert!(node.is_complete());
    }
}
