//! Total-order conformance of the calendar-queue [`EventQueue`] against
//! the `BinaryHeap` min-queue it replaced.
//!
//! The queue's contract is a *total* order: ascending `(time, scheduling
//! order)`. The reference model here is exactly what the old
//! implementation was — a binary heap of `(time, seq)` keys with `seq`
//! assigned from a monotone counter at scheduling time — so any
//! divergence in pop sequence is a regression in the replay-identity
//! foundation. Workloads are seeded and mix the shapes that stress a
//! calendar queue: same-tick bursts (the synchronizers schedule a whole
//! round's messages at one tick), short link latencies, far-future timers
//! (the `Retransmitter` backoff caps and beyond, past the wheel horizon),
//! and interleaved schedule/pop with a monotone `now`.

use dynspread_runtime::event::{EventQueue, VirtualTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The pre-calendar-queue implementation, reduced to its essentials.
struct HeapQueue {
    heap: BinaryHeap<Reverse<(VirtualTime, u64, u32)>>,
    next_seq: u64,
}

impl HeapQueue {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: VirtualTime, payload: u32) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, payload)));
    }

    fn pop_due(&mut self, now: VirtualTime) -> Option<(VirtualTime, u32)> {
        if self
            .heap
            .peek()
            .is_some_and(|Reverse((at, _, _))| *at <= now)
        {
            let Reverse((at, _, payload)) = self.heap.pop().expect("peeked");
            Some((at, payload))
        } else {
            None
        }
    }

    fn pop(&mut self) -> Option<(VirtualTime, u32)> {
        self.heap.pop().map(|Reverse((at, _, p))| (at, p))
    }

    fn next_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Drives both queues through an identical seeded workload, asserting
/// after every operation that they agree.
fn conformance_run(seed: u64, ops: usize, burst_bias: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap = HeapQueue::new();
    let mut now: VirtualTime = 0;
    let mut next_payload = 0u32;
    for _ in 0..ops {
        match rng.gen_range(0..10u32) {
            // Same-tick burst: a round's worth of messages at one time.
            0..=2 => {
                let at = now + rng.gen_range(0..4u64);
                let burst = if burst_bias {
                    rng.gen_range(1..40)
                } else {
                    rng.gen_range(1..6)
                };
                for _ in 0..burst {
                    wheel.schedule(at, next_payload);
                    heap.schedule(at, next_payload);
                    next_payload += 1;
                }
            }
            // Short-latency sends (the link-model range).
            3..=4 => {
                let at = now + rng.gen_range(0..8u64);
                wheel.schedule(at, next_payload);
                heap.schedule(at, next_payload);
                next_payload += 1;
            }
            // Far-future timers: backoff caps and beyond the wheel
            // horizon (1024 ticks), forcing the overflow path.
            5 => {
                let at = now + rng.gen_range(30..5_000u64);
                wheel.schedule(at, next_payload);
                heap.schedule(at, next_payload);
                next_payload += 1;
            }
            // Drain everything due, like a synchronizer's delivery phase.
            6..=7 => loop {
                let (a, b) = (wheel.pop_due(now), heap.pop_due(now));
                assert_eq!(a, b, "pop_due({now}) diverged");
                if a.is_none() {
                    break;
                }
            },
            // Event-engine step: jump the clock to the next entry, pop it.
            8 => {
                assert_eq!(wheel.next_time(), heap.next_time());
                if let Some(at) = heap.next_time() {
                    now = now.max(at);
                    assert_eq!(wheel.pop(), heap.pop());
                }
            }
            // Let virtual time pass.
            _ => now += rng.gen_range(1..20u64),
        }
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel.is_empty(), heap.len() == 0);
    }
    // Full drain must agree to the last entry.
    loop {
        assert_eq!(wheel.next_time(), heap.next_time());
        let (a, b) = (wheel.pop(), heap.pop());
        assert_eq!(a, b, "final drain diverged");
        if a.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn calendar_queue_conforms_to_heap_order(seed in 0u64..1_000_000) {
        conformance_run(seed, 300, false);
    }

    #[test]
    fn calendar_queue_conforms_under_heavy_bursts(seed in 0u64..1_000_000) {
        conformance_run(seed, 150, true);
    }
}

#[test]
fn long_horizon_workload_with_repeated_overflow_migrations() {
    // Deterministic torture: clusters separated by gaps larger than the
    // wheel (1024 ticks), each cluster a burst plus stragglers, so every
    // cluster crosses the overflow → wheel migration.
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap = HeapQueue::new();
    let mut payload = 0u32;
    let mut t = 0u64;
    for cluster in 0..30u64 {
        t += 1_100 + cluster * 13;
        for j in 0..12 {
            let at = t + (j % 4) as u64;
            wheel.schedule(at, payload);
            heap.schedule(at, payload);
            payload += 1;
        }
    }
    loop {
        assert_eq!(wheel.next_time(), heap.next_time());
        let (a, b) = (wheel.pop(), heap.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn interleaved_schedule_pop_matches_heap_at_tick_granularity() {
    // The synchronizer pattern: schedule a round's sends at `round +
    // delay`, then drain due arrivals, round by round.
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap = HeapQueue::new();
    let mut rng = StdRng::seed_from_u64(99);
    let mut payload = 0u32;
    for round in 1..400u64 {
        for _ in 0..rng.gen_range(0..6) {
            let at = round + rng.gen_range(0..3u64);
            wheel.schedule(at, payload);
            heap.schedule(at, payload);
            payload += 1;
        }
        loop {
            let (a, b) = (wheel.pop_due(round), heap.pop_due(round));
            assert_eq!(a, b, "round {round} diverged");
            if a.is_none() {
                break;
            }
        }
    }
    assert_eq!(wheel.len(), heap.len());
}
