//! Pluggable link models: how a transmitted message actually arrives.
//!
//! A [`LinkModel`] turns one transmission into zero or more *delivery
//! copies*, each with a virtual-time delay. Models compose as wrappers:
//! [`PerfectLink`] is the base (one copy, delay 0) and each combinator
//! transforms the copies its inner model produced — so
//!
//! ```
//! use dynspread_runtime::link::{LinkModel, LinkModelExt, PerfectLink};
//!
//! let link = PerfectLink
//!     .duplicating(0.05)
//!     .lossy(0.2)
//!     .with_latency(2)
//!     .with_jitter(3);
//! assert_eq!(link.describe(), "perfect+dup(0.05)+lossy(0.2)+lat(2)+jit(3)");
//! ```
//!
//! is a channel that duplicates 5% of copies, then drops 20% of them, then
//! delays survivors by 2 ticks plus 0–3 ticks of seeded jitter. Jitter is
//! also how *reordering* arises: two messages sent over the same link in
//! consecutive ticks can arrive in either order once their random delays
//! overlap. All randomness is drawn from the runtime's single seeded
//! [`StdRng`] in scheduling order, so every run is reproducible from its
//! seed.

use crate::event::VirtualTime;
use dynspread_graph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

/// Plans the delivery fate of transmissions on a point-to-point link.
///
/// `plan` appends one delay per copy to deliver onto `fates`; appending
/// nothing models a drop. The caller clears `fates` between transmissions,
/// so wrapping models may transform every entry currently in the buffer.
pub trait LinkModel {
    /// Plans one transmission `from → to` made at virtual time `now`.
    fn plan(
        &self,
        from: NodeId,
        to: NodeId,
        now: VirtualTime,
        rng: &mut StdRng,
        fates: &mut Vec<VirtualTime>,
    );

    /// A conservative lower bound on the delay of any copy this model can
    /// ever schedule: every fate appended by `plan` is `>= min_latency()`.
    ///
    /// This is the lookahead bound a conservatively-synchronized sharded
    /// engine needs — a shard that has processed everything up to `t` can
    /// safely advance to `t + min_latency()` before looking at its peers.
    /// Combinators must keep the bound sound (never larger than a delay
    /// they can produce); `0` is always sound, and is the default.
    fn min_latency(&self) -> VirtualTime {
        0
    }

    /// Human-readable description, e.g. `perfect+lossy(0.3)`.
    fn describe(&self) -> String;
}

/// Combinator constructors, available on every link model.
pub trait LinkModelExt: LinkModel + Sized {
    /// Adds a fixed `delay` ticks to every copy.
    fn with_latency(self, delay: VirtualTime) -> FixedLatency<Self> {
        FixedLatency { delay, inner: self }
    }

    /// Adds a seeded-uniform `0..=max_extra` extra delay per copy
    /// (independent per copy — this is what makes links reorder).
    fn with_jitter(self, max_extra: VirtualTime) -> JitterLatency<Self> {
        JitterLatency {
            max_extra,
            inner: self,
        }
    }

    /// Drops each copy independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn lossy(self, p: f64) -> Lossy<Self> {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} not in [0, 1]"
        );
        Lossy { p, inner: self }
    }

    /// Duplicates each copy independently with probability `p` (the extra
    /// copy shares its original's delay; add jitter *after* duplication to
    /// spread the copies out).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn duplicating(self, p: f64) -> Duplicating<Self> {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability {p} not in [0, 1]"
        );
        Duplicating { p, inner: self }
    }

    /// Per-edge hook: routes each transmission to `self` when
    /// `pred(from, to)` holds and to `other` otherwise, so different
    /// edges of one network can have different channel characteristics
    /// (a lossy radio fringe around a wired core, one congested
    /// backbone link, …).
    ///
    /// `pred` must be a pure function of the endpoints — it is consulted
    /// on every transmission and determinism relies on it not keeping
    /// state. Edges are undirected but transmissions are not: `pred` sees
    /// `(sender, receiver)`, so an asymmetric predicate models
    /// direction-dependent links.
    fn per_edge<O, F>(self, other: O, pred: F) -> EdgeSelect<Self, O, F>
    where
        O: LinkModel,
        F: Fn(NodeId, NodeId) -> bool,
    {
        EdgeSelect {
            matched: self,
            other,
            pred,
        }
    }
}

impl<L: LinkModel> LinkModelExt for L {}

/// The identity channel: every transmission arrives exactly once with zero
/// delay. Under this model the synchronizer adapters reproduce the
/// synchronous engines byte-for-byte.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectLink;

impl LinkModel for PerfectLink {
    fn plan(
        &self,
        _from: NodeId,
        _to: NodeId,
        _now: VirtualTime,
        _rng: &mut StdRng,
        fates: &mut Vec<VirtualTime>,
    ) {
        fates.push(0);
    }

    fn min_latency(&self) -> VirtualTime {
        0
    }

    fn describe(&self) -> String {
        "perfect".to_string()
    }
}

/// A plain Bernoulli-drop channel with zero latency — the canonical lossy
/// link of the conformance/stress suites. Identical to
/// `PerfectLink.lossy(p)`, packaged as a named constructor so test
/// matrices read as `DropLink::new(0.3)`.
pub type DropLink = Lossy<PerfectLink>;

impl DropLink {
    /// Creates a link dropping each transmission independently with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        PerfectLink.lossy(p)
    }
}

/// See [`LinkModelExt::per_edge`]: a two-way switch between link models,
/// keyed on the transmission's endpoints.
#[derive(Clone, Copy, Debug)]
pub struct EdgeSelect<A, B, F> {
    matched: A,
    other: B,
    pred: F,
}

impl<A, B, F> LinkModel for EdgeSelect<A, B, F>
where
    A: LinkModel,
    B: LinkModel,
    F: Fn(NodeId, NodeId) -> bool,
{
    fn plan(
        &self,
        from: NodeId,
        to: NodeId,
        now: VirtualTime,
        rng: &mut StdRng,
        fates: &mut Vec<VirtualTime>,
    ) {
        if (self.pred)(from, to) {
            self.matched.plan(from, to, now, rng, fates);
        } else {
            self.other.plan(from, to, now, rng, fates);
        }
    }

    fn min_latency(&self) -> VirtualTime {
        // Either branch can carry a transmission, so only their common
        // lower bound is sound.
        self.matched.min_latency().min(self.other.min_latency())
    }

    fn describe(&self) -> String {
        format!(
            "per-edge({} | {})",
            self.matched.describe(),
            self.other.describe()
        )
    }
}

/// Adds a fixed delay to every copy of the inner model.
#[derive(Clone, Copy, Debug)]
pub struct FixedLatency<L> {
    delay: VirtualTime,
    inner: L,
}

impl<L: LinkModel> LinkModel for FixedLatency<L> {
    fn plan(
        &self,
        from: NodeId,
        to: NodeId,
        now: VirtualTime,
        rng: &mut StdRng,
        fates: &mut Vec<VirtualTime>,
    ) {
        let start = fates.len();
        self.inner.plan(from, to, now, rng, fates);
        for d in &mut fates[start..] {
            *d += self.delay;
        }
    }

    fn min_latency(&self) -> VirtualTime {
        // Every inner copy is shifted by exactly `delay`.
        self.inner.min_latency() + self.delay
    }

    fn describe(&self) -> String {
        format!("{}+lat({})", self.inner.describe(), self.delay)
    }
}

/// Adds independent seeded-uniform extra delay per copy.
#[derive(Clone, Copy, Debug)]
pub struct JitterLatency<L> {
    max_extra: VirtualTime,
    inner: L,
}

impl<L: LinkModel> LinkModel for JitterLatency<L> {
    fn plan(
        &self,
        from: NodeId,
        to: NodeId,
        now: VirtualTime,
        rng: &mut StdRng,
        fates: &mut Vec<VirtualTime>,
    ) {
        let start = fates.len();
        self.inner.plan(from, to, now, rng, fates);
        if self.max_extra > 0 {
            for d in &mut fates[start..] {
                *d += rng.gen_range(0..=self.max_extra);
            }
        }
    }

    fn min_latency(&self) -> VirtualTime {
        // Jitter only ever adds (the extra draw can be 0).
        self.inner.min_latency()
    }

    fn describe(&self) -> String {
        format!("{}+jit({})", self.inner.describe(), self.max_extra)
    }
}

/// Drops each copy of the inner model independently with probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Lossy<L> {
    p: f64,
    inner: L,
}

impl<L: LinkModel> LinkModel for Lossy<L> {
    fn plan(
        &self,
        from: NodeId,
        to: NodeId,
        now: VirtualTime,
        rng: &mut StdRng,
        fates: &mut Vec<VirtualTime>,
    ) {
        let start = fates.len();
        self.inner.plan(from, to, now, rng, fates);
        if self.p > 0.0 {
            // In-place compaction over this transmission's copies; one
            // `gen_bool` per copy keeps the draw order deterministic.
            let mut keep = start;
            for i in start..fates.len() {
                let dropped = rng.gen_bool(self.p);
                if !dropped {
                    fates[keep] = fates[i];
                    keep += 1;
                }
            }
            fates.truncate(keep);
        }
    }

    fn min_latency(&self) -> VirtualTime {
        // Dropping copies never changes a surviving copy's delay.
        self.inner.min_latency()
    }

    fn describe(&self) -> String {
        format!("{}+lossy({})", self.inner.describe(), self.p)
    }
}

/// Duplicates each copy of the inner model independently with probability
/// `p`; the duplicate inherits its original's delay.
#[derive(Clone, Copy, Debug)]
pub struct Duplicating<L> {
    p: f64,
    inner: L,
}

impl<L: LinkModel> LinkModel for Duplicating<L> {
    fn plan(
        &self,
        from: NodeId,
        to: NodeId,
        now: VirtualTime,
        rng: &mut StdRng,
        fates: &mut Vec<VirtualTime>,
    ) {
        let start = fates.len();
        self.inner.plan(from, to, now, rng, fates);
        if self.p > 0.0 {
            let end = fates.len();
            for i in start..end {
                if rng.gen_bool(self.p) {
                    let d = fates[i];
                    fates.push(d);
                }
            }
        }
    }

    fn min_latency(&self) -> VirtualTime {
        // Duplicates inherit their original's delay.
        self.inner.min_latency()
    }

    fn describe(&self) -> String {
        format!("{}+dup({})", self.inner.describe(), self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan_once(link: &impl LinkModel, rng: &mut StdRng) -> Vec<VirtualTime> {
        let mut fates = Vec::new();
        link.plan(NodeId::new(0), NodeId::new(1), 10, rng, &mut fates);
        fates
    }

    #[test]
    fn perfect_link_is_one_copy_zero_delay() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(plan_once(&PerfectLink, &mut rng), vec![0]);
    }

    #[test]
    fn fixed_latency_shifts_every_copy() {
        let mut rng = StdRng::seed_from_u64(1);
        let link = PerfectLink.with_latency(4);
        assert_eq!(plan_once(&link, &mut rng), vec![4]);
    }

    #[test]
    fn jitter_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let link = PerfectLink.with_latency(1).with_jitter(3);
        for _ in 0..200 {
            for d in plan_once(&link, &mut rng) {
                assert!((1..=4).contains(&d), "delay {d} out of range");
            }
        }
    }

    #[test]
    fn lossy_zero_never_drops_and_one_always_drops() {
        let mut rng = StdRng::seed_from_u64(3);
        let never = PerfectLink.lossy(0.0);
        let always = PerfectLink.lossy(1.0);
        for _ in 0..100 {
            assert_eq!(plan_once(&never, &mut rng).len(), 1);
            assert!(plan_once(&always, &mut rng).is_empty());
        }
    }

    #[test]
    fn lossy_rate_is_roughly_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let link = PerfectLink.lossy(0.3);
        let delivered: usize = (0..10_000).map(|_| plan_once(&link, &mut rng).len()).sum();
        assert!((6_500..7_500).contains(&delivered), "got {delivered}");
    }

    #[test]
    fn duplication_adds_copies() {
        let mut rng = StdRng::seed_from_u64(5);
        let link = PerfectLink.duplicating(1.0);
        assert_eq!(plan_once(&link, &mut rng), vec![0, 0]);
        let none = PerfectLink.duplicating(0.0);
        assert_eq!(plan_once(&none, &mut rng).len(), 1);
    }

    #[test]
    fn composition_order_is_reflected_in_description() {
        let link = PerfectLink.duplicating(0.1).lossy(0.2).with_latency(1);
        assert_eq!(link.describe(), "perfect+dup(0.1)+lossy(0.2)+lat(1)");
    }

    #[test]
    fn drop_link_is_named_lossy_perfect() {
        let mut rng = StdRng::seed_from_u64(6);
        let link = DropLink::new(0.0);
        assert_eq!(plan_once(&link, &mut rng), vec![0]);
        assert_eq!(link.describe(), PerfectLink.lossy(0.0).describe());
        assert!(plan_once(&DropLink::new(1.0), &mut rng).is_empty());
    }

    #[test]
    fn per_edge_routes_by_endpoints() {
        let mut rng = StdRng::seed_from_u64(7);
        // Transmissions out of node 0 get 5 ticks of latency; the rest are
        // dropped outright.
        let link = PerfectLink
            .with_latency(5)
            .per_edge(PerfectLink.lossy(1.0), |from, _to| from == NodeId::new(0));
        let mut fates = Vec::new();
        link.plan(NodeId::new(0), NodeId::new(1), 0, &mut rng, &mut fates);
        assert_eq!(fates, vec![5]);
        fates.clear();
        link.plan(NodeId::new(1), NodeId::new(0), 0, &mut rng, &mut fates);
        assert!(fates.is_empty(), "reverse direction takes the other model");
        assert_eq!(
            link.describe(),
            "per-edge(perfect+lat(5) | perfect+lossy(1))"
        );
    }

    #[test]
    fn min_latency_bounds_every_planned_fate() {
        // Structural expectations per combinator.
        assert_eq!(PerfectLink.min_latency(), 0);
        assert_eq!(PerfectLink.with_latency(4).min_latency(), 4);
        assert_eq!(PerfectLink.with_latency(4).with_jitter(3).min_latency(), 4);
        assert_eq!(PerfectLink.with_latency(4).lossy(0.5).min_latency(), 4);
        assert_eq!(
            PerfectLink.with_latency(4).duplicating(0.5).min_latency(),
            4
        );
        assert_eq!(
            PerfectLink
                .with_latency(2)
                .per_edge(PerfectLink.with_latency(5), |from, _| from
                    == NodeId::new(0))
                .min_latency(),
            2,
            "per-edge takes the smaller branch bound"
        );
        // Soundness: no planned fate ever undercuts the bound.
        let link = PerfectLink
            .with_latency(3)
            .duplicating(0.4)
            .lossy(0.3)
            .with_jitter(5);
        let bound = link.min_latency();
        assert_eq!(bound, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            for d in plan_once(&link, &mut rng) {
                assert!(d >= bound, "fate {d} under the min_latency bound {bound}");
            }
        }
    }

    #[test]
    fn same_seed_same_fates() {
        let link = PerfectLink.duplicating(0.3).lossy(0.4).with_jitter(5);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100)
                .map(|_| plan_once(&link, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
