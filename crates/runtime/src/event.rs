//! The virtual clock and the deterministic event queue.
//!
//! Everything in the runtime is driven by one queue of scheduled entries
//! ordered by `(time, scheduling order)`: entries pop in ascending virtual
//! time, FIFO within a tick. Because the tiebreak is the order in which
//! entries were scheduled, the ordering is *total* and independent of any
//! container internals — two runs that schedule the same entries in the
//! same order pop them in the same order, which is the foundation of the
//! runtime's replay-identical determinism guarantee.
//!
//! The implementation is a **calendar queue** (a timing wheel): a
//! power-of-two array of buckets, one virtual-time tick per bucket, each
//! bucket a plain FIFO. Scheduling appends to the target tick's bucket in
//! O(1); popping sweeps an occupancy bitmap to the next non-empty bucket
//! (lazy sweep, amortized O(1) at simulation message volumes). Entries
//! beyond the wheel's horizon — far-future retransmission timers at their
//! backoff caps, mostly — wait in an overflow list and migrate into the
//! wheel when a pop reaches them. The former `BinaryHeap` implementation
//! paid O(log E) per operation with `E` in the hundreds of thousands at
//! `n ≥ 4096`; the wheel's buckets make both ends of the queue
//! constant-time, and the FIFO-per-tick structure makes the `(time,
//! scheduling order)` total order a property of the layout instead of a
//! comparator invariant.

/// A point on the runtime's virtual clock, in abstract ticks.
///
/// The synchronizer adapters equate one tick with one synchronous round;
/// the event engine treats ticks as an opaque discrete time base and maps
/// them onto adversary rounds via its epoch length.
pub type VirtualTime = u64;

/// Wheel size: buckets per revolution. Covers this many ticks of
/// look-ahead before entries spill into the overflow list.
const SLOTS: usize = 1024;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Occupancy bitmap words (one bit per bucket).
const OCC_WORDS: usize = SLOTS / 64;

/// A deterministic min-queue of scheduled payloads: ascending virtual
/// time, FIFO within a tick.
///
/// One contract difference from a general priority queue: entries cannot
/// be scheduled *into the past*. Once an entry at time `t` has been
/// popped, scheduling at a time `< t` panics — the engines only ever
/// schedule at `now + delay`, so a violation indicates a corrupted clock.
///
/// # Examples
///
/// ```
/// use dynspread_runtime::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "late");
/// q.schedule(2, "early");
/// q.schedule(2, "early-second");
/// assert_eq!(q.pop_due(2), Some((2, "early")));
/// assert_eq!(q.pop_due(2), Some((2, "early-second")));
/// assert_eq!(q.pop_due(2), None); // "late" is not due yet
/// assert_eq!(q.next_time(), Some(5));
/// ```
pub struct EventQueue<T> {
    /// One FIFO bucket per tick of the current wheel window.
    slots: Vec<std::collections::VecDeque<T>>,
    /// Bit `i` set ⇔ `slots[i]` is non-empty.
    occupancy: [u64; OCC_WORDS],
    /// First tick of the wheel window; the window is `[base, base+SLOTS)`.
    /// Invariant: `base ≤ floor`, so every schedulable time inside the
    /// horizon maps to exactly one bucket.
    base: VirtualTime,
    /// Sweep hint: no bucket before `cursor` is occupied
    /// (`base ≤ cursor`). Advances over empty buckets during sweeps and
    /// rewinds when something is scheduled behind it.
    cursor: VirtualTime,
    /// Largest time popped so far — the "no scheduling into the past"
    /// watermark.
    floor: VirtualTime,
    /// Entries at or beyond the wheel horizon, in scheduling order.
    overflow: Vec<(VirtualTime, T)>,
    /// Earliest overflow time (`u64::MAX` when `overflow` is empty).
    overflow_min: VirtualTime,
    /// Scratch for overflow migration (retained to avoid reallocation).
    overflow_scratch: Vec<(VirtualTime, T)>,
    wheel_len: usize,
    len: usize,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..SLOTS)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            occupancy: [0; OCC_WORDS],
            base: 0,
            cursor: 0,
            floor: 0,
            overflow: Vec::new(),
            overflow_min: VirtualTime::MAX,
            overflow_scratch: Vec::new(),
            wheel_len: 0,
            len: 0,
        }
    }

    /// Schedules `payload` at virtual time `at`. Entries scheduled at the
    /// same time pop in scheduling order (FIFO within a tick).
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than an already-popped entry's time (see
    /// the type-level contract).
    pub fn schedule(&mut self, at: VirtualTime, payload: T) {
        assert!(
            at >= self.floor,
            "scheduled into the past: t={at} but the queue has popped t={}",
            self.floor
        );
        self.len += 1;
        if at < self.base + SLOTS as u64 {
            let slot = (at & SLOT_MASK) as usize;
            self.slots[slot].push_back(payload);
            self.occupancy[slot / 64] |= 1 << (slot % 64);
            self.wheel_len += 1;
            if at < self.cursor {
                self.cursor = at;
            }
        } else {
            self.overflow.push((at, payload));
            self.overflow_min = self.overflow_min.min(at);
        }
    }

    /// The earliest pending time: sweeps the wheel's occupancy bitmap from
    /// the cursor, or falls back to the overflow minimum when the wheel is
    /// empty. Does not move the window.
    fn peek_time(&mut self) -> Option<VirtualTime> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len == 0 {
            return Some(self.overflow_min);
        }
        let horizon = self.base + SLOTS as u64;
        while self.cursor < horizon {
            let slot = self.cursor & SLOT_MASK;
            let word = (slot / 64) as usize;
            // Bits at or after `slot` within its word.
            let masked = self.occupancy[word] & (!0u64 << (slot % 64));
            if masked != 0 {
                let advance = masked.trailing_zeros() as u64 - (slot % 64);
                // Every set bit maps to a pending time in
                // `[cursor, horizon)`: passed buckets are empty and
                // beyond-horizon entries live in the overflow.
                debug_assert!(self.cursor + advance < horizon);
                self.cursor += advance;
                return Some(self.cursor);
            }
            // Jump to the next word boundary.
            self.cursor += 64 - (slot % 64);
        }
        unreachable!("wheel_len > 0 but no occupied bucket inside the window")
    }

    /// Pops the front entry of the bucket at time `at`, jumping the wheel
    /// window there first when `at` still lives in the overflow.
    fn take_at(&mut self, at: VirtualTime) -> (VirtualTime, T) {
        if self.wheel_len == 0 {
            // The wheel drained: the pop target is the overflow minimum.
            // Jump the window and migrate what fits. After this,
            // `base = floor = at`, so the base ≤ floor invariant holds.
            self.base = at;
            self.cursor = at;
            let horizon = at + SLOTS as u64;
            self.overflow_min = VirtualTime::MAX;
            let mut keep = std::mem::take(&mut self.overflow_scratch);
            for (t, payload) in self.overflow.drain(..) {
                if t < horizon {
                    let slot = (t & SLOT_MASK) as usize;
                    self.slots[slot].push_back(payload);
                    self.occupancy[slot / 64] |= 1 << (slot % 64);
                    self.wheel_len += 1;
                } else {
                    self.overflow_min = self.overflow_min.min(t);
                    keep.push((t, payload));
                }
            }
            self.overflow_scratch = std::mem::replace(&mut self.overflow, keep);
        }
        let slot = (at & SLOT_MASK) as usize;
        let payload = self.slots[slot]
            .pop_front()
            .expect("peeked bucket is occupied");
        if self.slots[slot].is_empty() {
            self.occupancy[slot / 64] &= !(1 << (slot % 64));
        }
        self.wheel_len -= 1;
        self.len -= 1;
        self.floor = at;
        (at, payload)
    }

    /// Pops the earliest entry if it is due at or before `now`.
    pub fn pop_due(&mut self, now: VirtualTime) -> Option<(VirtualTime, T)> {
        match self.peek_time() {
            Some(at) if at <= now => Some(self.take_at(at)),
            _ => None,
        }
    }

    /// Pops the earliest entry unconditionally.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        let at = self.peek_time()?;
        Some(self.take_at(at))
    }

    /// The virtual time of the earliest pending entry.
    ///
    /// Takes `&mut self` because locating the minimum advances the wheel's
    /// internal sweep cursor (the answer itself is unaffected).
    pub fn next_time(&mut self) -> Option<VirtualTime> {
        self.peek_time()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3, 'c');
        q.schedule(1, 'a');
        q.schedule(2, 'b');
        assert_eq!(q.pop(), Some((1, 'a')));
        assert_eq!(q.pop(), Some((2, 'b')));
        assert_eq!(q.pop(), Some((3, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_tick_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_due(7), Some((7, i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop_due(10), Some((10, ())));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_scheduling_keeps_total_order() {
        let mut q = EventQueue::new();
        q.schedule(2, "r2-first");
        q.schedule(1, "r1");
        q.schedule(2, "r2-second");
        assert_eq!(q.pop(), Some((1, "r1")));
        assert_eq!(q.pop(), Some((2, "r2-first")));
        assert_eq!(q.pop(), Some((2, "r2-second")));
    }

    #[test]
    fn scheduling_behind_the_sweep_cursor_rewinds_it() {
        // pop_due peeks ahead (advancing the sweep cursor to t=9), then a
        // later-but-not-yet-due tick is scheduled behind the cursor; it
        // must still pop first.
        let mut q = EventQueue::new();
        q.schedule(9, "late");
        assert_eq!(q.pop_due(3), None);
        q.schedule(5, "early");
        assert_eq!(q.pop(), Some((5, "early")));
        assert_eq!(q.pop(), Some((9, "late")));
    }

    #[test]
    fn far_future_entries_ride_the_overflow() {
        let mut q = EventQueue::new();
        // Far beyond the wheel horizon, out of order, plus a near entry.
        q.schedule(5_000_000, "far-a");
        q.schedule(3, "near");
        q.schedule(9_000_000, "very-far");
        q.schedule(5_000_000, "far-b");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((3, "near")));
        assert_eq!(q.next_time(), Some(5_000_000));
        assert_eq!(q.pop(), Some((5_000_000, "far-a")));
        assert_eq!(q.pop(), Some((5_000_000, "far-b")), "overflow keeps FIFO");
        assert_eq!(q.pop(), Some((9_000_000, "very-far")));
        assert!(q.is_empty());
    }

    #[test]
    fn near_schedules_after_a_far_peek_still_pop_first() {
        // The wheel is empty and the overflow holds a far entry; peeking
        // must NOT jump the window, or the subsequent near schedule would
        // be mis-bucketed.
        let mut q = EventQueue::new();
        q.schedule(4, 'a');
        assert_eq!(q.pop(), Some((4, 'a')));
        q.schedule(7_000, 'z');
        assert_eq!(q.pop_due(10), None); // peeks the far entry
        q.schedule(6, 'b'); // behind the far entry, ahead of the floor
        assert_eq!(q.pop_due(10), Some((6, 'b')));
        assert_eq!(q.next_time(), Some(7_000));
        assert_eq!(q.pop(), Some((7_000, 'z')));
    }

    #[test]
    fn window_jumps_across_sparse_gaps() {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        // Repeated gaps a bit larger than the wheel, interleaved with
        // pops, force repeated overflow migrations.
        for i in 0..50u64 {
            t += SLOTS as u64 + 7;
            q.schedule(t, i);
        }
        for i in 0..50u64 {
            let (at, v) = q.pop().expect("entry pending");
            assert_eq!(v, i);
            assert_eq!(at, (i + 1) * (SLOTS as u64 + 7));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn schedule_into_current_tick_while_draining() {
        let mut q = EventQueue::new();
        q.schedule(4, 0u32);
        assert_eq!(q.pop(), Some((4, 0)));
        // Same tick as the last pop: allowed, pops immediately.
        q.schedule(4, 1);
        q.schedule(5, 2);
        assert_eq!(q.pop_due(4), Some((4, 1)));
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some((5, 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        let _ = q.pop();
        q.schedule(9, ());
    }

    #[test]
    fn wheel_boundary_times_are_exact() {
        // Entries straddling a window boundary (base + SLOTS ± 1).
        let mut q = EventQueue::new();
        let edge = SLOTS as u64;
        q.schedule(edge - 1, "in-wheel");
        q.schedule(edge, "first-overflow");
        q.schedule(edge + 1, "second-overflow");
        assert_eq!(q.pop(), Some((edge - 1, "in-wheel")));
        assert_eq!(q.pop(), Some((edge, "first-overflow")));
        assert_eq!(q.pop(), Some((edge + 1, "second-overflow")));
    }
}
