//! The virtual clock and the deterministic event queue.
//!
//! Everything in the runtime is driven by one priority queue of scheduled
//! entries ordered by `(time, seq)`: `time` is a [`VirtualTime`] tick and
//! `seq` is the entry's scheduling sequence number. Because `seq` is
//! assigned from a monotone counter at scheduling time, the ordering is
//! *total* and independent of heap internals — two runs that schedule the
//! same entries in the same order pop them in the same order, which is the
//! foundation of the runtime's replay-identical determinism guarantee.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point on the runtime's virtual clock, in abstract ticks.
///
/// The synchronizer adapters equate one tick with one synchronous round;
/// the event engine treats ticks as an opaque discrete time base and maps
/// them onto adversary rounds via its epoch length.
pub type VirtualTime = u64;

/// An entry in the event queue: a payload scheduled at a virtual time.
struct Scheduled<T> {
    at: VirtualTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry
        // (smallest time, then smallest seq) on top.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic min-queue of scheduled payloads.
///
/// # Examples
///
/// ```
/// use dynspread_runtime::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "late");
/// q.schedule(2, "early");
/// q.schedule(2, "early-second");
/// assert_eq!(q.pop_due(2), Some((2, "early")));
/// assert_eq!(q.pop_due(2), Some((2, "early-second")));
/// assert_eq!(q.pop_due(2), None); // "late" is not due yet
/// assert_eq!(q.next_time(), Some(5));
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at virtual time `at`. Entries scheduled at the
    /// same time pop in scheduling order (FIFO within a tick).
    pub fn schedule(&mut self, at: VirtualTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Pops the earliest entry if it is due at or before `now`.
    pub fn pop_due(&mut self, now: VirtualTime) -> Option<(VirtualTime, T)> {
        if self.heap.peek().is_some_and(|s| s.at <= now) {
            let s = self.heap.pop().expect("peeked");
            Some((s.at, s.payload))
        } else {
            None
        }
    }

    /// Pops the earliest entry unconditionally.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// The virtual time of the earliest pending entry.
    pub fn next_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3, 'c');
        q.schedule(1, 'a');
        q.schedule(2, 'b');
        assert_eq!(q.pop(), Some((1, 'a')));
        assert_eq!(q.pop(), Some((2, 'b')));
        assert_eq!(q.pop(), Some((3, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_tick_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_due(7), Some((7, i)));
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        assert_eq!(q.pop_due(10), Some((10, ())));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_scheduling_keeps_total_order() {
        let mut q = EventQueue::new();
        q.schedule(2, "r2-first");
        q.schedule(1, "r1");
        q.schedule(2, "r2-second");
        assert_eq!(q.pop(), Some((1, "r1")));
        assert_eq!(q.pop(), Some((2, "r2-first")));
        assert_eq!(q.pop(), Some((2, "r2-second")));
    }
}
