//! The runtime's face of the two-channel observability layer.
//!
//! The core types live in `dynspread-sim` (the dependency arrow points
//! sim → runtime, and the synchronous engines need the same hooks), and
//! are re-exported here so runtime users have one import surface:
//!
//! * **Channel 1 — deterministic trace.** A [`Tracer`] installed via
//!   `set_tracer` on [`EventSim`](crate::EventSim), the synchronizers
//!   ([`UnicastSynchronizer`](crate::UnicastSynchronizer),
//!   [`BroadcastSynchronizer`](crate::BroadcastSynchronizer)), or the
//!   sync engines receives structured [`TraceRecord`]s: round/epoch
//!   boundaries, sends, per-copy link fates (scheduled / dropped /
//!   duplicated / unroutable), deliveries, timers, protocol-reported
//!   retransmissions and backoff resets, and per-node coverage deltas.
//!   Every field is a pure function of the run's seeds, so the
//!   [`JsonlTracer`]'s serialized output is **byte-identical under
//!   replay** — two same-seed traces that differ expose a determinism
//!   violation, and `dynspread_analysis::trace::first_divergence` names
//!   the first divergent decision.
//! * **Channel 2 — wall-clock profiler.** `enable_profiling` on an
//!   engine attaches a [`Profiler`] that attributes wall time to
//!   [`Phase`]s with lap-style timing and log2-bucketed histograms,
//!   surfaced as [`ProfileReport`] via `RunReport::profile` and the
//!   `exp_profile` bench bin (`BENCH_profile.json`). Wall times are not
//!   functions of the seed, so profiling output never feeds channel 1.
//!
//! Both channels are off by default; disabled hooks cost one predictable
//! branch (guarded by `Option`), which is what lets the committed
//! `BENCH_*.json` baselines hold with the tracer compiled in but off.
//!
//! For the multi-engine pipeline
//! [`run_async_oblivious_traced`](crate::protocol::run_async_oblivious_traced),
//! the [`JsonlTracer`]'s cheaply-cloneable shared-buffer handle is the
//! plumbing: install clones into each internal engine and read the
//! stitched JSONL (with `phase` boundary records) from the clone you
//! kept.

pub use dynspread_sim::profile::{Phase, PhaseReport, ProfileReport, Profiler};
pub use dynspread_sim::trace::{emit, JsonlTracer, NoopTracer, TraceRecord, Tracer};
