//! The unified `Scenario` front door: one builder for every async run.
//!
//! Historically each axis of the runtime grew its own driver —
//! `run_async_*` for honest runs, `run_faulty_*` for crash/partition
//! plans, `run_byzantine_*` for misbehavior injection — and the axes
//! could not be combined: nothing could run a crash-recovery plan *and*
//! a Byzantine plan *and* a deterministic trace in one execution. The
//! [`Scenario`] builder replaces that driver zoo with a single
//! composition point:
//!
//! ```
//! use dynspread_graph::{generators::Topology, oblivious::PeriodicRewiring};
//! use dynspread_runtime::link::{DropLink, LinkModelExt};
//! use dynspread_runtime::scenario::Scenario;
//!
//! let out = Scenario::new(8, 4)
//!     .topology(PeriodicRewiring::new(Topology::RandomTree, 3, 7))
//!     .link(DropLink::new(0.2).with_jitter(2))
//!     .seed(41)
//!     .run_single_source();
//! assert!(out.completed, "{}", out.report);
//! ```
//!
//! Every optional axis is a builder call: [`Scenario::faults`] injects a
//! [`FaultPlan`], [`Scenario::byzantine`] a [`MisbehaviorPlan`] (both at
//! once compose), [`Scenario::trace`] attaches a deterministic JSONL
//! tracer, and [`Scenario::session`] queues dissemination sessions for
//! the multi-session service layer ([`Scenario::run_sessions`]).
//!
//! # Composition rules
//!
//! The execution core *always* arms every axis — absent plans are
//! replaced by their proven-identity neutral elements
//! ([`FaultPlan::none`], [`MisbehaviorPlan::honest`]) — so composed and
//! single-axis runs go through literally the same code path:
//!
//! * the link is wrapped in [`PartitionLink`] over the fault plan (an
//!   empty plan is byte-identical to the raw link);
//! * the nodes are wrapped in
//!   [`Misbehaving`](crate::byzantine::Misbehaving) (an honest plan is
//!   byte-identical to unwrapped nodes);
//! * transcripts are recorded, and evidence audited, only when a real
//!   Byzantine plan is present (recording is observation-only either
//!   way).
//!
//! The legacy `run_faulty_*` / `run_byzantine_*` / `run_async_oblivious*`
//! drivers are now thin wrappers over this builder and remain
//! byte-identical to their historical outputs per seed (asserted by
//! `tests/legacy_identity.rs`).

use crate::byzantine::run::stamp_report;
use crate::byzantine::{check_evidence, AuditMsg, AuditSetup, Evidence, MisbehaviorPlan, Tamper};
use crate::engine::{EventReport, EventSim, StopReason};
use crate::event::VirtualTime;
use crate::faults::{coverage_over, FaultPlan, PartitionLink};
use crate::link::{LinkModel, PerfectLink};
use crate::protocol::{
    AsyncConfig, AsyncMultiSource, AsyncOblivious, AsyncObliviousConfig, AsyncSingleSource,
};
use crate::session::{SessionBoard, SessionMux, SessionSpec, SessionWorkload};
use crate::trace::{JsonlTracer, TraceRecord};
use bincodec::{Decode, Encode};
use dynspread_core::multi_source::SourceMap;
use dynspread_core::oblivious::{center_count, degree_threshold, source_threshold};
use dynspread_core::walk::elect_centers;
use dynspread_graph::adversary::Adversary;
use dynspread_graph::oblivious::StaticAdversary;
use dynspread_graph::{Graph, NodeId};
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};
use dynspread_sim::RunReport;
use std::sync::Arc;

use crate::engine::EventProtocol;

/// Builder for one fully-configured asynchronous execution.
///
/// See the [module docs](self) for the composition rules. The adversary
/// and link default to a static complete graph over perfect links; every
/// other knob has the drivers' historical default.
#[derive(Clone, Debug)]
pub struct Scenario<A = StaticAdversary, L = PerfectLink> {
    assignment: TokenAssignment,
    adversary: A,
    link: L,
    ticks_per_round: VirtualTime,
    seed: u64,
    retransmit: AsyncConfig,
    max_time: VirtualTime,
    faults: Option<FaultPlan>,
    byzantine: Option<MisbehaviorPlan>,
    tracer: Option<JsonlTracer>,
    name: Option<String>,
    sessions: Vec<SessionSpec>,
}

impl Scenario {
    /// A single-source scenario: `k` tokens at node 0, `n` nodes, static
    /// complete graph, perfect links. Override any part with the builder
    /// methods.
    pub fn new(n: usize, k: usize) -> Self {
        Scenario::from_assignment(TokenAssignment::single_source(n, k, NodeId::new(0)))
    }

    /// A scenario over an explicit token placement.
    pub fn from_assignment(assignment: TokenAssignment) -> Self {
        let n = assignment.node_count();
        Scenario {
            assignment,
            adversary: StaticAdversary::new(Graph::complete(n)),
            link: PerfectLink,
            ticks_per_round: 2,
            seed: 0,
            retransmit: AsyncConfig::default(),
            max_time: 2_000_000,
            faults: None,
            byzantine: None,
            tracer: None,
            name: None,
            sessions: Vec::new(),
        }
    }
}

impl<A, L> Scenario<A, L> {
    /// Replaces the dynamic-topology adversary.
    pub fn topology<A2: Adversary>(self, adversary: A2) -> Scenario<A2, L> {
        Scenario {
            assignment: self.assignment,
            adversary,
            link: self.link,
            ticks_per_round: self.ticks_per_round,
            seed: self.seed,
            retransmit: self.retransmit,
            max_time: self.max_time,
            faults: self.faults,
            byzantine: self.byzantine,
            tracer: self.tracer,
            name: self.name,
            sessions: self.sessions,
        }
    }

    /// Replaces the link model.
    pub fn link<L2: LinkModel>(self, link: L2) -> Scenario<A, L2> {
        Scenario {
            assignment: self.assignment,
            adversary: self.adversary,
            link,
            ticks_per_round: self.ticks_per_round,
            seed: self.seed,
            retransmit: self.retransmit,
            max_time: self.max_time,
            faults: self.faults,
            byzantine: self.byzantine,
            tracer: self.tracer,
            name: self.name,
            sessions: self.sessions,
        }
    }

    /// Replaces the token placement.
    ///
    /// # Panics
    ///
    /// Panics if session specs over a different node count were already
    /// queued.
    pub fn assignment(mut self, assignment: TokenAssignment) -> Self {
        if let Some(spec) = self.sessions.first() {
            assert_eq!(
                spec.assignment.node_count(),
                assignment.node_count(),
                "session assignment node count"
            );
        }
        self.assignment = assignment;
        self
    }

    /// Virtual ticks per topology epoch (default 2).
    pub fn ticks_per_round(mut self, ticks: VirtualTime) -> Self {
        self.ticks_per_round = ticks;
        self
    }

    /// Engine seed (links, scheduling; default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Retransmission tuning for the async ports (default
    /// [`AsyncConfig::default`]).
    pub fn retransmit(mut self, cfg: AsyncConfig) -> Self {
        self.retransmit = cfg;
        self
    }

    /// Hard cap on virtual time (default 2 000 000).
    pub fn max_time(mut self, max_time: VirtualTime) -> Self {
        self.max_time = max_time;
        self
    }

    /// Names the [`RunReport`] (defaults to a `scenario-*` name per
    /// entry point).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Injects a crash/recovery/partition plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Injects a Byzantine misbehavior plan; transcripts are recorded
    /// and audited, and the report's Byzantine counters stamped.
    pub fn byzantine(mut self, plan: MisbehaviorPlan) -> Self {
        self.byzantine = Some(plan);
        self
    }

    /// Attaches a deterministic JSONL tracer; the caller keeps a clone
    /// and reads the trace after the run.
    pub fn trace(mut self, tracer: JsonlTracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Queues one dissemination session for [`Scenario::run_sessions`].
    ///
    /// # Panics
    ///
    /// Panics if the spec's node count differs from the scenario's.
    pub fn session(mut self, spec: SessionSpec) -> Self {
        assert_eq!(
            spec.assignment.node_count(),
            self.assignment.node_count(),
            "session assignment node count"
        );
        self.sessions.push(spec);
        self
    }

    /// Queues a whole arrival trace of sessions.
    ///
    /// # Panics
    ///
    /// Panics if the workload's node count differs from the scenario's.
    pub fn workload(mut self, workload: &SessionWorkload) -> Self {
        assert_eq!(
            workload.node_count(),
            self.assignment.node_count(),
            "session assignment node count"
        );
        for spec in workload.specs() {
            self.sessions.push(spec.clone());
        }
        self
    }
}

/// Outcome of a single-phase [`Scenario`] run.
///
/// Superset of the legacy `FaultyOutcome` / `ByzantineOutcome`: every
/// field is always computed, with the unused axes' fields at their
/// neutral values (empty evidence, coverage 1.0, zero injections).
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The engine-level report.
    pub event: EventReport,
    /// The workspace-level report, with fault and Byzantine counters
    /// filled.
    pub report: RunReport,
    /// Every proven violation (empty without a Byzantine plan).
    pub evidence: Vec<Evidence>,
    /// Final per-node token knowledge.
    pub final_knowledge: Vec<TokenSet>,
    /// Mean coverage over the nodes up at the end of the run.
    pub live_coverage: f64,
    /// Mean coverage over the honest nodes.
    pub honest_coverage: f64,
    /// Misbehaving actions actually injected by the wrappers.
    pub injected: u64,
    /// Whether the run reached full dissemination.
    pub completed: bool,
}

/// Outcome of a two-phase oblivious [`Scenario`] run.
///
/// Superset of the legacy `AsyncObliviousOutcome` /
/// `FaultyObliviousOutcome` / `ByzantineObliviousOutcome`.
#[derive(Clone, Debug)]
pub struct ScenarioObliviousOutcome {
    /// Phase-1 report (absent on the few-sources fast path).
    pub phase1: Option<EventReport>,
    /// Phase-2 report.
    pub phase2: EventReport,
    /// The workspace-level report (phase-2 engine), fault counters
    /// summed over both phases, Byzantine counters from both audits.
    pub report: RunReport,
    /// Violations proven across both phases (empty without a plan).
    pub evidence: Vec<Evidence>,
    /// The elected centers (or the original sources on the fast path).
    pub centers: Vec<NodeId>,
    /// The phase-2 sources: deduplicated token owners after phase 1.
    pub sources: Vec<NodeId>,
    /// Tokens re-homed because their resolved claimant was down at the
    /// hand-off.
    pub crash_reclaimed: usize,
    /// Tokens recovered from their original holder because every
    /// claimant was destroyed by forged acks.
    pub stolen_recovered: usize,
    /// Tokens resolved to a non-center owner at the hand-off.
    pub stranded_tokens: usize,
    /// Final per-node token knowledge after phase 2.
    pub final_knowledge: Vec<TokenSet>,
    /// Mean coverage over the nodes up at the end of phase 2.
    pub live_coverage: f64,
    /// Mean coverage over the honest nodes.
    pub honest_coverage: f64,
    /// Number of malicious nodes in the plan (0 without one).
    pub byzantine_nodes: usize,
    /// Misbehaving actions injected across both phases.
    pub injected: u64,
    /// Whether phase 2 reached full dissemination.
    pub completed: bool,
}

/// Per-session result of a [`Scenario::run_sessions`] execution.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// The spec's label.
    pub label: String,
    /// When the session joined the shared network.
    pub arrival: VirtualTime,
    /// When its last node reached a full token set (None = never).
    pub completed_at: Option<VirtualTime>,
    /// `completed_at − arrival` on the shared virtual clock.
    pub latency: Option<VirtualTime>,
    /// Envelopes this session staged on the shared links.
    pub messages: u64,
    /// Envelopes delivered to this session's instances.
    pub delivered: u64,
    /// Order-sensitive chain hash over the session's envelope headers —
    /// equal across byte-identical replays.
    pub digest: u64,
    /// A session-scoped [`RunReport`]: message and completion fields are
    /// this session's own, engine-wide context (topology, faults) is
    /// carried from the aggregate run.
    pub report: RunReport,
}

/// Outcome of a multi-session service run.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// The engine-level report of the shared execution.
    pub event: EventReport,
    /// The aggregate workspace-level report.
    pub report: RunReport,
    /// One report per session, in workload order.
    pub sessions: Vec<SessionReport>,
    /// Envelopes whose payload failed to decode.
    pub decode_errors: u64,
    /// Envelopes addressed to sessions not live at the receiver.
    pub foreign_drops: u64,
}

impl ServiceOutcome {
    /// Number of sessions that reached full dissemination.
    pub fn completed_sessions(&self) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.completed_at.is_some())
            .count()
    }

    /// Sorted latencies of the completed sessions.
    pub fn latencies(&self) -> Vec<VirtualTime> {
        let mut out: Vec<VirtualTime> = self.sessions.iter().filter_map(|s| s.latency).collect();
        out.sort_unstable();
        out
    }

    /// Nearest-rank latency percentile over completed sessions
    /// (`q` in `[0, 1]`); `None` when none completed.
    pub fn latency_percentile(&self, q: f64) -> Option<VirtualTime> {
        let lats = self.latencies();
        if lats.is_empty() {
            return None;
        }
        let rank = ((q * lats.len() as f64).ceil() as usize).clamp(1, lats.len());
        Some(lats[rank - 1])
    }

    /// Total envelopes staged across all sessions.
    pub fn total_session_messages(&self) -> u64 {
        self.sessions.iter().map(|s| s.messages).sum()
    }
}

impl<A: Adversary, L: LinkModel> Scenario<A, L> {
    /// Runs [`AsyncSingleSource`] under every configured axis.
    ///
    /// # Panics
    ///
    /// Panics if a plan's node count differs from the assignment's, or
    /// sessions were queued (use [`Scenario::run_sessions`]).
    pub fn run_single_source(self) -> ScenarioOutcome {
        let nodes = AsyncSingleSource::nodes(&self.assignment, self.retransmit);
        let setup = AuditSetup::single_source(&self.assignment);
        self.execute(nodes, setup, "scenario-async-single-source")
    }

    /// Runs [`AsyncMultiSource`] under every configured axis.
    ///
    /// # Panics
    ///
    /// Panics if a plan's node count differs from the assignment's, or
    /// sessions were queued (use [`Scenario::run_sessions`]).
    pub fn run_multi_source(self) -> ScenarioOutcome {
        let (nodes, map) = AsyncMultiSource::nodes(&self.assignment, self.retransmit);
        let setup = AuditSetup::multi_source(&self.assignment, &map);
        self.execute(nodes, setup, "scenario-async-multi-source")
    }

    /// The one execution core behind the single-phase entry points: arm
    /// every axis (neutral elements when absent), run, audit, measure.
    fn execute<P>(self, nodes: Vec<P>, setup: AuditSetup, fallback: &str) -> ScenarioOutcome
    where
        P: Tamper,
        P::Msg: AuditMsg,
    {
        let Scenario {
            assignment,
            adversary,
            link,
            ticks_per_round,
            seed,
            retransmit: _,
            max_time,
            faults,
            byzantine,
            tracer,
            name,
            sessions,
        } = self;
        assert!(
            sessions.is_empty(),
            "queued sessions run through run_sessions, not the protocol drivers"
        );
        let n = assignment.node_count();
        let k = assignment.token_count();
        if let Some(plan) = &faults {
            assert_eq!(plan.node_count(), n, "plan size");
        }
        if let Some(plan) = &byzantine {
            assert_eq!(plan.node_count(), n, "plan size");
        }
        let fplan = faults.unwrap_or_else(|| FaultPlan::none(n));
        let bplan = byzantine
            .clone()
            .unwrap_or_else(|| MisbehaviorPlan::honest(n));
        let nodes = bplan.wrap(nodes);
        let mut sim = EventSim::with_tracking(
            nodes,
            adversary,
            PartitionLink::new(link, Arc::new(fplan.clone())),
            ticks_per_round,
            seed,
            &assignment,
        );
        sim.set_fault_plan(fplan);
        if byzantine.is_some() {
            sim.record_transcripts();
        }
        if let Some(tr) = &tracer {
            sim.set_tracer(tr.clone());
        }
        let event = sim.run(max_time);
        let evidence = if byzantine.is_some() {
            check_evidence(&setup, sim.transcripts())
        } else {
            Vec::new()
        };
        let name = name.unwrap_or_else(|| fallback.to_string());
        let mut report = sim.run_report(name.as_str());
        if let Some(plan) = &byzantine {
            stamp_report(&mut report, plan, &evidence);
        }
        let tracker = sim.tracker().expect("tracking enabled");
        let final_knowledge: Vec<TokenSet> = NodeId::all(n)
            .map(|v| tracker.knowledge(v).clone())
            .collect();
        let live_coverage = coverage_over(k, final_knowledge.iter(), |v| !sim.is_down(v));
        let honest_coverage = coverage_over(k, final_knowledge.iter(), |v| !bplan.is_malicious(v));
        let injected: u64 = NodeId::all(n).map(|v| sim.node(v).injected()).sum();
        let completed = event.stopped == StopReason::Complete;
        ScenarioOutcome {
            event,
            report,
            evidence,
            final_knowledge,
            live_coverage,
            honest_coverage,
            injected,
            completed,
        }
    }

    /// Runs the full two-phase oblivious pipeline under every configured
    /// axis. The scenario's adversary/link/faults drive phase 1;
    /// `adversary2`/`link2`/`faults2` drive phase 2; `cfg` supplies the
    /// pipeline's seeds and timing (the scenario's own
    /// `seed`/`ticks_per_round`/`retransmit`/`max_time` are not used, for
    /// exact compatibility with the historical drivers). A Byzantine
    /// plan applies to both phases, with both transcripts audited.
    ///
    /// The hand-off resolves each token's claimants by preferring live
    /// over down, then center over walker, then the lowest ID; a token
    /// whose every claimant was destroyed by forged acks is recovered
    /// from its original holder (`stolen_recovered`), and one whose
    /// resolved claimant is down at the hand-off is re-homed to a live
    /// knower, preferring a center (`crash_reclaimed`).
    ///
    /// # Panics
    ///
    /// Panics if a plan's node count differs from the assignment's, or
    /// sessions were queued.
    pub fn run_oblivious<A2, L2>(
        self,
        adversary2: A2,
        link2: L2,
        cfg: &AsyncObliviousConfig,
        faults2: Option<&FaultPlan>,
    ) -> ScenarioObliviousOutcome
    where
        A2: Adversary,
        L2: LinkModel,
    {
        let Scenario {
            assignment,
            adversary,
            link,
            ticks_per_round: _,
            seed: _,
            retransmit: _,
            max_time: _,
            faults,
            byzantine,
            tracer,
            name,
            sessions,
        } = self;
        assert!(
            sessions.is_empty(),
            "queued sessions run through run_sessions, not the protocol drivers"
        );
        let n = assignment.node_count();
        let k = assignment.token_count();
        if let Some(plan) = &faults {
            assert_eq!(plan.node_count(), n, "phase-1 plan size");
        }
        if let Some(plan) = faults2 {
            assert_eq!(plan.node_count(), n, "phase-2 plan size");
        }
        if let Some(plan) = &byzantine {
            assert_eq!(plan.node_count(), n, "plan size");
        }
        let name = name.unwrap_or_else(|| "scenario-async-oblivious".to_string());
        let s = assignment.sources().len();
        let threshold = cfg.source_threshold.unwrap_or_else(|| source_threshold(n));

        if (s as f64) <= threshold {
            // Few sources: the pipeline is a single multi-source run and
            // only the phase-2 axes apply. The report keeps the legacy
            // fast-path convention of a multi-source name.
            let fast_name = name
                .strip_suffix("oblivious")
                .map(|p| format!("{p}multi-source"))
                .unwrap_or_else(|| name.clone());
            if let Some(tr) = &tracer {
                tr.append(&TraceRecord::Phase { p: 2 });
            }
            let centers = assignment.sources();
            let sources = SourceMap::from_assignment(&assignment).sources().to_vec();
            let byzantine_nodes = byzantine.as_ref().map_or(0, |p| p.byzantine_nodes());
            let sub = Scenario {
                assignment,
                adversary: adversary2,
                link: link2,
                ticks_per_round: cfg.ticks_per_round,
                seed: cfg.seed ^ 0x5EED_0B71_0002u64,
                retransmit: cfg.retransmit,
                max_time: cfg.phase2_max_time,
                faults: faults2.cloned(),
                byzantine,
                tracer,
                name: Some(fast_name),
                sessions: Vec::new(),
            };
            let out = sub.run_multi_source();
            return ScenarioObliviousOutcome {
                phase1: None,
                phase2: out.event,
                report: out.report,
                evidence: out.evidence,
                centers,
                sources,
                crash_reclaimed: 0,
                stolen_recovered: 0,
                stranded_tokens: 0,
                final_knowledge: out.final_knowledge,
                live_coverage: out.live_coverage,
                honest_coverage: out.honest_coverage,
                byzantine_nodes,
                injected: out.injected,
                completed: out.completed,
            };
        }

        // ---- Phase 1: the walk phase, under every configured axis. ----
        let f = center_count(n, k);
        let p_center = cfg
            .center_probability
            .unwrap_or_else(|| (f / n as f64).min(1.0));
        let gamma = cfg
            .degree_threshold
            .unwrap_or_else(|| degree_threshold(n, f));
        let fplan1 = faults.unwrap_or_else(|| FaultPlan::none(n));
        let bplan = byzantine
            .clone()
            .unwrap_or_else(|| MisbehaviorPlan::honest(n));
        // The same election the walk nodes run internally, so
        // `is_center[v]` matches `node(v).is_center()` exactly.
        let is_center = elect_centers(n, p_center, cfg.seed);
        let centers: Vec<NodeId> = NodeId::all(n).filter(|v| is_center[v.index()]).collect();
        let nodes = bplan.wrap(AsyncOblivious::nodes(
            &assignment,
            p_center,
            gamma,
            cfg.seed,
            cfg.retransmit,
            cfg.phase1_deadline,
        ));
        let mut sim1 = EventSim::new(
            nodes,
            adversary,
            PartitionLink::new(link, Arc::new(fplan1.clone())),
            cfg.ticks_per_round,
            cfg.seed ^ 0x5EED_0B71_0001u64,
        );
        sim1.set_fault_plan(fplan1);
        if byzantine.is_some() {
            sim1.record_transcripts();
        }
        if let Some(tr) = &tracer {
            tr.append(&TraceRecord::Phase { p: 1 });
            sim1.set_tracer(tr.clone());
        }
        let phase1 = sim1.run(cfg.phase1_max_time);
        let (c1, r1, p1) = sim1.fault_counters();

        // ---- Audit phase 1 against the *inner* (honest-state) claims. ----
        let mut evidence = Vec::new();
        if byzantine.is_some() {
            let final_claims: Vec<Vec<TokenId>> = NodeId::all(n)
                .map(|v| sim1.node(v).inner().responsible_tokens().collect())
                .collect();
            let setup1 = AuditSetup::oblivious(&assignment, is_center.clone(), final_claims);
            evidence = check_evidence(&setup1, sim1.transcripts());
        }

        // ---- Crash- and Byzantine-tolerant hand-off. ----
        // Claimant preference: up beats down, then center beats walker,
        // then (scanning ascending, replacing only on strict improvement)
        // the lowest ID.
        let rank =
            |v: NodeId| -> u8 { u8::from(!sim1.is_down(v)) * 2 + u8::from(is_center[v.index()]) };
        let mut owner_of: Vec<Option<NodeId>> = vec![None; k];
        for v in NodeId::all(n) {
            for t in sim1.node(v).inner().responsible_tokens() {
                let slot = &mut owner_of[t.index()];
                match *slot {
                    None => *slot = Some(v),
                    Some(prev) => {
                        if rank(v) > rank(prev) {
                            *slot = Some(v);
                        }
                    }
                }
            }
        }
        let mut ownership = TokenAssignment::empty(n, k);
        let mut knowledge = TokenAssignment::empty(n, k);
        let mut stranded = 0usize;
        let mut crash_reclaimed = 0usize;
        let mut stolen_recovered = 0usize;
        for (ti, owner) in owner_of.iter().enumerate() {
            let t = TokenId::new(ti as u32);
            let mut v = match *owner {
                Some(v) => v,
                None => {
                    // Every claimant was destroyed (forged-ack theft):
                    // recover from the token's original holder, which
                    // still knows it (knowledge is monotone).
                    stolen_recovered += 1;
                    assignment
                        .holders(t)
                        .next()
                        .expect("every token has an initial holder")
                }
            };
            if sim1.is_down(v) {
                // Every claimant crash-stopped mid-walk. Re-home the
                // token to a live node that knows it (knowledge is
                // durable, so the crashed owner's upstream senders still
                // do), preferring a center; the original assignment
                // holder is the last resort.
                crash_reclaimed += 1;
                let knows = |u: NodeId| {
                    !sim1.is_down(u) && sim1.node(u).known_tokens().is_some_and(|kn| kn.contains(t))
                };
                v = NodeId::all(n)
                    .find(|&u| knows(u) && is_center[u.index()])
                    .or_else(|| NodeId::all(n).find(|&u| knows(u)))
                    .unwrap_or_else(|| {
                        assignment
                            .holders(t)
                            .next()
                            .expect("every token has an initial holder")
                    });
            }
            ownership.add_holder(t, v);
            if !is_center[v.index()] {
                stranded += 1;
            }
        }
        for v in NodeId::all(n) {
            let know = sim1
                .node(v)
                .known_tokens()
                .expect("walk nodes expose knowledge");
            for t in know.iter() {
                knowledge.add_holder(t, v);
            }
        }
        let map = Arc::new(SourceMap::from_assignment(&ownership));
        let sources = map.sources().to_vec();

        // ---- Phase 2: multi-source from the resolved owners. ----
        let fplan2 = faults2.cloned().unwrap_or_else(|| FaultPlan::none(n));
        let nodes2 = bplan.wrap(
            NodeId::all(n)
                .map(|v| AsyncMultiSource::new(v, &knowledge, Arc::clone(&map), cfg.retransmit))
                .collect(),
        );
        let mut sim2 = EventSim::with_tracking(
            nodes2,
            adversary2,
            PartitionLink::new(link2, Arc::new(fplan2.clone())),
            cfg.ticks_per_round,
            cfg.seed ^ 0x5EED_0B71_0002u64,
            &knowledge,
        );
        sim2.set_fault_plan(fplan2);
        if byzantine.is_some() {
            sim2.record_transcripts();
        }
        if let Some(tr) = &tracer {
            tr.append(&TraceRecord::Phase { p: 2 });
            sim2.set_tracer(tr.clone());
        }
        let phase2 = sim2.run(cfg.phase2_max_time);

        if byzantine.is_some() {
            let setup2 = AuditSetup::multi_source(&knowledge, &map);
            evidence.extend(check_evidence(&setup2, sim2.transcripts()));
        }

        let mut report = sim2.run_report(name.as_str());
        report.crashes += c1;
        report.recoveries += r1;
        report.partition_episodes += p1;
        if let Some(plan) = &byzantine {
            stamp_report(&mut report, plan, &evidence);
        }
        let tracker = sim2.tracker().expect("tracking enabled");
        let final_knowledge: Vec<TokenSet> = NodeId::all(n)
            .map(|v| tracker.knowledge(v).clone())
            .collect();
        let live_coverage = coverage_over(k, final_knowledge.iter(), |v| !sim2.is_down(v));
        let honest_coverage = coverage_over(k, final_knowledge.iter(), |v| !bplan.is_malicious(v));
        let injected: u64 = NodeId::all(n)
            .map(|v| sim1.node(v).injected() + sim2.node(v).injected())
            .sum();
        let completed = phase2.stopped == StopReason::Complete;

        ScenarioObliviousOutcome {
            phase1: Some(phase1),
            phase2,
            report,
            evidence,
            centers,
            sources,
            crash_reclaimed,
            stolen_recovered,
            stranded_tokens: stranded,
            final_knowledge,
            live_coverage,
            honest_coverage,
            byzantine_nodes: byzantine.as_ref().map_or(0, |p| p.byzantine_nodes()),
            injected,
            completed,
        }
    }

    /// Runs the queued sessions as [`AsyncSingleSource`] instances
    /// multiplexed over one shared engine and evolving topology.
    ///
    /// # Panics
    ///
    /// Panics if no sessions were queued, a fault plan's node count
    /// differs from the scenario's, or a Byzantine plan is present
    /// (misbehavior does not yet compose with the session mux).
    pub fn run_sessions(self) -> ServiceOutcome {
        let retransmit = self.retransmit;
        self.run_sessions_with(move |v, _idx, spec| {
            AsyncSingleSource::new(v, &spec.assignment, retransmit)
        })
    }

    /// Like [`Scenario::run_sessions`] but with a caller-supplied
    /// per-session protocol factory (`(node, session index, spec) →
    /// instance`); any [`EventProtocol`] whose messages implement the
    /// wire codec traits can be multiplexed.
    ///
    /// # Panics
    ///
    /// See [`Scenario::run_sessions`].
    pub fn run_sessions_with<P, F>(self, factory: F) -> ServiceOutcome
    where
        P: EventProtocol,
        P::Msg: Encode + Decode,
        F: Fn(NodeId, usize, &SessionSpec) -> P,
    {
        let Scenario {
            assignment,
            adversary,
            link,
            ticks_per_round,
            seed,
            retransmit: _,
            max_time,
            faults,
            byzantine,
            tracer,
            name,
            sessions,
        } = self;
        let n = assignment.node_count();
        assert!(
            !sessions.is_empty(),
            "no sessions queued: add .session(spec) before run_sessions"
        );
        assert!(
            byzantine.is_none(),
            "Byzantine plans do not yet compose with sessions; run them through the protocol drivers"
        );
        if let Some(plan) = &faults {
            assert_eq!(plan.node_count(), n, "plan size");
        }
        let mut workload = SessionWorkload::new(n);
        for spec in sessions {
            workload.push(spec);
        }
        let (nodes, board) = SessionMux::nodes(&workload, factory);
        let fplan = faults.unwrap_or_else(|| FaultPlan::none(n));
        let mut sim = EventSim::new(
            nodes,
            adversary,
            PartitionLink::new(link, Arc::new(fplan.clone())),
            ticks_per_round,
            seed,
        );
        sim.set_fault_plan(fplan);
        if let Some(tr) = &tracer {
            sim.set_tracer(tr.clone());
        }
        let event = sim.run(max_time);
        let name = name.unwrap_or_else(|| "session-service".to_string());
        let report = sim.run_report(name.as_str());
        let (decode_errors, foreign_drops) = NodeId::all(n)
            .map(|v| (sim.node(v).decode_errors(), sim.node(v).foreign_drops()))
            .fold((0, 0), |(d, f), (dd, ff)| (d + dd, f + ff));
        let sessions = build_session_reports(&workload, &board, &report, &sim, ticks_per_round);
        ServiceOutcome {
            event,
            report,
            sessions,
            decode_errors,
            foreign_drops,
        }
    }
}

/// Synthesizes the per-session [`RunReport`] views from the shared
/// scoreboard: session-scoped message/completion/learning fields, with
/// the engine-wide context (topology meter, fault counters) carried from
/// the aggregate report.
fn build_session_reports<P, A, L>(
    workload: &SessionWorkload,
    board: &SessionBoard,
    aggregate: &RunReport,
    sim: &EventSim<SessionMux<P>, A, L>,
    ticks_per_round: VirtualTime,
) -> Vec<SessionReport>
where
    P: EventProtocol,
    P::Msg: Encode + Decode,
    A: Adversary,
    L: LinkModel,
{
    let n = workload.node_count();
    workload
        .specs()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let stats = board.stats(i);
            let learnings: u64 = NodeId::all(n).map(|v| sim.node(v).learned(i)).sum();
            let mut report = aggregate.clone();
            report.algorithm = format!("session:{}", spec.label).into();
            report.k = spec.assignment.token_count();
            report.completed = stats.completed_at.is_some();
            report.total_messages = stats.sent;
            report.unicast_messages = stats.sent;
            report.broadcast_messages = 0;
            report.learnings = learnings;
            for class in report.by_class.iter_mut() {
                *class = 0;
            }
            if let Some(done) = stats.completed_at {
                report.rounds = done / ticks_per_round.max(1) + 1;
            }
            SessionReport {
                label: spec.label.clone(),
                arrival: spec.arrival,
                completed_at: stats.completed_at,
                latency: stats.completed_at.map(|t| t.saturating_sub(spec.arrival)),
                messages: stats.sent,
                delivered: stats.delivered,
                digest: stats.digest,
                report,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::MisbehaviorKind;
    use crate::faults::RecoveryMode;
    use crate::link::{DropLink, LinkModelExt};
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::PeriodicRewiring;

    #[test]
    fn builder_defaults_run_to_completion() {
        let out = Scenario::new(6, 3).run_single_source();
        assert!(out.completed, "{}", out.report);
        assert!(out.evidence.is_empty());
        assert_eq!(out.injected, 0);
        assert!((out.live_coverage - 1.0).abs() < 1e-12);
        assert!((out.honest_coverage - 1.0).abs() < 1e-12);
        assert_eq!(
            out.report.algorithm.as_ref(),
            "scenario-async-single-source"
        );
    }

    #[test]
    fn composed_fault_and_byzantine_axes_both_fire() {
        let n = 12;
        let fplan = FaultPlan::crash_recovery(n, 0.2, 150, 250, RecoveryMode::Amnesia, 9)
            .with_random_partition(100, 300);
        let bplan = MisbehaviorPlan::uniform(n, 0.15, MisbehaviorKind::FalseClaims, 21);
        let out = Scenario::new(n, 5)
            .topology(PeriodicRewiring::new(Topology::RandomTree, 3, 11))
            .link(DropLink::new(0.2).with_jitter(2))
            .seed(17)
            .faults(fplan)
            .byzantine(bplan.clone())
            .max_time(500_000)
            .run_single_source();
        assert!(out.report.crashes > 0, "{}", out.report);
        assert_eq!(out.report.byzantine_nodes, bplan.byzantine_nodes());
        // Evidence soundness survives composition: only malicious nodes
        // are ever indicted.
        for e in &out.evidence {
            assert!(bplan.is_malicious(e.culprit), "honest node indicted");
        }
    }

    #[test]
    fn scenario_runs_are_replay_identical() {
        let run = || {
            Scenario::new(10, 4)
                .topology(PeriodicRewiring::new(Topology::Gnp(0.4), 3, 5))
                .link(DropLink::new(0.25).with_jitter(2))
                .seed(23)
                .faults(FaultPlan::crash_recovery(
                    10,
                    0.2,
                    100,
                    200,
                    RecoveryMode::DurableSnapshot,
                    3,
                ))
                .byzantine(MisbehaviorPlan::uniform(
                    10,
                    0.2,
                    MisbehaviorKind::DropAcks,
                    4,
                ))
                .max_time(500_000)
                .run_multi_source()
        };
        let (a, b) = (run(), run());
        assert_eq!(format!("{:?}", a.event), format!("{:?}", b.event));
        assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
        assert_eq!(format!("{:?}", a.evidence), format!("{:?}", b.evidence));
    }

    #[test]
    #[should_panic(expected = "plan size")]
    fn mismatched_fault_plan_is_rejected() {
        let _ = Scenario::new(6, 3)
            .faults(FaultPlan::none(5))
            .run_single_source();
    }

    #[test]
    #[should_panic(expected = "run_sessions")]
    fn queued_sessions_cannot_run_through_protocol_drivers() {
        let _ = Scenario::new(6, 3)
            .session(SessionSpec::single_source("s0", 0, 6, 2, NodeId::new(1)))
            .run_single_source();
    }

    #[test]
    fn session_service_reports_per_session_latency() {
        let out = Scenario::new(8, 2)
            .topology(PeriodicRewiring::new(Topology::RandomTree, 3, 13))
            .link(DropLink::new(0.1).with_jitter(1))
            .seed(31)
            .session(SessionSpec::single_source("a", 0, 8, 2, NodeId::new(0)))
            .session(SessionSpec::single_source("b", 60, 8, 3, NodeId::new(5)))
            .max_time(200_000)
            .run_sessions();
        assert_eq!(out.sessions.len(), 2);
        assert_eq!(out.completed_sessions(), 2, "{}", out.report);
        let b = &out.sessions[1];
        assert_eq!(b.arrival, 60);
        assert!(b.completed_at.unwrap() > 60);
        assert_eq!(b.latency.unwrap(), b.completed_at.unwrap() - 60);
        assert_eq!(b.report.k, 3);
        assert!(b.report.completed);
        assert_eq!(b.report.total_messages, b.messages);
        assert!(out.latency_percentile(0.5).is_some());
        assert!(out.total_session_messages() > 0);
        assert_eq!(out.decode_errors, 0);
    }
}
