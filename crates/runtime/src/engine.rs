//! The asynchronous event engine: protocols driven by deliveries and
//! timers instead of rounds.
//!
//! An [`EventProtocol`] node never sees a round barrier. It reacts to
//! three stimuli — [`on_start`](EventProtocol::on_start) at time 0, one
//! [`on_message`](EventProtocol::on_message) per consumed mailbox envelope,
//! and [`on_timer`](EventProtocol::on_timer) for timers it armed itself —
//! and may send messages or arm new timers from any of them through the
//! [`EventCtx`]. The engine pops events from the seeded calendar queue in
//! `(time, scheduling order)` order, routes sends through the configured
//! [`LinkModel`], and evolves the adversarial
//! topology every `ticks_per_round` ticks, so the paper's dynamic-graph
//! adversaries keep working unchanged underneath a fully asynchronous
//! execution.
//!
//! Execution is deterministic: with the same protocols, adversary seed,
//! link model, and engine seed, two runs produce identical event sequences
//! and identical reports (property-tested in the crate's test suite).
//!
//! Two deliberate departures from the synchronous engines' policing:
//! sending to a non-neighbor is a *drop at the source*
//! ([`EventReport::unroutable`]), not a panic — see [`EventCtx::send`] —
//! and the paper's bandwidth constraint is not enforced here
//! (`EventProtocol::Msg` is an arbitrary `Clone` type; Definition 1.1
//! metering belongs to the round-based surfaces).

use crate::byzantine::transcript::{AuditMsg, Direction, MsgSummary, Transcript};
use crate::event::{EventQueue, VirtualTime};
use crate::faults::{FaultPlan, RecoveryMode};
use crate::link::LinkModel;
use crate::mailbox::Mailbox;
use dynspread_graph::adversary::Adversary;
use dynspread_graph::{DynamicGraph, NodeId, Round};
use dynspread_sim::message::MessageClass;
use dynspread_sim::profile::{self, Phase, Profiler};
use dynspread_sim::token::{TokenAssignment, TokenSet};
use dynspread_sim::trace::{emit, TraceRecord, Tracer};
use dynspread_sim::tracker::TokenTracker;
use dynspread_sim::RunReport;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One queued send: a payload plus a range of destinations in the
/// context's flat destination buffer. Storing the payload **once** per
/// logical send — not once per destination — is what makes the fan-out
/// path zero-clone: the engine clones it only per *surviving delivery
/// copy*, moving the original into the last one.
pub(crate) struct SendOp<M> {
    pub(crate) msg: M,
    pub(crate) first: u32,
    pub(crate) count: u32,
}

/// What a node may do while handling an event.
pub struct EventCtx<'a, M> {
    now: VirtualTime,
    me: NodeId,
    neighbors: &'a [NodeId],
    ops: &'a mut Vec<SendOp<M>>,
    dests: &'a mut Vec<NodeId>,
    timers: &'a mut Vec<(VirtualTime, u64)>,
    retrans: &'a mut u64,
    tracer: &'a mut Option<Box<dyn Tracer>>,
}

impl<M: Clone> EventCtx<'_, M> {
    /// The current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// This node's ID.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The node's neighbors in the *current* topology epoch, sorted by ID.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Queues a message to `to` (routed through the link model; it may be
    /// dropped, delayed, or duplicated before reaching `to`'s mailbox).
    ///
    /// The edge is the channel: if `{me, to}` is not an edge of the
    /// current topology epoch when the send is made, there is no medium
    /// and the message is dropped at the source (counted in
    /// [`EventReport::unroutable`]). Unlike the synchronous engines this
    /// is not a panic — replying to a sender whose edge has since churned
    /// away is a normal hazard of the asynchronous model, not a protocol
    /// bug.
    ///
    /// The payload is moved, not cloned: when the link schedules exactly
    /// one delivery copy (the perfect-link common case), it is the
    /// original that arrives.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.dests.push(to);
        self.ops.push(SendOp {
            msg,
            first: self.dests.len() as u32 - 1,
            count: 1,
        });
    }

    /// Queues one copy of `msg` to every current neighbor. Each link plans
    /// its fate independently.
    ///
    /// The payload is stored once and cloned only per surviving delivery
    /// copy, minus one for the move of the original — at most
    /// `fanout - 1` clones under a non-duplicating link, and none at all
    /// in allocation terms for `Copy` payloads (their `clone` is a
    /// bitwise copy).
    pub fn broadcast(&mut self, msg: M) {
        let first = self.dests.len() as u32;
        self.dests.extend_from_slice(self.neighbors);
        self.ops.push(SendOp {
            msg,
            first,
            count: self.neighbors.len() as u32,
        });
    }

    /// Arms a timer to fire at `now + delay` with the given caller-chosen
    /// id (delivered to [`EventProtocol::on_timer`]).
    pub fn set_timer(&mut self, delay: VirtualTime, id: u64) {
        self.timers.push((delay, id));
    }

    /// Reports a retransmission (a heartbeat re-send of an unanswered
    /// request or announcement). Counted in
    /// [`EventReport::retransmissions`] and traced as a `retransmit`
    /// record; call it at the site that re-stages the send.
    pub fn note_retransmission(&mut self) {
        *self.retrans += 1;
        emit(
            self.tracer,
            TraceRecord::Retransmission {
                t: self.now,
                node: self.me.value(),
            },
        );
    }

    /// Reports a backoff reset (progress observed, heartbeat interval
    /// snapped back to its base). Traced as a `backoff_reset` record; no
    /// counter — resets are interesting for trace analysis, not totals.
    pub fn note_backoff_reset(&mut self) {
        emit(
            self.tracer,
            TraceRecord::BackoffReset {
                t: self.now,
                node: self.me.value(),
            },
        );
    }

    /// Number of send ops staged so far in this dispatch — the bookmark a
    /// wrapping protocol takes before delegating to its inner handler, so
    /// it can tamper with exactly the ops the handler staged.
    pub(crate) fn staged_ops(&self) -> usize {
        self.ops.len()
    }

    /// Visits the ops staged since `start`, letting the Byzantine
    /// misbehavior layer mutate each payload in place or drop the op
    /// entirely (return `false`). The closure also sees the op's
    /// destination slice. Honest code never calls this; it exists so
    /// `Misbehaving<P>` can corrupt *outgoing* traffic without the inner
    /// protocol's cooperation.
    pub(crate) fn tamper_staged(
        &mut self,
        start: usize,
        mut f: impl FnMut(&mut M, &[NodeId]) -> bool,
    ) {
        let mut i = start;
        while i < self.ops.len() {
            let op = &mut self.ops[i];
            let dests = &self.dests[op.first as usize..(op.first + op.count) as usize];
            if f(&mut op.msg, dests) {
                i += 1;
            } else {
                // Dropping the op leaves its destination range allocated
                // but unreferenced; other ops' (first, count) ranges are
                // untouched.
                self.ops.remove(i);
            }
        }
    }

    /// Runs `f` against a sub-context of a *different* message type that
    /// stages into the caller-provided buffers, sharing this context's
    /// clock, identity, neighbor view, retransmission counter, and tracer.
    ///
    /// This is the session-multiplexing hook: `SessionMux` dispatches an
    /// inner per-session protocol through a sub-context, then re-stages
    /// the captured sends through the outer context as wire envelopes —
    /// one outer send per (op, destination) pair, in staging order, so
    /// the engine's per-copy link planning consumes the RNG stream in
    /// exactly the order the inner protocol produced sends.
    pub(crate) fn with_inner<N: Clone, R>(
        &mut self,
        ops: &mut Vec<SendOp<N>>,
        dests: &mut Vec<NodeId>,
        timers: &mut Vec<(VirtualTime, u64)>,
        f: impl FnOnce(&mut EventCtx<'_, N>) -> R,
    ) -> R {
        let mut sub = EventCtx {
            now: self.now,
            me: self.me,
            neighbors: self.neighbors,
            ops,
            dests,
            timers,
            retrans: self.retrans,
            tracer: self.tracer,
        };
        f(&mut sub)
    }
}

/// A per-node asynchronous protocol state machine.
pub trait EventProtocol {
    /// The message payload type.
    type Msg: Clone;

    /// Called once per node at virtual time 0, in ascending node order.
    fn on_start(&mut self, ctx: &mut EventCtx<'_, Self::Msg>);

    /// Called for each message copy consumed from this node's mailbox.
    fn on_message(&mut self, from: NodeId, msg: &Self::Msg, ctx: &mut EventCtx<'_, Self::Msg>);

    /// Called when a timer armed via [`EventCtx::set_timer`] fires.
    fn on_timer(&mut self, id: u64, ctx: &mut EventCtx<'_, Self::Msg>) {
        let _ = (id, ctx);
    }

    /// Called when this node rejoins after a crash scheduled by a
    /// [`FaultPlan`]. Timers from before the crash never fire (the engine
    /// invalidates them), so the node must re-arm everything it needs
    /// here. The default simply re-runs [`on_start`](EventProtocol::on_start)
    /// — correct for stateless protocols; stateful ones override it to
    /// reconcile what `mode` says survived the outage.
    fn on_recover(&mut self, mode: RecoveryMode, ctx: &mut EventCtx<'_, Self::Msg>) {
        let _ = mode;
        self.on_start(ctx);
    }

    /// Called on every live node when a partition episode heals. The
    /// default does nothing; protocols with retransmission backoff
    /// override it to snap their pacing back to base, so resynchronization
    /// across the healed cut is not delayed by an interval that backed
    /// off against the partition.
    fn on_heal(&mut self, ctx: &mut EventCtx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Exposes token knowledge for global observation, if this protocol
    /// solves a dissemination problem. Returning `Some` enables the
    /// engine's [`TokenTracker`] and completion-based termination.
    fn known_tokens(&self) -> Option<&TokenSet> {
        None
    }
}

/// What stopped an [`EventSim`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Every node became complete (requires token tracking).
    Complete,
    /// The event queue drained with work left undone.
    Quiescent,
    /// The virtual-time cap was reached.
    TimeLimit,
}

/// Summary of one event-driven execution.
#[derive(Clone, Debug)]
pub struct EventReport {
    /// Why the run stopped.
    pub stopped: StopReason,
    /// Virtual time of the last processed event.
    pub final_time: VirtualTime,
    /// Topology epochs (adversary rounds) that elapsed.
    pub epochs: Round,
    /// Events processed (starts + deliveries + timers).
    pub events: u64,
    /// Messages passed to the link layer.
    pub transmissions: u64,
    /// Sends dropped at the source because no edge to the target existed
    /// in the topology epoch of the send (see [`EventCtx::send`]).
    pub unroutable: u64,
    /// Copies that survived the link and were scheduled.
    pub copies_scheduled: u64,
    /// Copies consumed from mailboxes.
    pub copies_delivered: u64,
    /// Protocol-reported retransmissions (see
    /// [`EventCtx::note_retransmission`]).
    pub retransmissions: u64,
    /// Token learnings observed (0 when tracking is disabled).
    pub learnings: u64,
}

impl std::fmt::Display for EventReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} at t={} ({} epochs): {} events, {} sent ({} unroutable, {} retransmits) → {} scheduled → {} delivered, {} learnings",
            self.stopped,
            self.final_time,
            self.epochs,
            self.events,
            self.transmissions,
            self.unroutable,
            self.retransmissions,
            self.copies_scheduled,
            self.copies_delivered,
            self.learnings
        )
    }
}

/// The internal event alphabet.
///
/// `Timer` carries the arming node's incarnation: a timer armed before a
/// crash is dead on arrival in any later incarnation, which is what lets
/// `on_recover` re-arm from scratch without racing ghosts of the previous
/// life. Fault-free runs keep every generation at 0, so the field changes
/// nothing there. The fault variants (`Crash`, `Recover`,
/// `PartitionStart`, `PartitionHeal`) are scheduled up-front by
/// [`EventSim::set_fault_plan`] — FIFO-within-tick then guarantees they
/// pop *before* any same-tick delivery, which is scheduled later; `Heal`
/// is a dispatch-only pseudo-event fanned out to live nodes when a
/// `PartitionHeal` pops, never queued itself.
enum Event<M> {
    Start(NodeId),
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, id: u64, gen: u32 },
    Crash(NodeId),
    Recover { node: NodeId, mode: RecoveryMode },
    PartitionStart(u32),
    PartitionHeal(u32),
    Heal,
}

/// The asynchronous discrete-event engine.
///
/// One engine instance owns the nodes, the virtual clock, the event queue,
/// the mailboxes, the link model, and the evolving topology.
pub struct EventSim<P: EventProtocol, A: Adversary, L: LinkModel> {
    nodes: Vec<P>,
    adversary: A,
    link: L,
    dg: DynamicGraph,
    ticks_per_round: VirtualTime,
    queue: EventQueue<Event<P::Msg>>,
    mailboxes: Vec<Mailbox<P::Msg>>,
    rng: StdRng,
    clock: VirtualTime,
    tracker: Option<TokenTracker>,
    // Fault injection (None = fault-free: `down` stays all-false and
    // `incarnation` all-zero, so every path below behaves identically to
    // an engine without these fields).
    fault_plan: Option<FaultPlan>,
    down: Vec<bool>,
    incarnation: Vec<u32>,
    crashes: u64,
    recoveries: u64,
    partition_episodes: u64,
    // Transcript auditing (None = disabled, the default: honest runs pay
    // one pointer check per dispatch and nothing else).
    summarize: Option<fn(&P::Msg) -> MsgSummary>,
    transcripts: Vec<Transcript>,
    // Scratch reused across dispatches.
    ops: Vec<SendOp<P::Msg>>,
    dests: Vec<NodeId>,
    timers: Vec<(VirtualTime, u64)>,
    fates: Vec<VirtualTime>,
    plan: Vec<(NodeId, VirtualTime)>,
    events: u64,
    transmissions: u64,
    unroutable: u64,
    copies_scheduled: u64,
    copies_delivered: u64,
    retransmissions: u64,
    link_drops: u64,
    link_dups: u64,
    tracer: Option<Box<dyn Tracer>>,
    prof: Option<Profiler>,
}

impl<P, A, L> EventSim<P, A, L>
where
    P: EventProtocol,
    A: Adversary,
    L: LinkModel,
{
    /// Creates an engine without token tracking: the run ends at
    /// quiescence or the time cap.
    ///
    /// `ticks_per_round` maps the virtual clock onto adversary rounds: the
    /// topology of round `e` governs ticks `[(e−1)·tpr, e·tpr)`.
    ///
    /// # Panics
    ///
    /// Panics if `ticks_per_round == 0` or `nodes` is empty.
    pub fn new(
        nodes: Vec<P>,
        adversary: A,
        link: L,
        ticks_per_round: VirtualTime,
        seed: u64,
    ) -> Self {
        assert!(ticks_per_round >= 1, "ticks_per_round must be ≥ 1");
        assert!(!nodes.is_empty(), "need at least one node");
        let n = nodes.len();
        EventSim {
            nodes,
            adversary,
            link,
            dg: DynamicGraph::new(n),
            ticks_per_round,
            queue: EventQueue::new(),
            mailboxes: (0..n).map(|_| Mailbox::with_capacity(4)).collect(),
            rng: StdRng::seed_from_u64(seed),
            clock: 0,
            tracker: None,
            fault_plan: None,
            down: vec![false; n],
            incarnation: vec![0; n],
            crashes: 0,
            recoveries: 0,
            partition_episodes: 0,
            summarize: None,
            transcripts: Vec::new(),
            ops: Vec::new(),
            dests: Vec::new(),
            timers: Vec::new(),
            fates: Vec::new(),
            plan: Vec::new(),
            events: 0,
            transmissions: 0,
            unroutable: 0,
            copies_scheduled: 0,
            copies_delivered: 0,
            retransmissions: 0,
            link_drops: 0,
            link_dups: 0,
            tracer: None,
            prof: None,
        }
    }

    /// Installs a [`Tracer`] receiving the deterministic trace stream
    /// (epoch boundaries, sends, per-copy link fates, deliveries, timers,
    /// retransmissions, coverage deltas). Off by default; when off every
    /// hook point is one predictable branch. Call before [`EventSim::run`].
    pub fn set_tracer(&mut self, tracer: impl Tracer + 'static) {
        self.tracer = Some(Box::new(tracer));
    }

    /// Enables wall-clock self-profiling: phase attribution is collected
    /// from here on and surfaced via [`EventSim::run_report`] as
    /// [`RunReport::profile`]. Call before [`EventSim::run`].
    pub fn enable_profiling(&mut self) {
        let mut prof = Profiler::new();
        prof.begin();
        self.prof = Some(prof);
    }

    /// Like [`EventSim::new`], but with a [`TokenTracker`] observing each
    /// node's [`EventProtocol::known_tokens`], enabling completion-based
    /// termination.
    ///
    /// # Panics
    ///
    /// Panics if any node returns `None` from `known_tokens`, or if the
    /// initial knowledge differs from the assignment.
    pub fn with_tracking(
        nodes: Vec<P>,
        adversary: A,
        link: L,
        ticks_per_round: VirtualTime,
        seed: u64,
        assignment: &TokenAssignment,
    ) -> Self {
        let mut sim = EventSim::new(nodes, adversary, link, ticks_per_round, seed);
        let tracker = TokenTracker::new(assignment);
        for (i, node) in sim.nodes.iter().enumerate() {
            let v = NodeId::new(i as u32);
            let know = node
                .known_tokens()
                .expect("tracking requires known_tokens() = Some");
            assert!(
                know == tracker.knowledge(v),
                "{v}: initial knowledge differs from assignment"
            );
        }
        sim.tracker = Some(tracker);
        sim
    }

    /// The tracker, when tracking is enabled.
    pub fn tracker(&self) -> Option<&TokenTracker> {
        self.tracker.as_ref()
    }

    /// Installs a [`FaultPlan`], scheduling its crash, recovery, and
    /// partition-boundary events into the queue. Call before
    /// [`EventSim::run`].
    ///
    /// The engine enforces the *node* semantics (down nodes consume no
    /// deliveries, fire no timers, send nothing; recoveries dispatch
    /// [`EventProtocol::on_recover`]; heals dispatch
    /// [`EventProtocol::on_heal`] to live nodes) and counts episodes —
    /// the *link* semantics of a partition (cross-cut copies dropped) are
    /// enforced by wrapping the link model in
    /// [`PartitionLink`](crate::faults::PartitionLink) over the same
    /// plan, which the `run_faulty_*` drivers do for you.
    ///
    /// An empty plan ([`FaultPlan::none`]) schedules nothing and leaves
    /// the run byte-identical to one without a plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan's node count differs from the engine's, or if
    /// the run already started.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(
            plan.node_count(),
            self.nodes.len(),
            "fault plan sized for a different network"
        );
        assert!(
            self.clock == 0 && self.events == 0,
            "set_fault_plan must precede run()"
        );
        for v in plan.crashed_nodes() {
            let f = plan.fault_of(v).expect("listed as crashed");
            self.queue.schedule(f.crash_at, Event::Crash(v));
            if let Some(at) = f.recover_at {
                self.queue.schedule(
                    at,
                    Event::Recover {
                        node: v,
                        mode: f.mode,
                    },
                );
            }
        }
        for (i, ep) in plan.episodes().iter().enumerate() {
            self.queue
                .schedule(ep.start, Event::PartitionStart(i as u32));
            self.queue.schedule(ep.end, Event::PartitionHeal(i as u32));
        }
        self.fault_plan = Some(plan);
    }

    /// Whether node `v` is currently crashed.
    pub fn is_down(&self, v: NodeId) -> bool {
        self.down[v.index()]
    }

    /// Number of nodes currently crashed.
    pub fn down_count(&self) -> usize {
        self.down.iter().filter(|&&d| d).count()
    }

    /// Fault counters so far: `(crashes, recoveries, partition episodes)`.
    pub fn fault_counters(&self) -> (u64, u64, u64) {
        (self.crashes, self.recoveries, self.partition_episodes)
    }

    /// Enables per-node transcript recording (the accountability layer's
    /// signed-log stand-in): from here on every send is logged at the
    /// sender — one entry per destination, **before** link planning, so
    /// dropped and unroutable sends are still on the record — and every
    /// consumed delivery is logged at the receiver, each folded into a
    /// deterministic chain hash. Requires the protocol's message type to
    /// opt in via [`AuditMsg`]. Call before [`EventSim::run`].
    pub fn record_transcripts(&mut self)
    where
        P::Msg: AuditMsg,
    {
        self.summarize = Some(<P::Msg as AuditMsg>::summarize);
        self.transcripts = (0..self.nodes.len()).map(|_| Transcript::new()).collect();
    }

    /// The recorded transcripts, indexed by node (empty slice when
    /// recording was never enabled).
    pub fn transcripts(&self) -> &[Transcript] {
        &self.transcripts
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.clock
    }

    /// The evolving topology.
    pub fn dynamic_graph(&self) -> &DynamicGraph {
        &self.dg
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, v: NodeId) -> &P {
        &self.nodes[v.index()]
    }

    /// Largest mailbox backlog observed on any node.
    pub fn max_mailbox_high_water(&self) -> usize {
        self.mailboxes
            .iter()
            .map(|m| m.high_water())
            .max()
            .unwrap_or(0)
    }

    /// Summarizes the execution so far as a [`RunReport`], the common
    /// currency of the experiment tables — so async grids tabulate next
    /// to synchronous ones. Mapping: `rounds` = topology epochs,
    /// `total_messages` = transmissions (Definition 1.1 charges sends;
    /// dropped copies still cost), per-class counts are unavailable in
    /// the payload-agnostic engine and stay 0, and
    /// [`unroutable`](RunReport::unroutable) carries the sends dropped at
    /// the source for lack of an edge — the counter the synchronous
    /// engines can never set (they panic instead).
    pub fn run_report(&self, algorithm: impl Into<Arc<str>>) -> RunReport {
        RunReport {
            algorithm: algorithm.into(),
            adversary: Arc::from(self.adversary.name()),
            n: self.nodes.len(),
            k: self.tracker.as_ref().map_or(0, TokenTracker::token_count),
            rounds: self.dg.round(),
            completed: self
                .tracker
                .as_ref()
                .is_some_and(TokenTracker::all_complete),
            total_messages: self.transmissions,
            unicast_messages: self.transmissions,
            broadcast_messages: 0,
            by_class: [0; MessageClass::ALL.len()],
            topology: self.dg.meter(),
            learnings: self
                .tracker
                .as_ref()
                .map_or(0, TokenTracker::total_learnings),
            unroutable: self.unroutable,
            byzantine_nodes: 0,
            violations_detected: 0,
            evidence_verdicts: 0,
            meter_sampling: 1,
            link_sends: self.transmissions,
            link_drops: self.link_drops,
            link_duplicates: self.link_dups,
            retransmissions: self.retransmissions,
            crashes: self.crashes,
            recoveries: self.recoveries,
            partition_episodes: self.partition_episodes,
            profile: self.prof.as_ref().map(|p| Box::new(p.report())),
        }
    }

    /// Evolves the topology until it covers virtual time `t`.
    fn advance_epochs_to(&mut self, t: VirtualTime) {
        let target_round = t / self.ticks_per_round + 1;
        while self.dg.round() < target_round {
            let round = self.dg.round() + 1;
            let update = self.adversary.evolve(round, self.dg.current());
            self.dg.apply(update);
            if self.tracer.is_some() {
                let delta = self.dg.last_delta();
                let (inserted, removed) = (delta.inserted.len() as u64, delta.removed.len() as u64);
                emit(
                    &mut self.tracer,
                    TraceRecord::Round {
                        r: round,
                        inserted,
                        removed,
                    },
                );
            }
        }
    }

    /// Dispatches one event to node `v` and flushes the context's effects
    /// (link-planned sends, armed timers) back into the queue.
    fn dispatch(&mut self, v: NodeId, event: Event<P::Msg>) {
        self.ops.clear();
        self.dests.clear();
        self.timers.clear();
        {
            let mut ctx = EventCtx {
                now: self.clock,
                me: v,
                neighbors: self.dg.current().neighbors(v),
                ops: &mut self.ops,
                dests: &mut self.dests,
                timers: &mut self.timers,
                retrans: &mut self.retransmissions,
                tracer: &mut self.tracer,
            };
            let node = &mut self.nodes[v.index()];
            match event {
                Event::Start(_) => node.on_start(&mut ctx),
                Event::Deliver { from, msg, .. } => node.on_message(from, &msg, &mut ctx),
                Event::Timer { id, .. } => node.on_timer(id, &mut ctx),
                Event::Recover { mode, .. } => node.on_recover(mode, &mut ctx),
                Event::Heal => node.on_heal(&mut ctx),
                Event::Crash(_) | Event::PartitionStart(_) | Event::PartitionHeal(_) => {
                    unreachable!("handled in the run loop, never dispatched")
                }
            }
        }
        profile::lap(&mut self.prof, Phase::Handler);
        let mut ops = std::mem::take(&mut self.ops);
        let dests = std::mem::take(&mut self.dests);
        if let Some(summarize) = self.summarize {
            // The sender's signed statements: recorded before the link
            // (or routability) decides each copy's fate. Appended for all
            // ops up front — same per-op, per-destination order as the
            // planning pass below, and no RNG involved, so splitting the
            // loops leaves the recorded transcripts (and the execution)
            // unchanged while isolating transcript cost as its own phase.
            for op in &ops {
                for &to in &dests[op.first as usize..(op.first + op.count) as usize] {
                    self.transcripts[v.index()].append(
                        Direction::Sent,
                        to,
                        self.clock,
                        summarize(&op.msg),
                    );
                }
            }
            profile::lap(&mut self.prof, Phase::Transcript);
        }
        for op in ops.drain(..) {
            // Plan every destination's fate first, then materialize the
            // copies: all but the last clone the payload, the last takes
            // the original (`fanout - 1` clones; zero when everything is
            // dropped or the op is a single perfect-link send).
            self.plan.clear();
            for &to in &dests[op.first as usize..(op.first + op.count) as usize] {
                assert!(
                    to.index() < self.nodes.len(),
                    "{v} sent to out-of-range node {to}"
                );
                self.transmissions += 1;
                emit(
                    &mut self.tracer,
                    TraceRecord::Send {
                        t: self.clock,
                        from: v.value(),
                        to: to.value(),
                    },
                );
                if !self.dg.current().has_edge(v, to) {
                    // No edge, no channel: dropped at the source (see
                    // `EventCtx::send`).
                    self.unroutable += 1;
                    emit(
                        &mut self.tracer,
                        TraceRecord::Unroutable {
                            t: self.clock,
                            from: v.value(),
                            to: to.value(),
                        },
                    );
                    continue;
                }
                self.fates.clear();
                self.link
                    .plan(v, to, self.clock, &mut self.rng, &mut self.fates);
                match self.fates.len() {
                    0 => {
                        self.link_drops += 1;
                        emit(
                            &mut self.tracer,
                            TraceRecord::Dropped {
                                t: self.clock,
                                from: v.value(),
                                to: to.value(),
                            },
                        );
                    }
                    1 => {}
                    k => self.link_dups += (k - 1) as u64,
                }
                for &delay in &self.fates {
                    self.plan.push((to, self.clock + delay));
                    emit(
                        &mut self.tracer,
                        TraceRecord::Scheduled {
                            t: self.clock,
                            from: v.value(),
                            to: to.value(),
                            at: self.clock + delay,
                        },
                    );
                }
                if self.fates.len() > 1 {
                    emit(
                        &mut self.tracer,
                        TraceRecord::Duplicated {
                            t: self.clock,
                            from: v.value(),
                            to: to.value(),
                            extra: (self.fates.len() - 1) as u32,
                        },
                    );
                }
            }
            self.copies_scheduled += self.plan.len() as u64;
            let mut payload = Some(op.msg);
            let last = self.plan.len().wrapping_sub(1);
            for (i, &(to, at)) in self.plan.iter().enumerate() {
                let msg = if i == last {
                    payload.take().expect("moved only once, at the end")
                } else {
                    payload.as_ref().expect("present until the end").clone()
                };
                self.queue.schedule(at, Event::Deliver { to, from: v, msg });
            }
        }
        self.ops = ops;
        self.dests = dests;
        profile::lap(&mut self.prof, Phase::LinkPlanning);
        let gen = self.incarnation[v.index()];
        for &(delay, id) in &self.timers {
            self.queue
                .schedule(self.clock + delay, Event::Timer { node: v, id, gen });
            emit(
                &mut self.tracer,
                TraceRecord::TimerArmed {
                    t: self.clock,
                    node: v.value(),
                    id,
                    at: self.clock + delay,
                },
            );
        }
        profile::lap(&mut self.prof, Phase::Timers);
        if let Some(tracker) = &mut self.tracker {
            let know = self.nodes[v.index()]
                .known_tokens()
                .expect("tracking requires known_tokens() = Some");
            let gained = tracker.sync_node(v, know, self.dg.round());
            if gained > 0 {
                emit(
                    &mut self.tracer,
                    TraceRecord::Coverage {
                        t: self.clock,
                        node: v.value(),
                        gained: gained as u32,
                        known: know.count() as u32,
                    },
                );
            }
        }
        profile::lap(&mut self.prof, Phase::TrackerSync);
    }

    /// Runs the execution until completion (with tracking), quiescence, or
    /// the virtual-time cap.
    pub fn run(&mut self, max_time: VirtualTime) -> EventReport {
        for v in NodeId::all(self.nodes.len()) {
            self.queue.schedule(0, Event::Start(v));
        }
        let stopped = loop {
            if self
                .tracker
                .as_ref()
                .is_some_and(TokenTracker::all_complete)
            {
                break StopReason::Complete;
            }
            let Some(at) = self.queue.next_time() else {
                break StopReason::Quiescent;
            };
            if at > max_time {
                break StopReason::TimeLimit;
            }
            self.clock = at;
            self.advance_epochs_to(at);
            profile::lap(&mut self.prof, Phase::AdversaryEvolve);
            let (_, event) = self.queue.pop().expect("peeked");
            self.events += 1;
            profile::lap(&mut self.prof, Phase::QueuePop);
            match event {
                Event::Start(v) => self.dispatch(v, Event::Start(v)),
                Event::Deliver { to, .. } if self.down[to.index()] => {
                    // The receiver is crashed: the copy evaporates — not
                    // delivered, not traced, not in the transcript. (The
                    // copy was still *scheduled*, so link counters saw
                    // it; crash loss is a receiver property, not a link
                    // property.)
                }
                Event::Deliver { to, from, msg } => {
                    // Arrival goes through the mailbox, then is consumed.
                    self.mailboxes[to.index()].deliver(self.clock, from, msg);
                    let env = self.mailboxes[to.index()].pop().expect("just delivered");
                    self.copies_delivered += 1;
                    if let Some(summarize) = self.summarize {
                        // Logged at consumption, before any sends the
                        // handler stages — so a receive always precedes
                        // its own acknowledgment in transcript order.
                        self.transcripts[to.index()].append(
                            Direction::Received,
                            env.from,
                            self.clock,
                            summarize(&env.msg),
                        );
                    }
                    emit(
                        &mut self.tracer,
                        TraceRecord::Delivered {
                            t: self.clock,
                            from: env.from.value(),
                            to: to.value(),
                        },
                    );
                    profile::lap(&mut self.prof, Phase::Delivery);
                    self.dispatch(
                        to,
                        Event::Deliver {
                            to,
                            from: env.from,
                            msg: env.msg,
                        },
                    );
                }
                Event::Timer { node, id, gen } => {
                    if self.down[node.index()] || gen != self.incarnation[node.index()] {
                        // Down node, or a timer armed in a previous
                        // incarnation: discarded silently. This is what
                        // makes `on_recover`'s re-arming safe — the old
                        // life's heartbeat chain can never interleave
                        // with the new one.
                    } else {
                        emit(
                            &mut self.tracer,
                            TraceRecord::TimerFired {
                                t: self.clock,
                                node: node.value(),
                                id,
                            },
                        );
                        self.dispatch(node, Event::Timer { node, id, gen });
                    }
                }
                Event::Crash(v) => {
                    debug_assert!(!self.down[v.index()], "{v} crashed twice");
                    self.down[v.index()] = true;
                    // Bumping the incarnation orphans every timer the
                    // node has in flight, even ones that would fire
                    // after its recovery.
                    self.incarnation[v.index()] += 1;
                    self.crashes += 1;
                    emit(
                        &mut self.tracer,
                        TraceRecord::NodeCrashed {
                            t: self.clock,
                            node: v.value(),
                        },
                    );
                }
                Event::Recover { node, mode } => {
                    debug_assert!(self.down[node.index()], "{node} recovered while up");
                    self.down[node.index()] = false;
                    self.recoveries += 1;
                    emit(
                        &mut self.tracer,
                        TraceRecord::NodeRecovered {
                            t: self.clock,
                            node: node.value(),
                        },
                    );
                    self.dispatch(node, Event::Recover { node, mode });
                }
                Event::PartitionStart(episode) => {
                    self.partition_episodes += 1;
                    emit(
                        &mut self.tracer,
                        TraceRecord::PartitionStarted {
                            t: self.clock,
                            episode,
                        },
                    );
                }
                Event::PartitionHeal(episode) => {
                    emit(
                        &mut self.tracer,
                        TraceRecord::PartitionHealed {
                            t: self.clock,
                            episode,
                        },
                    );
                    // Every live node gets the heal hook, in ascending
                    // ID order (crashed nodes re-pace via `on_recover`
                    // instead when their time comes).
                    for v in NodeId::all(self.nodes.len()) {
                        if !self.down[v.index()] {
                            self.dispatch(v, Event::Heal);
                        }
                    }
                }
                Event::Heal => unreachable!("Heal is dispatch-only, never queued"),
            }
        };
        EventReport {
            stopped,
            final_time: self.clock,
            epochs: self.dg.round(),
            events: self.events,
            transmissions: self.transmissions,
            unroutable: self.unroutable,
            copies_scheduled: self.copies_scheduled,
            copies_delivered: self.copies_delivered,
            retransmissions: self.retransmissions,
            learnings: self
                .tracker
                .as_ref()
                .map_or(0, TokenTracker::total_learnings),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::PerfectLink;
    use dynspread_graph::oblivious::StaticAdversary;
    use dynspread_graph::Graph;

    /// Sends to a fixed target at start, regardless of adjacency.
    struct BlindSender {
        target: NodeId,
        received: u64,
    }

    impl EventProtocol for BlindSender {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut EventCtx<'_, ()>) {
            ctx.send(self.target, ());
        }

        fn on_message(&mut self, _from: NodeId, _msg: &(), _ctx: &mut EventCtx<'_, ()>) {
            self.received += 1;
        }
    }

    #[test]
    fn send_without_an_edge_is_dropped_at_the_source() {
        // Path 0-1-2-3: node 0 targets non-neighbor 3, the rest target a
        // real neighbor.
        let nodes = vec![
            BlindSender {
                target: NodeId::new(3),
                received: 0,
            },
            BlindSender {
                target: NodeId::new(0),
                received: 0,
            },
            BlindSender {
                target: NodeId::new(1),
                received: 0,
            },
            BlindSender {
                target: NodeId::new(2),
                received: 0,
            },
        ];
        let adversary = StaticAdversary::new(Graph::path(4));
        let mut sim = EventSim::new(nodes, adversary, PerfectLink, 1, 3);
        let report = sim.run(100);
        assert_eq!(report.stopped, StopReason::Quiescent);
        assert_eq!(report.transmissions, 4);
        assert_eq!(report.unroutable, 1);
        assert_eq!(report.copies_scheduled, 3);
        assert_eq!(report.copies_delivered, 3);
        assert_eq!(sim.node(NodeId::new(3)).received, 0, "no edge, no delivery");
        assert_eq!(sim.node(NodeId::new(0)).received, 1);
    }

    #[test]
    fn run_report_carries_the_unroutable_counter() {
        let nodes = vec![
            BlindSender {
                target: NodeId::new(2),
                received: 0,
            },
            BlindSender {
                target: NodeId::new(0),
                received: 0,
            },
            BlindSender {
                target: NodeId::new(1),
                received: 0,
            },
        ];
        let adversary = StaticAdversary::new(Graph::path(3));
        let mut sim = EventSim::new(nodes, adversary, PerfectLink, 1, 3);
        let event_report = sim.run(100);
        let report = sim.run_report("blind");
        assert_eq!(report.unroutable, 1, "0→2 has no edge on the path");
        assert_eq!(report.unroutable, event_report.unroutable);
        assert_eq!(report.total_messages, event_report.transmissions);
        assert_eq!(&*report.algorithm, "blind");
        assert!(!report.completed, "no tracking ⇒ never reported complete");
        assert!(report.to_string().contains("1 unroutable"));
    }

    /// Re-arms a 1-tick heartbeat forever, broadcasting on every beat.
    struct Ticker {
        ticks: u64,
        received: u64,
        recoveries: u64,
        heals: u64,
    }

    impl Ticker {
        fn new() -> Self {
            Ticker {
                ticks: 0,
                received: 0,
                recoveries: 0,
                heals: 0,
            }
        }
    }

    impl EventProtocol for Ticker {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut EventCtx<'_, ()>) {
            ctx.set_timer(1, 0);
        }

        fn on_message(&mut self, _from: NodeId, _msg: &(), _ctx: &mut EventCtx<'_, ()>) {
            self.received += 1;
        }

        fn on_timer(&mut self, _id: u64, ctx: &mut EventCtx<'_, ()>) {
            self.ticks += 1;
            ctx.broadcast(());
            ctx.set_timer(1, 0);
        }

        fn on_recover(&mut self, _mode: RecoveryMode, ctx: &mut EventCtx<'_, ()>) {
            self.recoveries += 1;
            self.on_start(ctx);
        }

        fn on_heal(&mut self, _ctx: &mut EventCtx<'_, ()>) {
            self.heals += 1;
        }
    }

    #[test]
    fn crashed_nodes_are_silent_and_recover_with_fresh_timers() {
        use crate::faults::{FaultPlan, NodeFault};
        let nodes = vec![Ticker::new(), Ticker::new()];
        let adversary = StaticAdversary::new(Graph::complete(2));
        let mut sim = EventSim::new(nodes, adversary, PerfectLink, 1, 5);
        let plan = FaultPlan::none(2).plant(
            NodeId::new(1),
            NodeFault {
                crash_at: 5,
                recover_at: Some(10),
                mode: RecoveryMode::Amnesia,
            },
        );
        sim.set_fault_plan(plan);
        let report = sim.run(20);
        assert_eq!(report.stopped, StopReason::TimeLimit);
        assert_eq!(sim.fault_counters(), (1, 1, 0));
        assert!(!sim.is_down(NodeId::new(1)), "recovered by t=10");
        let up = sim.node(NodeId::new(0));
        let faulted = sim.node(NodeId::new(1));
        assert_eq!(up.recoveries, 0);
        assert_eq!(faulted.recoveries, 1);
        // Node 1 beats at t=1..4 (4 beats), is dark over [5, 10), then its
        // post-recovery chain beats at t=11.. — the pre-crash timer chain
        // is dead, so exactly one chain runs.
        assert_eq!(faulted.ticks, 4 + (20 - 11 + 1));
        // Node 0 never stops: one beat per tick from t=1.
        assert_eq!(up.ticks, 20);
        // Deliveries into the outage window evaporated: node 1 misses
        // node 0's beats sent at t=5..9 (delivered same tick under a
        // perfect link, while node 1 was down) and the t=10 beat arrives
        // after recovery.
        assert_eq!(faulted.received, up.ticks - 5);
        // Node 0 heard nothing while node 1 was dark.
        assert_eq!(up.received, faulted.ticks);
        let rr = sim.run_report("ticker");
        assert_eq!(
            (rr.crashes, rr.recoveries, rr.partition_episodes),
            (1, 1, 0)
        );
        assert!(rr.to_string().contains("faults: 1 crashes, 1 recoveries"));
    }

    #[test]
    fn partition_heal_dispatches_on_heal_to_live_nodes_only() {
        use crate::faults::{FaultPlan, NodeFault};
        let nodes = vec![Ticker::new(), Ticker::new(), Ticker::new()];
        let adversary = StaticAdversary::new(Graph::complete(3));
        let mut sim = EventSim::new(nodes, adversary, PerfectLink, 1, 5);
        let plan = FaultPlan::none(3)
            .with_partition(3, 8, vec![false, true, true])
            .plant(
                NodeId::new(2),
                NodeFault {
                    crash_at: 4,
                    recover_at: None,
                    mode: RecoveryMode::Amnesia,
                },
            );
        sim.set_fault_plan(plan);
        let report = sim.run(15);
        assert_eq!(report.stopped, StopReason::TimeLimit);
        assert_eq!(sim.fault_counters(), (1, 0, 1));
        assert_eq!(sim.down_count(), 1);
        assert_eq!(sim.node(NodeId::new(0)).heals, 1);
        assert_eq!(sim.node(NodeId::new(1)).heals, 1);
        assert_eq!(
            sim.node(NodeId::new(2)).heals,
            0,
            "crash-stopped node never hears the heal"
        );
        // Note: without a PartitionLink wrap the cut does not affect the
        // link — this test only exercises the boundary events.
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        use crate::faults::FaultPlan;
        let run = |with_plan: bool| {
            let nodes = vec![Ticker::new(), Ticker::new()];
            let adversary = StaticAdversary::new(Graph::complete(2));
            let mut sim = EventSim::new(nodes, adversary, PerfectLink, 1, 5);
            if with_plan {
                sim.set_fault_plan(FaultPlan::none(2));
            }
            let report = sim.run(50);
            (
                format!("{report:?}"),
                sim.node(NodeId::new(0)).received,
                sim.fault_counters(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn send_to_out_of_range_node_panics_clearly() {
        let nodes = vec![
            BlindSender {
                target: NodeId::new(9),
                received: 0,
            },
            BlindSender {
                target: NodeId::new(0),
                received: 0,
            },
        ];
        let adversary = StaticAdversary::new(Graph::path(2));
        let mut sim = EventSim::new(nodes, adversary, PerfectLink, 1, 3);
        sim.run(100);
    }
}
