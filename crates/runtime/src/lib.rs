//! # dynspread-runtime — deterministic event-driven execution
//!
//! The paper's model is **synchronous**: execution proceeds in lockstep
//! rounds, every message sent in round `r` arrives in round `r`, and no
//! message is ever lost. That is exactly what `dynspread_sim`'s engines
//! implement, and it is the right substrate for reproducing the paper's
//! theorems — but real networks drop, delay, duplicate, and reorder
//! messages. This crate supplies the missing execution model as a
//! **deterministic discrete-event runtime**:
//!
//! * a virtual clock and a seeded [`event::EventQueue`] — a calendar
//!   queue ordered by `(time, scheduling order)`, so ties break
//!   deterministically and executions are replay-identical from a seed;
//! * per-node [`mailbox::Mailbox`]es decoupling message *arrival* from
//!   *consumption*;
//! * composable [`link::LinkModel`]s (fixed/seeded-random latency, drop
//!   probability, duplication; reordering falls out of jitter), all drawing
//!   from one seeded RNG stream.
//!
//! Two execution surfaces sit on top:
//!
//! * **Synchronizer adapters** ([`sync::UnicastSynchronizer`],
//!   [`sync::BroadcastSynchronizer`]) run the *existing* round-based
//!   [`UnicastProtocol`](dynspread_sim::protocol::UnicastProtocol) /
//!   [`BroadcastProtocol`](dynspread_sim::protocol::BroadcastProtocol)
//!   implementations unchanged, mapping one tick to one round. Under
//!   [`link::PerfectLink`] they reproduce the synchronous engines'
//!   [`RunReport`](dynspread_sim::RunReport)s **byte-for-byte**; under
//!   lossy/latent links they answer questions the paper's model cannot
//!   pose, e.g. how Algorithm 1's request/response handshake degrades when
//!   responses can vanish.
//! * **The event engine** ([`engine::EventSim`]) drops the round barrier
//!   entirely: [`engine::EventProtocol`] nodes react to message deliveries
//!   and self-armed timers on the virtual clock, while the adversarial
//!   topology keeps evolving underneath every `ticks_per_round` ticks.
//!   This is the asynchronous counterpart of the paper's model — rounds
//!   become an emergent property of latency, not a primitive.
//! * **Asynchronous protocol ports** ([`protocol::AsyncSingleSource`],
//!   [`protocol::AsyncMultiSource`]) run the paper's dissemination
//!   algorithms *natively* on the event engine: the same transport-agnostic
//!   decision core as the round-based nodes, plus explicit per-neighbor
//!   retransmission, ack/dedup state, and adaptive backoff — so they reach
//!   full dissemination over lossy/jittery links where the round protocols
//!   would deadlock, and agree with the synchronous references wherever the
//!   models coincide (see `tests/async_conformance.rs` and
//!   `crates/runtime/README.md` for the conformance contract).
//! * **Crash faults & partitions** ([`faults`]): a seeded pure-data
//!   [`faults::FaultPlan`] schedules crash-stop and crash-recovery
//!   outages (amnesia or durable-snapshot semantics) plus partition/heal
//!   episodes; the engine silences down nodes, replays nothing stale, and
//!   drives the ports' [`engine::EventProtocol::on_recover`] /
//!   [`engine::EventProtocol::on_heal`] self-healing hooks, while
//!   [`faults::PartitionLink`] drops cross-cut copies without consuming
//!   randomness — so a fault-free plan is byte-identical to no plan at
//!   all.
//! * **Byzantine injection + accountability** ([`byzantine`]): a seeded
//!   [`byzantine::MisbehaviorPlan`] wraps any async port in
//!   [`byzantine::Misbehaving`] nodes that equivocate, forge transfers,
//!   drop acks, or mutate tokens; the engine records chain-hashed
//!   per-node transcripts, and the pure [`byzantine::check_evidence`]
//!   auditor pins every violation to its culprit with a minimal proof —
//!   sound (honest nodes are never indicted) and byte-identical under
//!   seeded replay.
//! * **The `Scenario` front door + multi-session service layer**
//!   ([`scenario`], [`session`]): a builder-style [`scenario::Scenario`]
//!   is the single entry point composing every axis above — faults,
//!   Byzantine plans, and tracing in one run — with the legacy
//!   `run_faulty_*` / `run_byzantine_*` / `run_async_oblivious*` drivers
//!   reimplemented as byte-identical thin wrappers over it. The session
//!   layer multiplexes many overlapping dissemination sessions (distinct
//!   token universes, sources, arrival times) over one long-lived engine
//!   via a typed [`session::WireEnvelope`], reporting per-session
//!   completion latency on the shared virtual clock.
//!
//! # How the event model relates to the paper's rounds
//!
//! A synchronous round bundles three things: a topology commit, a send
//! phase, and an atomic delivery phase. The runtime unbundles them. The
//! topology commit becomes an *epoch* on the virtual clock (the adversary
//! interfaces are reused unchanged); sends become events planned through a
//! link model; delivery becomes mailbox arrival at a scheduled tick. The
//! synchronous model is recovered exactly as the special case
//! `latency = 0, loss = 0, duplication = 0` with all nodes activating at
//! every tick — which is what the synchronizer adapters implement, and why
//! their perfect-link runs are bit-identical to `UnicastSim`/
//! `BroadcastSim`.
//!
//! # Example
//!
//! Algorithm 1 on a 30%-lossy channel with up to 2 ticks of jitter:
//!
//! ```
//! use dynspread_core::single_source::SingleSourceNode;
//! use dynspread_graph::{generators::Topology, oblivious::PeriodicRewiring, NodeId};
//! use dynspread_runtime::link::{LinkModelExt, PerfectLink};
//! use dynspread_runtime::sync::UnicastSynchronizer;
//! use dynspread_sim::{SimConfig, TokenAssignment};
//!
//! let (n, k) = (8, 4);
//! let assignment = TokenAssignment::single_source(n, k, NodeId::new(0));
//! let mut sim = UnicastSynchronizer::new(
//!     "single-source-unicast",
//!     SingleSourceNode::nodes(&assignment),
//!     PeriodicRewiring::new(Topology::RandomTree, 3, 7),
//!     &assignment,
//!     SimConfig::with_max_rounds(500_000),
//!     PerfectLink.lossy(0.3).with_jitter(2),
//!     42,
//! );
//! let report = sim.run_to_completion();
//! assert!(report.completed, "{report}");
//! let (tx, scheduled, delivered) = sim.link_stats();
//! assert!(scheduled < tx, "a 30%-lossy link must drop something");
//! assert!(delivered <= scheduled);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod engine;
pub mod event;
pub mod faults;
pub mod link;
pub mod mailbox;
pub mod protocol;
pub mod scenario;
pub mod session;
pub mod sync;
pub mod trace;

pub use byzantine::{check_evidence, Evidence, Misbehaving, MisbehaviorKind, MisbehaviorPlan};
pub use engine::{EventCtx, EventProtocol, EventReport, EventSim, StopReason};
pub use event::{EventQueue, VirtualTime};
pub use faults::{FaultPlan, PartitionLink, RecoveryMode};
pub use link::{DropLink, LinkModel, LinkModelExt, PerfectLink};
pub use mailbox::{Envelope, Mailbox};
pub use protocol::{AsyncConfig, AsyncMultiSource, AsyncSingleSource};
pub use scenario::{Scenario, ScenarioObliviousOutcome, ScenarioOutcome, ServiceOutcome};
pub use session::{
    SessionBoard, SessionId, SessionMux, SessionSpec, SessionWorkload, WireEnvelope,
};
pub use sync::{BroadcastSynchronizer, UnicastSynchronizer};
pub use trace::{JsonlTracer, NoopTracer, TraceRecord, Tracer};
