//! The post-run accountability auditor: cross-examines per-node
//! transcripts and pins every observed protocol violation to the exact
//! guilty node with a minimal proof.
//!
//! Every predicate is justified against the honest protocol code, which
//! is what makes the auditor **sound** (an honest node can never be
//! indicted — property-tested in `crates/runtime/tests/evidence.rs`):
//!
//! * **False completeness** — honest nodes announce `Completeness` only
//!   when complete (single-source) or complete w.r.t. the named source
//!   (multi-source), and knowledge grows only by receiving tokens. So a
//!   `Completeness` send whose sender's *reconstructed* knowledge
//!   (initial ∪ tokens received earlier in its own transcript) is
//!   incomplete is a lie, provable from the sender's log alone.
//! * **False center claim** — center election is a public seeded
//!   function; a `CenterAnnounce` from a non-center convicts by itself.
//! * **Equivocation / seq replay** — an honest walker's transfer
//!   sequence numbers are strictly increasing, first used at issue time,
//!   and each binds one `(destination, token)` pair. Two sends binding
//!   one seq to different tokens (equivocation) or different peers
//!   (replay), or a first use below an earlier first use, are lies.
//! * **Forged ack** — honest nodes send `WalkAck {t, s}` only from the
//!   handler of a received `Walk {t, s}`; an ack with no matching
//!   receive on record is forged.
//! * **Dropped ack** — all three protocols acknowledge announcements and
//!   transfers *unconditionally, in the same dispatch*, and the engine
//!   records sends before the link can drop them. A received
//!   announcement/transfer with no same-time ack in the sender's own
//!   log was suppressed deliberately.
//! * **Token fabrication** — honest nodes only serve or walk tokens they
//!   hold; a token-bearing send outside the reconstructed knowledge is
//!   fabricated.
//! * **Transfer theft** — acknowledging a fresh transfer takes
//!   responsibility; an honest taker either still claims the token at
//!   the end of the phase or passed it on via a later confirmed
//!   transfer. A node that acked, never passed on, and does not claim
//!   destroyed the token.
//!
//! The auditor is a pure function of `(setup, transcripts)`, so verdicts
//! are byte-identical under seeded replay.

use super::transcript::{Direction, MsgKind, Transcript, TranscriptEntry};
use crate::event::VirtualTime;
use dynspread_core::multi_source::SourceMap;
use dynspread_graph::NodeId;
use dynspread_sim::token::{TokenAssignment, TokenId, TokenSet};
use std::collections::{BTreeMap, BTreeSet};

/// One proven protocol violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Announced completeness without holding the claimed tokens.
    FalseCompleteness {
        /// The source lied about (multi-source), or `None` (single-source).
        claimed_source: Option<NodeId>,
    },
    /// Announced center-ship without having been elected.
    FalseCenterClaim,
    /// Bound one transfer sequence number to two different tokens.
    Equivocation {
        /// The equivocated sequence number.
        seq: u64,
        /// The two tokens bound to it (first seen, conflicting).
        tokens: (TokenId, TokenId),
    },
    /// Reused a transfer sequence number (same token toward another
    /// peer, or issued below an already-used number).
    SeqReplay {
        /// The replayed sequence number.
        seq: u64,
    },
    /// Acknowledged a transfer that was never received.
    ForgedAck {
        /// The acked token.
        token: TokenId,
        /// The acked sequence number.
        seq: u64,
    },
    /// Suppressed an acknowledgment owed in the same dispatch.
    DroppedAck {
        /// The peer whose message went unacknowledged.
        peer: NodeId,
    },
    /// Sent a token it provably does not hold.
    TokenFabrication {
        /// The fabricated token.
        token: TokenId,
    },
    /// Took walk ownership of a token and destroyed it (acked, never
    /// passed on, never claimed).
    TransferTheft {
        /// The destroyed token.
        token: TokenId,
    },
}

/// A verdict: one violation, pinned to one node, with a minimal proof
/// (one or two transcript entries from the culprit's own signed log).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evidence {
    /// The guilty node.
    pub culprit: NodeId,
    /// What it did.
    pub violation: Violation,
    /// The convicting transcript entries (1–2, from the culprit's log).
    pub proof: Vec<TranscriptEntry>,
}

/// Public context the auditor judges transcripts against: the initial
/// token assignment plus whatever the protocol family makes public
/// (per-source token sets, the seeded center election, end-of-phase
/// ownership claims).
#[derive(Clone, Debug)]
pub struct AuditSetup {
    k: usize,
    initial: Vec<TokenSet>,
    source_tokens: Option<Vec<(NodeId, Vec<TokenId>)>>,
    centers: Option<Vec<bool>>,
    final_claims: Option<Vec<Vec<TokenId>>>,
}

impl AuditSetup {
    /// Setup for an [`AsyncSingleSource`](crate::protocol::AsyncSingleSource)
    /// run: a completeness claim asserts all `k` tokens.
    pub fn single_source(assignment: &TokenAssignment) -> Self {
        AuditSetup {
            k: assignment.token_count(),
            initial: Self::initial_of(assignment),
            source_tokens: None,
            centers: None,
            final_claims: None,
        }
    }

    /// Setup for an [`AsyncMultiSource`](crate::protocol::AsyncMultiSource)
    /// run: `Completeness(x)` asserts all of `x`'s tokens.
    pub fn multi_source(assignment: &TokenAssignment, map: &SourceMap) -> Self {
        AuditSetup {
            k: assignment.token_count(),
            initial: Self::initial_of(assignment),
            source_tokens: Some(
                (0..map.source_count())
                    .map(|idx| (map.sources()[idx], map.tokens_of(idx).to_vec()))
                    .collect(),
            ),
            centers: None,
            final_claims: None,
        }
    }

    /// Setup for an [`AsyncOblivious`](crate::protocol::AsyncOblivious)
    /// phase-1 run: `centers` is the public seeded election,
    /// `final_claims` each node's end-of-phase `responsible_tokens`
    /// snapshot (its ownership claim at the hand-off).
    pub fn oblivious(
        assignment: &TokenAssignment,
        centers: Vec<bool>,
        final_claims: Vec<Vec<TokenId>>,
    ) -> Self {
        AuditSetup {
            k: assignment.token_count(),
            initial: Self::initial_of(assignment),
            source_tokens: None,
            centers: Some(centers),
            final_claims: Some(final_claims),
        }
    }

    fn initial_of(assignment: &TokenAssignment) -> Vec<TokenSet> {
        NodeId::all(assignment.node_count())
            .map(|v| assignment.initial_knowledge(v))
            .collect()
    }
}

/// Key of an acknowledgment owed: (peer, time, announced source,
/// (token, seq)). All three protocols ack in the dispatch that consumed
/// the message, so the owed ack carries the same virtual time.
type OwedKey = (NodeId, VirtualTime, Option<NodeId>, Option<(TokenId, u64)>);

/// Cross-examines the transcripts and returns every proven violation,
/// in (culprit, occurrence) order. Pure and deterministic: the same
/// inputs produce byte-identical verdicts.
///
/// # Panics
///
/// Panics if `transcripts` and the setup disagree on the node count.
pub fn check_evidence(setup: &AuditSetup, transcripts: &[Transcript]) -> Vec<Evidence> {
    assert_eq!(
        transcripts.len(),
        setup.initial.len(),
        "setup/transcript node count mismatch"
    );
    let mut verdicts = Vec::new();
    for (i, transcript) in transcripts.iter().enumerate() {
        audit_node(setup, NodeId::new(i as u32), transcript, &mut verdicts);
    }
    verdicts
}

fn audit_node(setup: &AuditSetup, v: NodeId, t: &Transcript, out: &mut Vec<Evidence>) {
    let entries = t.entries();
    let mut known = setup.initial[v.index()].clone();
    // Receiver-side walk state: per-peer highest applied seq, every walk
    // receive seen, and the entry index of each fresh receive.
    let mut last_in: BTreeMap<NodeId, u64> = BTreeMap::new();
    let mut rx_walks: BTreeSet<(NodeId, u64, TokenId)> = BTreeSet::new();
    let mut fresh_rx: BTreeMap<(NodeId, u64), (TokenId, usize)> = BTreeMap::new();
    // Acks owed (same-dispatch discipline): key → (count, first entry).
    let mut owed: BTreeMap<OwedKey, (u64, usize)> = BTreeMap::new();
    // Sender-side walk state: seq → (first entry, dest, token), the
    // running max of first-used seqs, and seqs confirmed by acks.
    let mut walk_out: BTreeMap<u64, (usize, NodeId, TokenId)> = BTreeMap::new();
    let mut max_first_seq: Option<(u64, usize)> = None;
    let mut confirmed: BTreeMap<u64, usize> = BTreeMap::new();
    // Ownership takes: token → (fresh-receive entry, ack entry).
    let mut took: BTreeMap<TokenId, (usize, usize)> = BTreeMap::new();
    // Per-predicate dedup, keeping proofs minimal.
    let mut seen_false_completeness: BTreeSet<Option<NodeId>> = BTreeSet::new();
    let mut seen_center_claim = false;
    let mut seen_equivocation: BTreeSet<u64> = BTreeSet::new();
    let mut seen_replay: BTreeSet<u64> = BTreeSet::new();
    let mut seen_forged_ack: BTreeSet<(NodeId, u64)> = BTreeSet::new();
    let mut seen_fabrication: BTreeSet<TokenId> = BTreeSet::new();

    for (idx, e) in entries.iter().enumerate() {
        let s = e.summary;
        match e.dir {
            Direction::Received => match s.kind {
                MsgKind::Token => {
                    if let Some(tok) = s.token {
                        known.insert(tok);
                    }
                }
                MsgKind::Walk => {
                    let (tok, seq) = (s.token.expect("walk has token"), s.seq.expect("walk seq"));
                    if seq > last_in.get(&e.peer).copied().unwrap_or(0) {
                        last_in.insert(e.peer, seq);
                        fresh_rx.insert((e.peer, seq), (tok, idx));
                    }
                    rx_walks.insert((e.peer, seq, tok));
                    known.insert(tok);
                    let key = (e.peer, e.at, None, Some((tok, seq)));
                    let slot = owed.entry(key).or_insert((0, idx));
                    slot.0 += 1;
                }
                MsgKind::Completeness => {
                    let key = (e.peer, e.at, s.source, None);
                    let slot = owed.entry(key).or_insert((0, idx));
                    slot.0 += 1;
                }
                MsgKind::WalkAck => {
                    let (tok, seq) = (s.token.expect("ack token"), s.seq.expect("ack seq"));
                    if let Some(&(_, dest, bound)) = walk_out.get(&seq) {
                        if dest == e.peer && bound == tok {
                            confirmed.entry(seq).or_insert(idx);
                        }
                    }
                }
                _ => {}
            },
            Direction::Sent => match s.kind {
                MsgKind::Completeness => {
                    let lie = match (&setup.source_tokens, s.source) {
                        (Some(per_source), Some(x)) => per_source
                            .iter()
                            .find(|(src, _)| *src == x)
                            .is_some_and(|(_, toks)| toks.iter().any(|&t| !known.contains(t))),
                        (None, _) => known.count() < setup.k,
                        _ => false,
                    };
                    if lie && seen_false_completeness.insert(s.source) {
                        out.push(Evidence {
                            culprit: v,
                            violation: Violation::FalseCompleteness {
                                claimed_source: s.source,
                            },
                            proof: vec![*e],
                        });
                    }
                }
                MsgKind::CenterAnnounce => {
                    if let Some(centers) = &setup.centers {
                        if !centers[v.index()] && !seen_center_claim {
                            seen_center_claim = true;
                            out.push(Evidence {
                                culprit: v,
                                violation: Violation::FalseCenterClaim,
                                proof: vec![*e],
                            });
                        }
                    }
                }
                MsgKind::Token => {
                    let tok = s.token.expect("token payload");
                    if !known.contains(tok) && seen_fabrication.insert(tok) {
                        out.push(Evidence {
                            culprit: v,
                            violation: Violation::TokenFabrication { token: tok },
                            proof: vec![*e],
                        });
                    }
                }
                MsgKind::Walk => {
                    let (tok, seq) = (s.token.expect("walk token"), s.seq.expect("walk seq"));
                    if !known.contains(tok) && seen_fabrication.insert(tok) {
                        out.push(Evidence {
                            culprit: v,
                            violation: Violation::TokenFabrication { token: tok },
                            proof: vec![*e],
                        });
                    }
                    match walk_out.get(&seq).copied() {
                        None => {
                            if let Some((max, max_idx)) = max_first_seq {
                                if seq < max && seen_replay.insert(seq) {
                                    out.push(Evidence {
                                        culprit: v,
                                        violation: Violation::SeqReplay { seq },
                                        proof: vec![entries[max_idx], *e],
                                    });
                                }
                            }
                            if max_first_seq.is_none_or(|(max, _)| seq > max) {
                                max_first_seq = Some((seq, idx));
                            }
                            walk_out.insert(seq, (idx, e.peer, tok));
                        }
                        Some((first_idx, dest, bound)) => {
                            if bound != tok && seen_equivocation.insert(seq) {
                                out.push(Evidence {
                                    culprit: v,
                                    violation: Violation::Equivocation {
                                        seq,
                                        tokens: (bound, tok),
                                    },
                                    proof: vec![entries[first_idx], *e],
                                });
                            } else if bound == tok && dest != e.peer && seen_replay.insert(seq) {
                                out.push(Evidence {
                                    culprit: v,
                                    violation: Violation::SeqReplay { seq },
                                    proof: vec![entries[first_idx], *e],
                                });
                            }
                        }
                    }
                }
                MsgKind::WalkAck => {
                    let (tok, seq) = (s.token.expect("ack token"), s.seq.expect("ack seq"));
                    if !rx_walks.contains(&(e.peer, seq, tok)) {
                        if seen_forged_ack.insert((e.peer, seq)) {
                            out.push(Evidence {
                                culprit: v,
                                violation: Violation::ForgedAck { token: tok, seq },
                                proof: vec![*e],
                            });
                        }
                    } else {
                        if let Some(slot) = owed.get_mut(&(e.peer, e.at, None, Some((tok, seq)))) {
                            slot.0 = slot.0.saturating_sub(1);
                        }
                        if let Some(&(rx_tok, rx_idx)) = fresh_rx.get(&(e.peer, seq)) {
                            if rx_tok == tok {
                                took.entry(tok).or_insert((rx_idx, idx));
                                // Track the *last* take for the theft rule.
                                if let Some(slot) = took.get_mut(&tok) {
                                    if rx_idx > slot.0 {
                                        *slot = (rx_idx, idx);
                                    }
                                }
                            }
                        }
                    }
                }
                MsgKind::Ack => {
                    if let Some(slot) = owed.get_mut(&(e.peer, e.at, s.source, None)) {
                        slot.0 = slot.0.saturating_sub(1);
                    }
                }
                _ => {}
            },
        }
    }

    // Dropped acks: any announcement/transfer receipt left unsettled.
    let mut seen_dropped: BTreeSet<NodeId> = BTreeSet::new();
    for (&(peer, _, _, _), &(count, first_idx)) in owed.iter() {
        if count > 0 && seen_dropped.insert(peer) {
            out.push(Evidence {
                culprit: v,
                violation: Violation::DroppedAck { peer },
                proof: vec![entries[first_idx]],
            });
        }
    }

    // Transfer theft: took ownership, never claimed, never passed on
    // after the last take.
    if let Some(claims) = &setup.final_claims {
        let claimed: BTreeSet<TokenId> = claims[v.index()].iter().copied().collect();
        for (&tok, &(rx_idx, ack_idx)) in took.iter() {
            if claimed.contains(&tok) {
                continue;
            }
            let passed_on = confirmed.iter().any(|(&seq, &conf_idx)| {
                conf_idx > ack_idx && walk_out.get(&seq).is_some_and(|&(_, _, b)| b == tok)
            });
            if !passed_on {
                out.push(Evidence {
                    culprit: v,
                    violation: Violation::TransferTheft { token: tok },
                    proof: vec![entries[rx_idx], entries[ack_idx]],
                });
            }
        }
    }
}
