//! The Byzantine misbehavior combinator: a seeded plan selecting which
//! nodes lie, and a generic [`Misbehaving<P>`] wrapper that corrupts a
//! node's traffic *around* its honest protocol state machine.
//!
//! The wrapper composes over any protocol implementing [`Tamper`] — done
//! here for [`AsyncSingleSource`], [`AsyncMultiSource`], and
//! [`AsyncOblivious`] — without touching the honest handler code: it
//! bookmarks the staged send ops before delegating, then mutates, drops,
//! or forges ops per its assigned [`MisbehaviorKind`], drawing every
//! decision from a per-node seeded RNG so runs stay replay-identical.

use crate::engine::{EventCtx, EventProtocol};
use crate::faults::RecoveryMode;
use crate::protocol::{AsyncMsMsg, AsyncOblMsg, AsyncSsMsg};
use crate::protocol::{AsyncMultiSource, AsyncOblivious, AsyncSingleSource};
use dynspread_graph::NodeId;
use dynspread_sim::token::{TokenId, TokenSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The misbehavior repertoire. Each kind targets one invariant the honest
/// machinery relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MisbehaviorKind {
    /// Announce completeness (or center-ship) the node does not have —
    /// equivocation on the announcement family.
    FalseClaims,
    /// Acknowledge incoming ownership transfers and silently discard the
    /// token — the theft attack on the walk's exactly-once transfer.
    ForgeTransfers,
    /// Re-send walk transfers under stale/duplicate sequence numbers and
    /// equivocate the token bound to a sequence number.
    SeqReplay,
    /// Selectively drop the acknowledgments the node owes its peers.
    DropAcks,
    /// Substitute token ids in outgoing token-bearing payloads.
    MutateTokens,
}

impl MisbehaviorKind {
    /// Every kind, in a fixed order (sweep axes, round-robin plans).
    pub const ALL: [MisbehaviorKind; 5] = [
        MisbehaviorKind::FalseClaims,
        MisbehaviorKind::ForgeTransfers,
        MisbehaviorKind::SeqReplay,
        MisbehaviorKind::DropAcks,
        MisbehaviorKind::MutateTokens,
    ];

    /// A short stable label (table axes, bench output).
    pub fn label(self) -> &'static str {
        match self {
            MisbehaviorKind::FalseClaims => "false-claims",
            MisbehaviorKind::ForgeTransfers => "forge-transfers",
            MisbehaviorKind::SeqReplay => "seq-replay",
            MisbehaviorKind::DropAcks => "drop-acks",
            MisbehaviorKind::MutateTokens => "mutate-tokens",
        }
    }
}

/// A seeded assignment of misbehavior kinds to nodes. The plan fully
/// determines who lies and how; together with the engine seed it makes
/// Byzantine executions replay-identical.
#[derive(Clone, Debug)]
pub struct MisbehaviorPlan {
    seed: u64,
    roles: Vec<Option<MisbehaviorKind>>,
}

impl MisbehaviorPlan {
    /// All `n` nodes honest (the wrapper becomes a pure pass-through).
    pub fn honest(n: usize) -> Self {
        MisbehaviorPlan {
            seed: 0,
            roles: vec![None; n],
        }
    }

    /// `⌊fraction · n⌋` nodes, chosen by a seeded shuffle, all running
    /// `kind`.
    pub fn uniform(n: usize, fraction: f64, kind: MisbehaviorKind, seed: u64) -> Self {
        Self::with_kinds(n, fraction, &[kind], seed)
    }

    /// `⌊fraction · n⌋` nodes, chosen by a seeded shuffle, cycling
    /// through `kinds` in order (empty `kinds` means everyone honest).
    pub fn with_kinds(n: usize, fraction: f64, kinds: &[MisbehaviorKind], seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let mut roles = vec![None; n];
        let m = (fraction * n as f64).floor() as usize;
        if m > 0 && !kinds.is_empty() {
            let mut ids: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD5_EED0_0001u64);
            ids.shuffle(&mut rng);
            for (i, &v) in ids.iter().take(m).enumerate() {
                roles[v] = Some(kinds[i % kinds.len()]);
            }
        }
        MisbehaviorPlan { seed, roles }
    }

    /// Exactly one malicious node `v` running `kind` (proptest plants).
    pub fn plant(n: usize, v: NodeId, kind: MisbehaviorKind, seed: u64) -> Self {
        let mut roles = vec![None; n];
        roles[v.index()] = Some(kind);
        MisbehaviorPlan { seed, roles }
    }

    /// The plan's seed (feeds each wrapper's per-node RNG).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of nodes covered by the plan.
    pub fn node_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of malicious nodes.
    pub fn byzantine_nodes(&self) -> usize {
        self.roles.iter().filter(|r| r.is_some()).count()
    }

    /// Whether node `v` is malicious under this plan.
    pub fn is_malicious(&self, v: NodeId) -> bool {
        self.roles[v.index()].is_some()
    }

    /// The kind node `v` runs, if malicious.
    pub fn kind_of(&self, v: NodeId) -> Option<MisbehaviorKind> {
        self.roles[v.index()]
    }

    /// The malicious nodes, in ascending ID order.
    pub fn malicious(&self) -> Vec<NodeId> {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|_| NodeId::new(i as u32)))
            .collect()
    }

    /// Wraps a vector of honest protocol nodes per this plan.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the plan's node count.
    pub fn wrap<P: Tamper>(&self, nodes: Vec<P>) -> Vec<Misbehaving<P>> {
        assert_eq!(nodes.len(), self.roles.len(), "plan/node count mismatch");
        nodes
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                Misbehaving::new(
                    p,
                    self.roles[i],
                    self.seed ^ (0x6D15_BE4A_u64 << 16) ^ (i as u64).wrapping_mul(0x9E37_79B9),
                )
            })
            .collect()
    }
}

/// Protocol-specific tampering hooks: how each message family of a
/// protocol can be lied about. Implementing this (plus
/// [`AuditMsg`](super::transcript::AuditMsg) on the message type) is all
/// it takes to make a protocol wrappable by [`Misbehaving`]; the honest
/// handlers stay untouched.
pub trait Tamper: EventProtocol {
    /// A claim the node's honest state does *not* entitle it to make
    /// (incomplete ⇒ `Completeness`, non-center ⇒ `CenterAnnounce`), or
    /// `None` when the claim would be true — lying is only lying when
    /// the statement is false.
    fn forge_false_claim(&self) -> Option<Self::Msg>;

    /// Whether `msg` is an acknowledgment (the `DropAcks` target).
    fn is_ack(msg: &Self::Msg) -> bool;

    /// Mutates a token-bearing payload in place (preferring a token the
    /// node provably does not hold); returns `false` if `msg` carries no
    /// token to corrupt.
    fn mutate_token(&self, msg: &mut Self::Msg) -> bool;

    /// Forged variants of a staged ownership transfer for the
    /// `SeqReplay` kind: `(destination, payload)` pairs reusing the
    /// original's sequence number against a different token or peer.
    /// Empty for protocols without sequenced transfers.
    fn replay_variants(
        &self,
        to: NodeId,
        msg: &Self::Msg,
        neighbors: &[NodeId],
    ) -> Vec<(NodeId, Self::Msg)>;

    /// The `ForgeTransfers` response to an incoming message: `Some((t,
    /// ack))` means "acknowledge the transfer of `t` and destroy it" —
    /// the wrapper swallows the delivery (the honest state never sees
    /// it) and sends the forged ack. `None` for everything that is not
    /// an ownership transfer.
    fn theft_response(&self, from: NodeId, msg: &Self::Msg) -> Option<(TokenId, Self::Msg)>;
}

/// Picks a token id different from `t` (mod the universe of `known`),
/// preferring one the node does not hold.
fn corrupt_token(known: &TokenSet, t: TokenId) -> Option<TokenId> {
    let k = known.universe();
    if k < 2 {
        return None;
    }
    known
        .missing()
        .find(|&m| m != t)
        .or_else(|| Some(TokenId::new(((t.index() + 1) % k) as u32)))
}

impl Tamper for AsyncSingleSource {
    fn forge_false_claim(&self) -> Option<AsyncSsMsg> {
        (!self.is_complete()).then_some(AsyncSsMsg::Completeness)
    }

    fn is_ack(msg: &AsyncSsMsg) -> bool {
        matches!(msg, AsyncSsMsg::Ack)
    }

    fn mutate_token(&self, msg: &mut AsyncSsMsg) -> bool {
        if let AsyncSsMsg::Token(t) = msg {
            if let Some(bad) = self.known_tokens().and_then(|k| corrupt_token(k, *t)) {
                *t = bad;
                return true;
            }
        }
        false
    }

    fn replay_variants(
        &self,
        _: NodeId,
        _: &AsyncSsMsg,
        _: &[NodeId],
    ) -> Vec<(NodeId, AsyncSsMsg)> {
        Vec::new()
    }

    fn theft_response(&self, _: NodeId, _: &AsyncSsMsg) -> Option<(TokenId, AsyncSsMsg)> {
        None
    }
}

impl Tamper for AsyncMultiSource {
    fn forge_false_claim(&self) -> Option<AsyncMsMsg> {
        // Lie about the first source we are *not* complete for — a valid
        // source id (anything else would be rejected as malformed on
        // receipt), but a false statement about our holdings.
        (0..self.source_map().source_count())
            .find(|&idx| !self.complete_wrt(idx))
            .map(|idx| AsyncMsMsg::Completeness(self.source_map().sources()[idx]))
    }

    fn is_ack(msg: &AsyncMsMsg) -> bool {
        matches!(msg, AsyncMsMsg::Ack(_))
    }

    fn mutate_token(&self, msg: &mut AsyncMsMsg) -> bool {
        if let AsyncMsMsg::Token(t) = msg {
            if let Some(bad) = self.known_tokens().and_then(|k| corrupt_token(k, *t)) {
                *t = bad;
                return true;
            }
        }
        false
    }

    fn replay_variants(
        &self,
        _: NodeId,
        _: &AsyncMsMsg,
        _: &[NodeId],
    ) -> Vec<(NodeId, AsyncMsMsg)> {
        Vec::new()
    }

    fn theft_response(&self, _: NodeId, _: &AsyncMsMsg) -> Option<(TokenId, AsyncMsMsg)> {
        None
    }
}

impl Tamper for AsyncOblivious {
    fn forge_false_claim(&self) -> Option<AsyncOblMsg> {
        (!self.is_center()).then_some(AsyncOblMsg::CenterAnnounce)
    }

    fn is_ack(msg: &AsyncOblMsg) -> bool {
        matches!(msg, AsyncOblMsg::WalkAck { .. })
    }

    fn mutate_token(&self, msg: &mut AsyncOblMsg) -> bool {
        if let AsyncOblMsg::Walk { token, .. } = msg {
            if let Some(bad) = self.known_tokens().and_then(|k| corrupt_token(k, *token)) {
                *token = bad;
                return true;
            }
        }
        false
    }

    fn replay_variants(
        &self,
        to: NodeId,
        msg: &AsyncOblMsg,
        neighbors: &[NodeId],
    ) -> Vec<(NodeId, AsyncOblMsg)> {
        let AsyncOblMsg::Walk { token, seq } = msg else {
            return Vec::new();
        };
        let mut out = Vec::new();
        // Equivocation: the same sequence number bound to a different
        // token, toward the same peer.
        if let Some(k) = self.known_tokens() {
            if k.universe() >= 2 {
                let other = TokenId::new(((token.index() + 1) % k.universe()) as u32);
                out.push((
                    to,
                    AsyncOblMsg::Walk {
                        token: other,
                        seq: *seq,
                    },
                ));
            }
        }
        // Replay: the same (token, seq) re-targeted at a different
        // neighbor.
        if let Some(&u) = neighbors.iter().find(|&&u| u != to) {
            out.push((
                u,
                AsyncOblMsg::Walk {
                    token: *token,
                    seq: *seq,
                },
            ));
        }
        out
    }

    fn theft_response(&self, _from: NodeId, msg: &AsyncOblMsg) -> Option<(TokenId, AsyncOblMsg)> {
        let AsyncOblMsg::Walk { token, seq } = msg else {
            return None;
        };
        Some((
            *token,
            AsyncOblMsg::WalkAck {
                token: *token,
                seq: *seq,
            },
        ))
    }
}

/// A node that runs its honest protocol but lies on the wire, per one
/// [`MisbehaviorKind`] from a [`MisbehaviorPlan`].
///
/// With `kind = None` the wrapper is a pure pass-through: it stages the
/// same ops, arms the same timers, and the wrapped execution is
/// byte-identical to the unwrapped one (asserted in
/// `tests/runtime_equivalence.rs`). With a kind assigned it corrupts
/// outgoing traffic after each honest handler runs (and, for
/// `ForgeTransfers`, intercepts incoming transfers before the handler
/// sees them), drawing every probabilistic choice from its own seeded
/// RNG stream.
#[derive(Clone, Debug)]
pub struct Misbehaving<P: Tamper> {
    inner: P,
    kind: Option<MisbehaviorKind>,
    rng: StdRng,
    injected: u64,
    stolen: Vec<TokenId>,
}

impl<P: Tamper> Misbehaving<P> {
    /// Wraps `inner`; `seed` feeds this node's private misbehavior RNG.
    pub fn new(inner: P, kind: Option<MisbehaviorKind>, seed: u64) -> Self {
        Misbehaving {
            inner,
            kind,
            rng: StdRng::seed_from_u64(seed),
            injected: 0,
            stolen: Vec::new(),
        }
    }

    /// The wrapped honest protocol state.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Whether this node runs a misbehavior kind.
    pub fn is_malicious(&self) -> bool {
        self.kind.is_some()
    }

    /// Tampering actions performed so far (forged claims count one per
    /// recipient; drops, mutations, replays, and thefts one each).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Tokens this node acknowledged and destroyed (`ForgeTransfers`).
    pub fn stolen_tokens(&self) -> &[TokenId] {
        &self.stolen
    }

    /// Post-handler tampering over the ops staged since `mark`.
    /// `claim_slot` gates the forged-claim kinds to start/timer events so
    /// the claim cadence mirrors honest announcement traffic.
    fn tamper_outgoing(&mut self, ctx: &mut EventCtx<'_, P::Msg>, mark: usize, claim_slot: bool) {
        let Some(kind) = self.kind else { return };
        let Misbehaving {
            inner,
            rng,
            injected,
            ..
        } = self;
        match kind {
            MisbehaviorKind::DropAcks => {
                ctx.tamper_staged(mark, |msg, _| {
                    if P::is_ack(msg) && rng.gen_bool(0.8) {
                        *injected += 1;
                        false // the peer waits for an ack that never left
                    } else {
                        true
                    }
                });
            }
            MisbehaviorKind::MutateTokens => {
                ctx.tamper_staged(mark, |msg, _| {
                    if rng.gen_bool(0.6) && inner.mutate_token(msg) {
                        *injected += 1;
                    }
                    true
                });
            }
            MisbehaviorKind::SeqReplay => {
                let nbrs: Vec<NodeId> = ctx.neighbors().to_vec();
                let mut forged: Vec<(NodeId, P::Msg)> = Vec::new();
                ctx.tamper_staged(mark, |msg, dests| {
                    for &to in dests {
                        forged.extend(inner.replay_variants(to, msg, &nbrs));
                    }
                    true
                });
                *injected += forged.len() as u64;
                for (to, msg) in forged {
                    ctx.send(to, msg);
                }
            }
            MisbehaviorKind::FalseClaims => {
                if claim_slot && rng.gen_bool(0.9) {
                    if let Some(claim) = inner.forge_false_claim() {
                        let nbrs: Vec<NodeId> = ctx.neighbors().to_vec();
                        *injected += nbrs.len() as u64;
                        for u in nbrs {
                            ctx.send(u, claim.clone());
                        }
                    }
                }
            }
            MisbehaviorKind::ForgeTransfers => {} // incoming side only
        }
    }
}

impl<P: Tamper> EventProtocol for Misbehaving<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut EventCtx<'_, P::Msg>) {
        let mark = ctx.staged_ops();
        self.inner.on_start(ctx);
        self.tamper_outgoing(ctx, mark, true);
    }

    fn on_message(&mut self, from: NodeId, msg: &P::Msg, ctx: &mut EventCtx<'_, P::Msg>) {
        if self.kind == Some(MisbehaviorKind::ForgeTransfers) {
            if let Some((token, ack)) = self.inner.theft_response(from, msg) {
                if self.rng.gen_bool(0.75) {
                    // Acknowledge and destroy: the sender releases its
                    // responsibility, the honest state never accepts the
                    // token. The transcript still shows our ack — which
                    // is exactly what convicts us.
                    ctx.send(from, ack);
                    self.stolen.push(token);
                    self.injected += 1;
                    return;
                }
            }
        }
        let mark = ctx.staged_ops();
        self.inner.on_message(from, msg, ctx);
        self.tamper_outgoing(ctx, mark, false);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut EventCtx<'_, P::Msg>) {
        let mark = ctx.staged_ops();
        self.inner.on_timer(id, ctx);
        self.tamper_outgoing(ctx, mark, true);
    }

    fn on_recover(&mut self, mode: RecoveryMode, ctx: &mut EventCtx<'_, P::Msg>) {
        // A liar that crashes rejoins lying: forward the hook and tamper
        // the rejoin traffic like any other claim slot.
        let mark = ctx.staged_ops();
        self.inner.on_recover(mode, ctx);
        self.tamper_outgoing(ctx, mark, true);
    }

    fn on_heal(&mut self, ctx: &mut EventCtx<'_, P::Msg>) {
        let mark = ctx.staged_ops();
        self.inner.on_heal(ctx);
        self.tamper_outgoing(ctx, mark, false);
    }

    fn known_tokens(&self) -> Option<&TokenSet> {
        self.inner.known_tokens()
    }
}
