//! Byzantine misbehavior injection and provable-evidence accountability.
//!
//! Three layers, composable over any of the async protocol ports without
//! touching their honest handler code:
//!
//! 1. **Injection** ([`misbehave`]): a seeded [`MisbehaviorPlan`] marks
//!    nodes malicious with one [`MisbehaviorKind`] each, and the generic
//!    [`Misbehaving`] wrapper makes them equivocate on completeness,
//!    forge and replay ownership transfers, suppress acknowledgments, or
//!    mutate token payloads — by tampering with the honest node's staged
//!    sends, so the honest state machine underneath stays untouched.
//! 2. **Transcripts** ([`transcript`]): the engine appends every sent and
//!    consumed message to per-node chain-hashed logs — the deterministic
//!    offline stand-in for signed transcripts.
//! 3. **Audit** ([`evidence`]): the pure [`check_evidence`] auditor
//!    cross-examines the transcripts and pins each violation to its
//!    culprit with a minimal proof. It is *sound* (honest nodes are never
//!    indicted — the predicates only fire on behavior the honest code
//!    cannot produce) and deterministic (byte-identical verdicts under
//!    seeded replay).
//!
//! The [`run`] drivers tie it together: wrapped protocols, recorded
//! transcripts, post-run audit, and Byzantine-resilience metrics in the
//! workspace [`RunReport`](dynspread_sim::RunReport).

pub mod evidence;
pub mod misbehave;
pub mod run;
pub mod transcript;

pub use evidence::{check_evidence, AuditSetup, Evidence, Violation};
pub use misbehave::{Misbehaving, MisbehaviorKind, MisbehaviorPlan, Tamper};
pub use run::{
    run_byzantine_multi_source, run_byzantine_oblivious, run_byzantine_single_source,
    ByzantineObliviousOutcome, ByzantineOutcome,
};
pub use transcript::{AuditMsg, Direction, MsgKind, MsgSummary, Transcript, TranscriptEntry};
