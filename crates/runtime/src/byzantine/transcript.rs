//! Deterministic hashed transcripts — the offline stand-in for signed
//! message logs.
//!
//! Every node under audit appends one [`TranscriptEntry`] per message it
//! sends (one per destination, recorded **before** link planning, so even
//! dropped or unroutable sends are on the record — exactly what a signed
//! wire message would prove) and one per message copy it consumes. Each
//! entry folds into a running chain hash ([`Transcript::chain_hash`]), the
//! cheap deterministic analogue of a signature chain: two replays of the
//! same seeded execution produce byte-identical transcripts, and any
//! divergence shows up as a different chain digest.
//!
//! Transcripts store [`MsgSummary`]s, not payloads: the protocol-level
//! facts (message kind, token, sequence number, announced source) the
//! [`check_evidence`](super::check_evidence) auditor cross-examines. A
//! protocol opts in by implementing [`AuditMsg`] for its message type —
//! done here for all three async ports, without touching their honest
//! handler code.

use crate::event::VirtualTime;
use crate::protocol::{AsyncMsMsg, AsyncOblMsg, AsyncSsMsg};
use dynspread_graph::NodeId;
use dynspread_sim::token::TokenId;

/// 64-bit FNV-1a — the repo-local deterministic hash (no external deps,
/// stable across platforms and runs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The protocol-level message family of a transcript entry, shared across
/// all three async protocols.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    /// Discovery pull (`Probe` in every protocol).
    Probe,
    /// A completeness announcement (`Completeness` / `Completeness(x)`).
    Completeness,
    /// An announcement acknowledgment (`Ack` / `Ack(x)`).
    Ack,
    /// A token request.
    Request,
    /// A token payload.
    Token,
    /// A random-walk ownership transfer.
    Walk,
    /// A walk-transfer acknowledgment.
    WalkAck,
    /// A center self-identification.
    CenterAnnounce,
}

/// What a transcript records about one message: the protocol facts the
/// auditor reasons over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgSummary {
    /// The message family.
    pub kind: MsgKind,
    /// The token carried, for token-bearing messages.
    pub token: Option<TokenId>,
    /// The transfer sequence number, for walk messages.
    pub seq: Option<u64>,
    /// The announced source, for multi-source completeness traffic.
    pub source: Option<NodeId>,
}

impl MsgSummary {
    /// A summary carrying only a kind.
    pub fn bare(kind: MsgKind) -> Self {
        MsgSummary {
            kind,
            token: None,
            seq: None,
            source: None,
        }
    }

    /// Folds this summary into the FNV-1a chain state.
    fn digest_into(&self, h: u64) -> u64 {
        let mut bytes = [0u8; 1 + 1 + 4 + 1 + 8 + 1 + 4];
        bytes[0] = self.kind as u8;
        bytes[1] = self.token.is_some() as u8;
        bytes[2..6].copy_from_slice(&self.token.map_or(0, |t| t.index() as u32).to_le_bytes());
        bytes[6] = self.seq.is_some() as u8;
        bytes[7..15].copy_from_slice(&self.seq.unwrap_or(0).to_le_bytes());
        bytes[15] = self.source.is_some() as u8;
        bytes[16..20].copy_from_slice(&self.source.map_or(0, |s| s.index() as u32).to_le_bytes());
        fnv1a(&[&h.to_le_bytes()[..], &bytes[..]].concat())
    }
}

/// Opt-in summarization of a protocol's messages for transcript auditing.
///
/// The summary must determine the payload (all three async ports' message
/// types are fully described by kind + token + seq + source), so equal
/// summaries mean equal wire messages — what lets the chain hash stand in
/// for a signature over the payload.
pub trait AuditMsg: Clone {
    /// The protocol facts of this message.
    fn summarize(&self) -> MsgSummary;
}

impl AuditMsg for AsyncSsMsg {
    fn summarize(&self) -> MsgSummary {
        match self {
            AsyncSsMsg::Probe => MsgSummary::bare(MsgKind::Probe),
            AsyncSsMsg::Completeness => MsgSummary::bare(MsgKind::Completeness),
            AsyncSsMsg::Ack => MsgSummary::bare(MsgKind::Ack),
            AsyncSsMsg::Request(t) => MsgSummary {
                token: Some(*t),
                ..MsgSummary::bare(MsgKind::Request)
            },
            AsyncSsMsg::Token(t) => MsgSummary {
                token: Some(*t),
                ..MsgSummary::bare(MsgKind::Token)
            },
        }
    }
}

impl AuditMsg for AsyncMsMsg {
    fn summarize(&self) -> MsgSummary {
        match self {
            AsyncMsMsg::Probe => MsgSummary::bare(MsgKind::Probe),
            AsyncMsMsg::Completeness(x) => MsgSummary {
                source: Some(*x),
                ..MsgSummary::bare(MsgKind::Completeness)
            },
            AsyncMsMsg::Ack(x) => MsgSummary {
                source: Some(*x),
                ..MsgSummary::bare(MsgKind::Ack)
            },
            AsyncMsMsg::Request(t) => MsgSummary {
                token: Some(*t),
                ..MsgSummary::bare(MsgKind::Request)
            },
            AsyncMsMsg::Token(t) => MsgSummary {
                token: Some(*t),
                ..MsgSummary::bare(MsgKind::Token)
            },
        }
    }
}

impl AuditMsg for AsyncOblMsg {
    fn summarize(&self) -> MsgSummary {
        match self {
            AsyncOblMsg::Probe => MsgSummary::bare(MsgKind::Probe),
            AsyncOblMsg::CenterAnnounce => MsgSummary::bare(MsgKind::CenterAnnounce),
            AsyncOblMsg::Walk { token, seq } => MsgSummary {
                token: Some(*token),
                seq: Some(*seq),
                ..MsgSummary::bare(MsgKind::Walk)
            },
            AsyncOblMsg::WalkAck { token, seq } => MsgSummary {
                token: Some(*token),
                seq: Some(*seq),
                ..MsgSummary::bare(MsgKind::WalkAck)
            },
        }
    }
}

/// Whether an entry records a send or a consumed delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Direction {
    /// The node sent this message (recorded before link planning).
    Sent,
    /// The node consumed this message copy from its mailbox.
    Received,
}

/// One line of a node's transcript.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranscriptEntry {
    /// Send or receive.
    pub dir: Direction,
    /// The other endpoint (destination of a send, sender of a receive).
    pub peer: NodeId,
    /// Virtual time of the event.
    pub at: VirtualTime,
    /// The recorded protocol facts.
    pub summary: MsgSummary,
}

/// One node's append-only, chain-hashed message log.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    entries: Vec<TranscriptEntry>,
    chain: u64,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Transcript {
            entries: Vec::new(),
            chain: fnv1a(b"dynspread-transcript-v1"),
        }
    }

    /// Appends an entry and folds it into the chain hash.
    pub(crate) fn append(
        &mut self,
        dir: Direction,
        peer: NodeId,
        at: VirtualTime,
        summary: MsgSummary,
    ) {
        let mut h = self.chain;
        let peer_bytes = (peer.index() as u32).to_le_bytes();
        h = fnv1a(&[&h.to_le_bytes()[..], &[dir as u8], &peer_bytes[..]].concat());
        h = fnv1a(&[&h.to_le_bytes()[..], &at.to_le_bytes()].concat());
        self.chain = summary.digest_into(h);
        self.entries.push(TranscriptEntry {
            dir,
            peer,
            at,
            summary,
        });
    }

    /// The recorded entries, in execution order.
    pub fn entries(&self) -> &[TranscriptEntry] {
        &self.entries
    }

    /// The running chain digest over every appended entry — the
    /// signature stand-in: byte-identical across seeded replays,
    /// different on any divergence.
    pub fn chain_hash(&self) -> u64 {
        self.chain
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_hash_is_order_sensitive_and_deterministic() {
        let a = MsgSummary::bare(MsgKind::Probe);
        let b = MsgSummary {
            token: Some(TokenId::new(3)),
            seq: Some(7),
            ..MsgSummary::bare(MsgKind::Walk)
        };
        let mut t1 = Transcript::new();
        t1.append(Direction::Sent, NodeId::new(1), 5, a);
        t1.append(Direction::Received, NodeId::new(2), 9, b);
        let mut t2 = Transcript::new();
        t2.append(Direction::Sent, NodeId::new(1), 5, a);
        t2.append(Direction::Received, NodeId::new(2), 9, b);
        assert_eq!(t1.chain_hash(), t2.chain_hash(), "replay-identical");
        let mut t3 = Transcript::new();
        t3.append(Direction::Received, NodeId::new(2), 9, b);
        t3.append(Direction::Sent, NodeId::new(1), 5, a);
        assert_ne!(t1.chain_hash(), t3.chain_hash(), "order matters");
        assert_eq!(t1.len(), 2);
        assert!(!t1.is_empty());
    }

    #[test]
    fn summaries_distinguish_the_wire_messages() {
        let msgs = [
            AsyncOblMsg::Probe,
            AsyncOblMsg::CenterAnnounce,
            AsyncOblMsg::Walk {
                token: TokenId::new(0),
                seq: 1,
            },
            AsyncOblMsg::Walk {
                token: TokenId::new(1),
                seq: 1,
            },
            AsyncOblMsg::WalkAck {
                token: TokenId::new(0),
                seq: 1,
            },
        ];
        for (i, a) in msgs.iter().enumerate() {
            for (j, b) in msgs.iter().enumerate() {
                assert_eq!(
                    a.summarize() == b.summarize(),
                    i == j,
                    "summary must determine the payload"
                );
            }
        }
    }
}
