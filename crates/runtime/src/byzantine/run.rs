//! Drivers that run a protocol under a [`MisbehaviorPlan`], record
//! transcripts, audit them, and report Byzantine-resilience metrics.
//!
//! Each driver mirrors its honest counterpart exactly — same engine
//! seeds, same hand-off logic, same configuration — so the honest plan
//! ([`MisbehaviorPlan::honest`]) reproduces the honest run byte for
//! byte, and any degradation measured under a malicious plan is
//! attributable to the injected misbehavior alone.

use super::evidence::{check_evidence, AuditSetup, Evidence};
use super::misbehave::MisbehaviorPlan;
use crate::engine::{EventProtocol, EventReport, EventSim, StopReason};
use crate::event::VirtualTime;
use crate::link::LinkModel;
use crate::protocol::{
    AsyncConfig, AsyncMultiSource, AsyncOblivious, AsyncObliviousConfig, AsyncSingleSource,
};
use dynspread_core::multi_source::SourceMap;
use dynspread_core::oblivious::{center_count, degree_threshold, source_threshold};
use dynspread_core::walk::elect_centers;
use dynspread_graph::adversary::Adversary;
use dynspread_graph::NodeId;
use dynspread_sim::token::{TokenAssignment, TokenId};
use dynspread_sim::RunReport;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Outcome of a single-phase Byzantine run (single- or multi-source).
#[derive(Clone, Debug)]
pub struct ByzantineOutcome {
    /// The engine-level report.
    pub event: EventReport,
    /// The workspace-level report, with the Byzantine counters filled.
    pub report: RunReport,
    /// Every proven violation, pinned to its culprit.
    pub evidence: Vec<Evidence>,
    /// Mean fraction of the token universe known by *honest* nodes at
    /// the end of the run (1.0 when there are no honest nodes).
    pub honest_coverage: f64,
    /// Misbehaving actions actually injected by the wrappers.
    pub injected: u64,
    /// Whether the run reached full dissemination (all nodes, including
    /// malicious ones).
    pub completed: bool,
}

/// Counts distinct indicted nodes.
fn verdict_count(evidence: &[Evidence]) -> u64 {
    evidence
        .iter()
        .map(|e| e.culprit)
        .collect::<BTreeSet<_>>()
        .len() as u64
}

/// Fills the Byzantine counters of a [`RunReport`].
fn stamp_report(report: &mut RunReport, plan: &MisbehaviorPlan, evidence: &[Evidence]) {
    report.byzantine_nodes = plan.byzantine_nodes();
    report.violations_detected = evidence.len() as u64;
    report.evidence_verdicts = verdict_count(evidence);
}

/// Mean honest-node coverage from final knowledge sets.
fn coverage_of<'a>(
    plan: &MisbehaviorPlan,
    k: usize,
    knowledge: impl Iterator<Item = &'a dynspread_sim::token::TokenSet>,
) -> f64 {
    let mut sum = 0.0;
    let mut honest = 0usize;
    for (i, know) in knowledge.enumerate() {
        if !plan.is_malicious(NodeId::new(i as u32)) {
            sum += know.count() as f64 / k.max(1) as f64;
            honest += 1;
        }
    }
    if honest == 0 {
        1.0
    } else {
        sum / honest as f64
    }
}

/// Runs [`AsyncSingleSource`] with the plan's nodes wrapped in
/// [`Misbehaving`](super::Misbehaving), records transcripts, and audits
/// the run.
///
/// # Panics
///
/// Panics if the plan's node count differs from the assignment's.
#[allow(clippy::too_many_arguments)] // wrap→run→audit one-stop driver
pub fn run_byzantine_single_source<A, L>(
    assignment: &TokenAssignment,
    adversary: A,
    link: L,
    ticks_per_round: VirtualTime,
    seed: u64,
    cfg: AsyncConfig,
    plan: &MisbehaviorPlan,
    max_time: VirtualTime,
) -> ByzantineOutcome
where
    A: Adversary,
    L: LinkModel,
{
    assert_eq!(plan.node_count(), assignment.node_count(), "plan size");
    let nodes = plan.wrap(AsyncSingleSource::nodes(assignment, cfg));
    let mut sim =
        EventSim::with_tracking(nodes, adversary, link, ticks_per_round, seed, assignment);
    sim.record_transcripts();
    let event = sim.run(max_time);
    let setup = AuditSetup::single_source(assignment);
    let evidence = check_evidence(&setup, sim.transcripts());
    let mut report = sim.run_report("byz-async-single-source");
    stamp_report(&mut report, plan, &evidence);
    let tracker = sim.tracker().expect("tracking enabled");
    let n = assignment.node_count();
    let honest_coverage = coverage_of(
        plan,
        assignment.token_count(),
        NodeId::all(n).map(|v| tracker.knowledge(v)),
    );
    let injected = NodeId::all(n).map(|v| sim.node(v).injected()).sum();
    let completed = event.stopped == StopReason::Complete;
    ByzantineOutcome {
        event,
        report,
        evidence,
        honest_coverage,
        injected,
        completed,
    }
}

/// Runs [`AsyncMultiSource`] under the plan; see
/// [`run_byzantine_single_source`].
///
/// # Panics
///
/// Panics if the plan's node count differs from the assignment's.
#[allow(clippy::too_many_arguments)] // wrap→run→audit one-stop driver
pub fn run_byzantine_multi_source<A, L>(
    assignment: &TokenAssignment,
    adversary: A,
    link: L,
    ticks_per_round: VirtualTime,
    seed: u64,
    cfg: AsyncConfig,
    plan: &MisbehaviorPlan,
    max_time: VirtualTime,
) -> ByzantineOutcome
where
    A: Adversary,
    L: LinkModel,
{
    assert_eq!(plan.node_count(), assignment.node_count(), "plan size");
    let (nodes, map) = AsyncMultiSource::nodes(assignment, cfg);
    let nodes = plan.wrap(nodes);
    let mut sim =
        EventSim::with_tracking(nodes, adversary, link, ticks_per_round, seed, assignment);
    sim.record_transcripts();
    let event = sim.run(max_time);
    let setup = AuditSetup::multi_source(assignment, &map);
    let evidence = check_evidence(&setup, sim.transcripts());
    let mut report = sim.run_report("byz-async-multi-source");
    stamp_report(&mut report, plan, &evidence);
    let tracker = sim.tracker().expect("tracking enabled");
    let n = assignment.node_count();
    let honest_coverage = coverage_of(
        plan,
        assignment.token_count(),
        NodeId::all(n).map(|v| tracker.knowledge(v)),
    );
    let injected = NodeId::all(n).map(|v| sim.node(v).injected()).sum();
    let completed = event.stopped == StopReason::Complete;
    ByzantineOutcome {
        event,
        report,
        evidence,
        honest_coverage,
        injected,
        completed,
    }
}

/// Outcome of a full two-phase Byzantine oblivious run.
#[derive(Clone, Debug)]
pub struct ByzantineObliviousOutcome {
    /// Phase-1 report (absent on the direct few-sources path).
    pub phase1: Option<EventReport>,
    /// Phase-2 report.
    pub phase2: EventReport,
    /// The workspace-level report (phase-2 engine), Byzantine counters
    /// filled from both phases' audits.
    pub report: RunReport,
    /// Violations proven across both phases.
    pub evidence: Vec<Evidence>,
    /// Tokens whose last claimant was destroyed by forged acks and that
    /// the hand-off recovered from the original assignment holder.
    pub stolen_recovered: usize,
    /// Tokens resolved to a non-center owner at the hand-off.
    pub stranded_tokens: usize,
    /// Mean honest-node coverage after phase 2.
    pub honest_coverage: f64,
    /// Number of malicious nodes in the plan.
    pub byzantine_nodes: usize,
    /// Misbehaving actions injected across both phases.
    pub injected: u64,
    /// Whether phase 2 reached full dissemination.
    pub completed: bool,
}

/// Runs the full two-phase oblivious pipeline under the plan — both the
/// walk phase and the multi-source phase get wrapped nodes and
/// transcript auditing.
///
/// The hand-off is the Byzantine-tolerant variant of
/// [`run_async_oblivious`](crate::protocol::run_async_oblivious)'s:
/// honest responsibility conservation can be broken by a *forged*
/// `WalkAck` (the thief convinces the sender ownership moved, then
/// destroys the token), so a token with no remaining claimant falls
/// back to its original assignment holder — knowledge is monotone, so
/// that holder can still serve it — and is counted in
/// [`ByzantineObliviousOutcome::stolen_recovered`]. Honest plans never
/// take the fallback.
///
/// # Panics
///
/// Panics if the plan's node count differs from the assignment's.
pub fn run_byzantine_oblivious<A1, A2, L1, L2>(
    assignment: &TokenAssignment,
    adversary1: A1,
    adversary2: A2,
    link1: L1,
    link2: L2,
    cfg: &AsyncObliviousConfig,
    plan: &MisbehaviorPlan,
) -> ByzantineObliviousOutcome
where
    A1: Adversary,
    A2: Adversary,
    L1: LinkModel,
    L2: LinkModel,
{
    let n = assignment.node_count();
    let k = assignment.token_count();
    assert_eq!(plan.node_count(), n, "plan size");
    let s = assignment.sources().len();
    let threshold = cfg.source_threshold.unwrap_or_else(|| source_threshold(n));

    if (s as f64) <= threshold {
        // Few sources: the pipeline is a single multi-source run.
        let out = run_byzantine_multi_source(
            assignment,
            adversary2,
            link2,
            cfg.ticks_per_round,
            cfg.seed ^ 0x5EED_0B71_0002u64,
            cfg.retransmit,
            plan,
            cfg.phase2_max_time,
        );
        return ByzantineObliviousOutcome {
            phase1: None,
            phase2: out.event,
            report: out.report,
            evidence: out.evidence,
            stolen_recovered: 0,
            stranded_tokens: 0,
            honest_coverage: out.honest_coverage,
            byzantine_nodes: plan.byzantine_nodes(),
            injected: out.injected,
            completed: out.completed,
        };
    }

    // ---- Phase 1: the walk phase, with wrapped nodes. ----
    let f = center_count(n, k);
    let p_center = cfg
        .center_probability
        .unwrap_or_else(|| (f / n as f64).min(1.0));
    let gamma = cfg
        .degree_threshold
        .unwrap_or_else(|| degree_threshold(n, f));
    let is_center = elect_centers(n, p_center, cfg.seed);
    let nodes = plan.wrap(AsyncOblivious::nodes(
        assignment,
        p_center,
        gamma,
        cfg.seed,
        cfg.retransmit,
        cfg.phase1_deadline,
    ));
    let mut sim1 = EventSim::new(
        nodes,
        adversary1,
        link1,
        cfg.ticks_per_round,
        cfg.seed ^ 0x5EED_0B71_0001u64,
    );
    sim1.record_transcripts();
    let phase1 = sim1.run(cfg.phase1_max_time);

    // ---- Audit phase 1 against the *inner* (honest-state) claims. ----
    let final_claims: Vec<Vec<TokenId>> = NodeId::all(n)
        .map(|v| sim1.node(v).inner().responsible_tokens().collect())
        .collect();
    let setup1 = AuditSetup::oblivious(assignment, is_center.clone(), final_claims.clone());
    let mut evidence = check_evidence(&setup1, sim1.transcripts());

    // ---- Byzantine-tolerant hand-off. ----
    let mut owner_of: Vec<Option<NodeId>> = vec![None; k];
    for v in NodeId::all(n) {
        let node = sim1.node(v).inner();
        for t in node.responsible_tokens() {
            let slot = &mut owner_of[t.index()];
            match *slot {
                None => *slot = Some(v),
                Some(prev) => {
                    if node.is_center() && !sim1.node(prev).inner().is_center() {
                        *slot = Some(v);
                    }
                }
            }
        }
    }
    let mut ownership = TokenAssignment::empty(n, k);
    let mut knowledge = TokenAssignment::empty(n, k);
    let mut stranded = 0usize;
    let mut stolen_recovered = 0usize;
    for (ti, owner) in owner_of.iter().enumerate() {
        let t = TokenId::new(ti as u32);
        let v = match *owner {
            Some(v) => v,
            None => {
                // Every claimant was destroyed (forged-ack theft):
                // recover from the token's original holder, which still
                // knows it (knowledge is monotone).
                stolen_recovered += 1;
                assignment
                    .holders(t)
                    .next()
                    .expect("every token has an initial holder")
            }
        };
        ownership.add_holder(t, v);
        if !is_center[v.index()] {
            stranded += 1;
        }
    }
    for v in NodeId::all(n) {
        let know = sim1
            .node(v)
            .known_tokens()
            .expect("walk nodes expose knowledge");
        for t in know.iter() {
            knowledge.add_holder(t, v);
        }
    }
    let map = Arc::new(SourceMap::from_assignment(&ownership));

    // ---- Phase 2: wrapped multi-source from the resolved owners. ----
    let nodes2 = plan.wrap(
        NodeId::all(n)
            .map(|v| AsyncMultiSource::new(v, &knowledge, Arc::clone(&map), cfg.retransmit))
            .collect(),
    );
    let mut sim2 = EventSim::with_tracking(
        nodes2,
        adversary2,
        link2,
        cfg.ticks_per_round,
        cfg.seed ^ 0x5EED_0B71_0002u64,
        &knowledge,
    );
    sim2.record_transcripts();
    let phase2 = sim2.run(cfg.phase2_max_time);

    let setup2 = AuditSetup::multi_source(&knowledge, &map);
    evidence.extend(check_evidence(&setup2, sim2.transcripts()));

    let mut report = sim2.run_report("byz-async-oblivious");
    stamp_report(&mut report, plan, &evidence);
    let tracker = sim2.tracker().expect("tracking enabled");
    let honest_coverage = coverage_of(plan, k, NodeId::all(n).map(|v| tracker.knowledge(v)));
    let injected: u64 = NodeId::all(n)
        .map(|v| sim1.node(v).injected() + sim2.node(v).injected())
        .sum();
    let completed = phase2.stopped == StopReason::Complete;

    ByzantineObliviousOutcome {
        phase1: Some(phase1),
        phase2,
        report,
        evidence,
        stolen_recovered,
        stranded_tokens: stranded,
        honest_coverage,
        byzantine_nodes: plan.byzantine_nodes(),
        injected,
        completed,
    }
}
