//! Drivers that run a protocol under a [`MisbehaviorPlan`], record
//! transcripts, audit them, and report Byzantine-resilience metrics.
//!
//! Each driver mirrors its honest counterpart exactly — same engine
//! seeds, same hand-off logic, same configuration — so the honest plan
//! ([`MisbehaviorPlan::honest`]) reproduces the honest run byte for
//! byte, and any degradation measured under a malicious plan is
//! attributable to the injected misbehavior alone.
//!
//! Since the [`Scenario`] API unified the
//! driver zoo, these functions are thin wrappers over the builder —
//! kept for source compatibility and asserted byte-identical to their
//! historical outputs by `tests/legacy_identity.rs`. New code should
//! call the builder directly (it also composes Byzantine plans with
//! fault plans and tracing).

use super::evidence::Evidence;
use super::misbehave::MisbehaviorPlan;
use crate::engine::EventReport;
use crate::event::VirtualTime;
use crate::link::LinkModel;
use crate::protocol::{AsyncConfig, AsyncObliviousConfig};
use crate::scenario::Scenario;
use dynspread_graph::adversary::Adversary;
use dynspread_sim::token::TokenAssignment;
use dynspread_sim::RunReport;
use std::collections::BTreeSet;

/// Outcome of a single-phase Byzantine run (single- or multi-source).
#[derive(Clone, Debug)]
pub struct ByzantineOutcome {
    /// The engine-level report.
    pub event: EventReport,
    /// The workspace-level report, with the Byzantine counters filled.
    pub report: RunReport,
    /// Every proven violation, pinned to its culprit.
    pub evidence: Vec<Evidence>,
    /// Mean fraction of the token universe known by *honest* nodes at
    /// the end of the run (1.0 when there are no honest nodes).
    pub honest_coverage: f64,
    /// Misbehaving actions actually injected by the wrappers.
    pub injected: u64,
    /// Whether the run reached full dissemination (all nodes, including
    /// malicious ones).
    pub completed: bool,
}

/// Counts distinct indicted nodes.
fn verdict_count(evidence: &[Evidence]) -> u64 {
    evidence
        .iter()
        .map(|e| e.culprit)
        .collect::<BTreeSet<_>>()
        .len() as u64
}

/// Fills the Byzantine counters of a [`RunReport`].
pub(crate) fn stamp_report(report: &mut RunReport, plan: &MisbehaviorPlan, evidence: &[Evidence]) {
    report.byzantine_nodes = plan.byzantine_nodes();
    report.violations_detected = evidence.len() as u64;
    report.evidence_verdicts = verdict_count(evidence);
}

/// Runs [`AsyncSingleSource`](crate::protocol::AsyncSingleSource) with
/// the plan's nodes wrapped in
/// [`Misbehaving`](super::Misbehaving), records transcripts, and audits
/// the run.
///
/// # Panics
///
/// Panics if the plan's node count differs from the assignment's.
#[allow(clippy::too_many_arguments)] // wrap→run→audit one-stop driver
pub fn run_byzantine_single_source<A, L>(
    assignment: &TokenAssignment,
    adversary: A,
    link: L,
    ticks_per_round: VirtualTime,
    seed: u64,
    cfg: AsyncConfig,
    plan: &MisbehaviorPlan,
    max_time: VirtualTime,
) -> ByzantineOutcome
where
    A: Adversary,
    L: LinkModel,
{
    assert_eq!(plan.node_count(), assignment.node_count(), "plan size");
    let out = Scenario::from_assignment(assignment.clone())
        .topology(adversary)
        .link(link)
        .ticks_per_round(ticks_per_round)
        .seed(seed)
        .retransmit(cfg)
        .byzantine(plan.clone())
        .max_time(max_time)
        .name("byz-async-single-source")
        .run_single_source();
    ByzantineOutcome {
        event: out.event,
        report: out.report,
        evidence: out.evidence,
        honest_coverage: out.honest_coverage,
        injected: out.injected,
        completed: out.completed,
    }
}

/// Runs [`AsyncMultiSource`](crate::protocol::AsyncMultiSource) under the plan; see
/// [`run_byzantine_single_source`].
///
/// # Panics
///
/// Panics if the plan's node count differs from the assignment's.
#[allow(clippy::too_many_arguments)] // wrap→run→audit one-stop driver
pub fn run_byzantine_multi_source<A, L>(
    assignment: &TokenAssignment,
    adversary: A,
    link: L,
    ticks_per_round: VirtualTime,
    seed: u64,
    cfg: AsyncConfig,
    plan: &MisbehaviorPlan,
    max_time: VirtualTime,
) -> ByzantineOutcome
where
    A: Adversary,
    L: LinkModel,
{
    assert_eq!(plan.node_count(), assignment.node_count(), "plan size");
    let out = Scenario::from_assignment(assignment.clone())
        .topology(adversary)
        .link(link)
        .ticks_per_round(ticks_per_round)
        .seed(seed)
        .retransmit(cfg)
        .byzantine(plan.clone())
        .max_time(max_time)
        .name("byz-async-multi-source")
        .run_multi_source();
    ByzantineOutcome {
        event: out.event,
        report: out.report,
        evidence: out.evidence,
        honest_coverage: out.honest_coverage,
        injected: out.injected,
        completed: out.completed,
    }
}

/// Outcome of a full two-phase Byzantine oblivious run.
#[derive(Clone, Debug)]
pub struct ByzantineObliviousOutcome {
    /// Phase-1 report (absent on the direct few-sources path).
    pub phase1: Option<EventReport>,
    /// Phase-2 report.
    pub phase2: EventReport,
    /// The workspace-level report (phase-2 engine), Byzantine counters
    /// filled from both phases' audits.
    pub report: RunReport,
    /// Violations proven across both phases.
    pub evidence: Vec<Evidence>,
    /// Tokens whose last claimant was destroyed by forged acks and that
    /// the hand-off recovered from the original assignment holder.
    pub stolen_recovered: usize,
    /// Tokens resolved to a non-center owner at the hand-off.
    pub stranded_tokens: usize,
    /// Mean honest-node coverage after phase 2.
    pub honest_coverage: f64,
    /// Number of malicious nodes in the plan.
    pub byzantine_nodes: usize,
    /// Misbehaving actions injected across both phases.
    pub injected: u64,
    /// Whether phase 2 reached full dissemination.
    pub completed: bool,
}

/// Runs the full two-phase oblivious pipeline under the plan — both the
/// walk phase and the multi-source phase get wrapped nodes and
/// transcript auditing.
///
/// The hand-off is the Byzantine-tolerant variant of
/// [`run_async_oblivious`](crate::protocol::run_async_oblivious)'s:
/// honest responsibility conservation can be broken by a *forged*
/// `WalkAck` (the thief convinces the sender ownership moved, then
/// destroys the token), so a token with no remaining claimant falls
/// back to its original assignment holder — knowledge is monotone, so
/// that holder can still serve it — and is counted in
/// [`ByzantineObliviousOutcome::stolen_recovered`]. Honest plans never
/// take the fallback.
///
/// # Panics
///
/// Panics if the plan's node count differs from the assignment's.
pub fn run_byzantine_oblivious<A1, A2, L1, L2>(
    assignment: &TokenAssignment,
    adversary1: A1,
    adversary2: A2,
    link1: L1,
    link2: L2,
    cfg: &AsyncObliviousConfig,
    plan: &MisbehaviorPlan,
) -> ByzantineObliviousOutcome
where
    A1: Adversary,
    A2: Adversary,
    L1: LinkModel,
    L2: LinkModel,
{
    assert_eq!(plan.node_count(), assignment.node_count(), "plan size");
    let out = Scenario::from_assignment(assignment.clone())
        .topology(adversary1)
        .link(link1)
        .byzantine(plan.clone())
        .name("byz-async-oblivious")
        .run_oblivious(adversary2, link2, cfg, None);
    ByzantineObliviousOutcome {
        phase1: out.phase1,
        phase2: out.phase2,
        report: out.report,
        evidence: out.evidence,
        stolen_recovered: out.stolen_recovered,
        stranded_tokens: out.stranded_tokens,
        honest_coverage: out.honest_coverage,
        byzantine_nodes: out.byzantine_nodes,
        injected: out.injected,
        completed: out.completed,
    }
}
