//! The typed wire boundary: session IDs and the byte envelope.
//!
//! Everything a multiplexed node puts on a link is a [`WireEnvelope`]:
//! a [`SessionId`] stamp plus the inner protocol message serialized
//! through the vendored [`bincodec`] codec. The envelope is the *only*
//! message type the shared engine sees — per-session payload types are
//! erased at the boundary and re-typed on receipt, exactly the shape a
//! production service uses so that one transport can carry many
//! concurrently evolving protocols.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! [ session: u32 ][ payload_len: u32 ][ payload bytes … ]
//! ```
//!
//! The payload encodings for the three async ports are tag-byte enums
//! (tag, then fields): they are fixed here, tested for roundtrip
//! identity, and — because [`bincodec`] is deterministic — equal
//! messages always produce equal bytes, so seeded replays are
//! byte-identical through the serialization boundary.

use bincodec::{Decode, DecodeError, Encode, Reader};
use dynspread_graph::NodeId;
use dynspread_sim::token::TokenId;
use std::sync::Arc;

use crate::protocol::{AsyncMsMsg, AsyncOblMsg, AsyncSsMsg};

/// Identifies one dissemination session multiplexed over the shared
/// network: a dense index into the run's workload trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u32);

impl SessionId {
    /// Creates a session identity from its dense workload index.
    pub const fn new(index: u32) -> Self {
        SessionId(index)
    }

    /// The dense workload index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl Encode for SessionId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for SessionId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SessionId(u32::decode(r)?))
    }
}

/// A session-stamped message: what actually travels over the shared
/// links when sessions are multiplexed.
///
/// The payload is an [`Arc`]`<[u8]>` so the engine's per-copy fan-out
/// clones are a refcount bump, not a buffer copy — the zero-clone
/// property of the send path survives serialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireEnvelope {
    /// Which session this message belongs to.
    pub session: SessionId,
    /// The inner protocol message, serialized via [`bincodec`].
    pub payload: Arc<[u8]>,
}

impl WireEnvelope {
    /// Stamps `session` onto an already-encoded payload.
    pub fn new(session: SessionId, payload: Vec<u8>) -> Self {
        WireEnvelope {
            session,
            payload: payload.into(),
        }
    }

    /// Encodes a typed message into an envelope for `session`.
    pub fn encode_msg<M: Encode>(session: SessionId, msg: &M) -> Self {
        WireEnvelope::new(session, bincodec::to_bytes(msg))
    }

    /// Decodes the payload back into the typed message, rejecting
    /// truncated or oversized payloads.
    pub fn decode_msg<M: Decode>(&self) -> Result<M, DecodeError> {
        bincodec::from_bytes(&self.payload)
    }

    /// Serializes the full envelope (header + payload) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.payload.len());
        self.session.encode(&mut out);
        encode_bytes(&self.payload, &mut out);
        out
    }

    /// Parses a full envelope from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        bincodec::from_bytes(bytes)
    }
}

impl Encode for WireEnvelope {
    fn encode(&self, out: &mut Vec<u8>) {
        self.session.encode(out);
        encode_bytes(&self.payload, out);
    }
}

impl Decode for WireEnvelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let session = SessionId::decode(r)?;
        let len = u32::decode(r)? as usize;
        let payload = r.take(len)?;
        Ok(WireEnvelope {
            session,
            payload: payload.to_vec().into(),
        })
    }
}

fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    (u32::try_from(bytes.len()).expect("payload exceeds u32 wire limit")).encode(out);
    out.extend_from_slice(bytes);
}

fn encode_node(v: NodeId, out: &mut Vec<u8>) {
    v.value().encode(out);
}

fn decode_node(r: &mut Reader<'_>) -> Result<NodeId, DecodeError> {
    Ok(NodeId::new(u32::decode(r)?))
}

fn encode_token(t: TokenId, out: &mut Vec<u8>) {
    t.value().encode(out);
}

fn decode_token(r: &mut Reader<'_>) -> Result<TokenId, DecodeError> {
    Ok(TokenId::new(u32::decode(r)?))
}

impl Encode for AsyncSsMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AsyncSsMsg::Probe => out.push(0),
            AsyncSsMsg::Completeness => out.push(1),
            AsyncSsMsg::Ack => out.push(2),
            AsyncSsMsg::Request(t) => {
                out.push(3);
                encode_token(*t, out);
            }
            AsyncSsMsg::Token(t) => {
                out.push(4);
                encode_token(*t, out);
            }
        }
    }
}

impl Decode for AsyncSsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => AsyncSsMsg::Probe,
            1 => AsyncSsMsg::Completeness,
            2 => AsyncSsMsg::Ack,
            3 => AsyncSsMsg::Request(decode_token(r)?),
            4 => AsyncSsMsg::Token(decode_token(r)?),
            tag => return Err(DecodeError::InvalidTag(tag)),
        })
    }
}

impl Encode for AsyncMsMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AsyncMsMsg::Probe => out.push(0),
            AsyncMsMsg::Completeness(x) => {
                out.push(1);
                encode_node(*x, out);
            }
            AsyncMsMsg::Ack(x) => {
                out.push(2);
                encode_node(*x, out);
            }
            AsyncMsMsg::Request(t) => {
                out.push(3);
                encode_token(*t, out);
            }
            AsyncMsMsg::Token(t) => {
                out.push(4);
                encode_token(*t, out);
            }
        }
    }
}

impl Decode for AsyncMsMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => AsyncMsMsg::Probe,
            1 => AsyncMsMsg::Completeness(decode_node(r)?),
            2 => AsyncMsMsg::Ack(decode_node(r)?),
            3 => AsyncMsMsg::Request(decode_token(r)?),
            4 => AsyncMsMsg::Token(decode_token(r)?),
            tag => return Err(DecodeError::InvalidTag(tag)),
        })
    }
}

impl Encode for AsyncOblMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AsyncOblMsg::Probe => out.push(0),
            AsyncOblMsg::CenterAnnounce => out.push(1),
            AsyncOblMsg::Walk { token, seq } => {
                out.push(2);
                encode_token(*token, out);
                seq.encode(out);
            }
            AsyncOblMsg::WalkAck { token, seq } => {
                out.push(3);
                encode_token(*token, out);
                seq.encode(out);
            }
        }
    }
}

impl Decode for AsyncOblMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match r.byte()? {
            0 => AsyncOblMsg::Probe,
            1 => AsyncOblMsg::CenterAnnounce,
            2 => AsyncOblMsg::Walk {
                token: decode_token(r)?,
                seq: u64::decode(r)?,
            },
            3 => AsyncOblMsg::WalkAck {
                token: decode_token(r)?,
                seq: u64::decode(r)?,
            },
            tag => return Err(DecodeError::InvalidTag(tag)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: Encode + Decode + PartialEq + std::fmt::Debug>(msg: M) {
        let env = WireEnvelope::encode_msg(SessionId::new(3), &msg);
        assert_eq!(env.decode_msg::<M>().unwrap(), msg);
        let outer = WireEnvelope::from_bytes(&env.to_bytes()).unwrap();
        assert_eq!(outer, env);
        assert_eq!(outer.session, SessionId::new(3));
    }

    #[test]
    fn single_source_messages_roundtrip() {
        roundtrip(AsyncSsMsg::Probe);
        roundtrip(AsyncSsMsg::Completeness);
        roundtrip(AsyncSsMsg::Ack);
        roundtrip(AsyncSsMsg::Request(TokenId::new(7)));
        roundtrip(AsyncSsMsg::Token(TokenId::new(0)));
    }

    #[test]
    fn multi_source_messages_roundtrip() {
        roundtrip(AsyncMsMsg::Probe);
        roundtrip(AsyncMsMsg::Completeness(NodeId::new(5)));
        roundtrip(AsyncMsMsg::Ack(NodeId::new(0)));
        roundtrip(AsyncMsMsg::Request(TokenId::new(2)));
        roundtrip(AsyncMsMsg::Token(TokenId::new(9)));
    }

    #[test]
    fn oblivious_messages_roundtrip() {
        roundtrip(AsyncOblMsg::Probe);
        roundtrip(AsyncOblMsg::CenterAnnounce);
        roundtrip(AsyncOblMsg::Walk {
            token: TokenId::new(4),
            seq: 99,
        });
        roundtrip(AsyncOblMsg::WalkAck {
            token: TokenId::new(4),
            seq: u64::MAX,
        });
    }

    #[test]
    fn envelope_layout_is_the_documented_bytes() {
        let env = WireEnvelope::encode_msg(SessionId::new(1), &AsyncSsMsg::Ack);
        // [session 1 u32][len 1 u32][tag 2]
        assert_eq!(env.to_bytes(), vec![1, 0, 0, 0, 1, 0, 0, 0, 2]);
    }

    #[test]
    fn corrupted_payloads_are_rejected_not_panicked() {
        let env = WireEnvelope::new(SessionId::new(0), vec![250]);
        assert_eq!(
            env.decode_msg::<AsyncSsMsg>(),
            Err(DecodeError::InvalidTag(250))
        );
        let truncated = WireEnvelope::new(SessionId::new(0), vec![3]);
        assert_eq!(
            truncated.decode_msg::<AsyncSsMsg>(),
            Err(DecodeError::UnexpectedEof)
        );
        assert!(WireEnvelope::from_bytes(&[1, 0, 0, 0, 9, 0, 0, 0, 1]).is_err());
    }

    #[test]
    fn equal_messages_encode_to_equal_bytes() {
        let a = WireEnvelope::encode_msg(
            SessionId::new(2),
            &AsyncOblMsg::Walk {
                token: TokenId::new(1),
                seq: 3,
            },
        );
        let b = WireEnvelope::encode_msg(
            SessionId::new(2),
            &AsyncOblMsg::Walk {
                token: TokenId::new(1),
                seq: 3,
            },
        );
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
