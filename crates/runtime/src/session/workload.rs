//! Workload traces: which sessions arrive when, with what job.
//!
//! A [`SessionWorkload`] is the pure-data input to the service layer —
//! an ordered list of [`SessionSpec`]s, each naming a session's arrival
//! (and optional leave) virtual time plus its dissemination job (its own
//! token universe and source). Like `FaultPlan`, everything is decided
//! at construction from a seed, so a replayed workload is the same
//! workload, and the trace has a plain-text serialization
//! ([`SessionWorkload::to_trace`] / [`SessionWorkload::parse`]) for
//! driving runs from a file (`spread --sessions TRACE`).

use dynspread_graph::NodeId;
use dynspread_sim::TokenAssignment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::VirtualTime;

/// Sessions are identified by a dense index; the mux packs that index
/// into timer IDs next to a 32-bit inner-timer field and two flag bits,
/// so the index must stay below 2^30.
pub(crate) const MAX_SESSIONS: usize = 1 << 30;

/// One session's job: when it joins the shared network, when (if ever)
/// it voluntarily leaves, and what it disseminates.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Human-readable label carried into the per-session `RunReport`.
    pub label: String,
    /// Virtual time at which the session joins on every node.
    pub arrival: VirtualTime,
    /// Virtual time at which the session is torn down on every node
    /// (`None` = runs until the service stops).
    pub leave: Option<VirtualTime>,
    /// The session's private token universe and initial placement.
    /// Distinct sessions have distinct universes — token `t3` of one
    /// session has nothing to do with `t3` of another.
    pub assignment: TokenAssignment,
}

impl SessionSpec {
    /// A single-source dissemination job of `k` tokens starting at
    /// `source`, arriving at time `arrival`.
    pub fn single_source(
        label: impl Into<String>,
        arrival: VirtualTime,
        n: usize,
        k: usize,
        source: NodeId,
    ) -> Self {
        SessionSpec {
            label: label.into(),
            arrival,
            leave: None,
            assignment: TokenAssignment::single_source(n, k, source),
        }
    }

    /// Sets the voluntary leave time.
    ///
    /// # Panics
    ///
    /// Panics if `leave` is not after the arrival.
    pub fn leaving_at(mut self, leave: VirtualTime) -> Self {
        assert!(leave > self.arrival, "leave must be after arrival");
        self.leave = Some(leave);
        self
    }
}

/// An ordered trace of session arrivals over one shared `n`-node network.
#[derive(Clone, Debug)]
pub struct SessionWorkload {
    n: usize,
    specs: Vec<SessionSpec>,
}

impl SessionWorkload {
    /// An empty workload over `n` nodes.
    pub fn new(n: usize) -> Self {
        SessionWorkload {
            n,
            specs: Vec::new(),
        }
    }

    /// Appends a session.
    ///
    /// # Panics
    ///
    /// Panics if the spec's assignment is not over `n` nodes, or the
    /// workload would exceed the mux's session-index capacity.
    pub fn push(&mut self, spec: SessionSpec) {
        assert_eq!(
            spec.assignment.node_count(),
            self.n,
            "session assignment node count"
        );
        assert!(self.specs.len() < MAX_SESSIONS, "too many sessions");
        self.specs.push(spec);
    }

    /// Seeded synthetic arrival trace: `sessions` single-source jobs of
    /// `k` tokens each, sources drawn uniformly, inter-arrival gaps drawn
    /// uniformly from `[1, spacing]` (cumulative), first arrival at 0 so
    /// the service is busy from the start.
    pub fn uniform(n: usize, sessions: usize, k: usize, spacing: VirtualTime, seed: u64) -> Self {
        assert!(n > 0, "workload needs nodes");
        assert!(spacing > 0, "spacing must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut workload = SessionWorkload::new(n);
        let mut arrival: VirtualTime = 0;
        for i in 0..sessions {
            let source = NodeId::new(rng.gen_range(0..n as u32));
            workload.push(SessionSpec::single_source(
                format!("s{i}"),
                arrival,
                n,
                k,
                source,
            ));
            arrival += rng.gen_range(1..=spacing);
        }
        workload
    }

    /// Parses the plain-text trace format: one session per line as
    /// `ARRIVAL SOURCE K [LEAVE]` (whitespace-separated), `#` starting a
    /// comment, blank lines ignored. Labels are assigned in file order.
    pub fn parse(n: usize, text: &str) -> Result<Self, String> {
        let mut workload = SessionWorkload::new(n);
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 3 && fields.len() != 4 {
                return Err(format!(
                    "line {}: expected `ARRIVAL SOURCE K [LEAVE]`, got {raw:?}",
                    lineno + 1
                ));
            }
            let field = |i: usize, name: &str| -> Result<u64, String> {
                fields[i]
                    .parse()
                    .map_err(|e| format!("line {}: {name}: {e}", lineno + 1))
            };
            let arrival = field(0, "arrival")?;
            let source = field(1, "source")?;
            let k = field(2, "k")?;
            if source as usize >= n {
                return Err(format!(
                    "line {}: source {source} out of 0..{n}",
                    lineno + 1
                ));
            }
            if k == 0 {
                return Err(format!("line {}: k must be positive", lineno + 1));
            }
            let mut spec = SessionSpec::single_source(
                format!("s{}", workload.specs.len()),
                arrival,
                n,
                k as usize,
                NodeId::new(source as u32),
            );
            if fields.len() == 4 {
                let leave = field(3, "leave")?;
                if leave <= arrival {
                    return Err(format!("line {}: leave must be after arrival", lineno + 1));
                }
                spec = spec.leaving_at(leave);
            }
            workload.push(spec);
        }
        Ok(workload)
    }

    /// Serializes to the trace format [`SessionWorkload::parse`] reads.
    /// Only single-source jobs round-trip exactly (the format names one
    /// source per line); multi-holder assignments serialize their first
    /// listed source.
    pub fn to_trace(&self) -> String {
        let mut out = String::from("# ARRIVAL SOURCE K [LEAVE]\n");
        for spec in &self.specs {
            let source = spec
                .assignment
                .sources()
                .first()
                .map(|v| v.value())
                .unwrap_or(0);
            out.push_str(&format!(
                "{} {} {}",
                spec.arrival,
                source,
                spec.assignment.token_count()
            ));
            if let Some(leave) = spec.leave {
                out.push_str(&format!(" {leave}"));
            }
            out.push('\n');
        }
        out
    }

    /// The node count every session runs over.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The sessions in arrival-trace order.
    pub fn specs(&self) -> &[SessionSpec] {
        &self.specs
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_seed_deterministic_and_well_formed() {
        let a = SessionWorkload::uniform(16, 10, 4, 50, 7);
        let b = SessionWorkload::uniform(16, 10, 4, 50, 7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.len(), 10);
        assert_eq!(a.specs()[0].arrival, 0);
        for w in a.specs().windows(2) {
            assert!(w[0].arrival < w[1].arrival, "arrivals strictly increase");
        }
        for spec in a.specs() {
            assert_eq!(spec.assignment.node_count(), 16);
            assert_eq!(spec.assignment.token_count(), 4);
        }
        let c = SessionWorkload::uniform(16, 10, 4, 50, 8);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn trace_format_roundtrips() {
        let w = SessionWorkload::uniform(8, 5, 3, 20, 3);
        let text = w.to_trace();
        let parsed = SessionWorkload::parse(8, &text).unwrap();
        assert_eq!(format!("{:?}", w.specs()), format!("{:?}", parsed.specs()));
    }

    #[test]
    fn parse_accepts_comments_and_leaves() {
        let text = "# a trace\n0 0 4\n10 2 2 500  # leaves at 500\n\n30 1 1\n";
        let w = SessionWorkload::parse(4, text).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.specs()[1].leave, Some(500));
        assert_eq!(w.specs()[2].arrival, 30);
        assert_eq!(w.specs()[2].label, "s2");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(SessionWorkload::parse(4, "0 0").is_err());
        assert!(SessionWorkload::parse(4, "0 9 4").is_err());
        assert!(SessionWorkload::parse(4, "0 0 0").is_err());
        assert!(SessionWorkload::parse(4, "5 0 4 5").is_err());
        assert!(SessionWorkload::parse(4, "x 0 4").is_err());
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn mismatched_assignment_size_panics() {
        let mut w = SessionWorkload::new(8);
        w.push(SessionSpec::single_source("s0", 0, 4, 2, NodeId::new(0)));
    }
}
