//! Multi-session service layer: many dissemination jobs, one network.
//!
//! Production shape for this reproduction is not one process per run but
//! a persistent dynamic network serving a *stream* of overlapping
//! dissemination sessions — distinct token universes, sources, and
//! arrival times — multiplexed over shared links, mailboxes, and fault
//! plans. This module provides that layer:
//!
//! * [`wire`] — the typed serialization boundary: [`SessionId`] stamps,
//!   the [`WireEnvelope`] byte format, and `bincodec` codecs for the
//!   async ports' message types;
//! * [`workload`] — pure-data arrival traces ([`SessionWorkload`],
//!   [`SessionSpec`]): seeded synthesis, plain-text parse/serialize;
//! * [`mux`] — [`SessionMux`], the `EventProtocol` that runs one inner
//!   protocol instance per session behind each node and routes by
//!   session stamp, plus the shared [`SessionBoard`] scoreboard
//!   (per-session completion times, message loads, chain-hash digests).
//!
//! The front door is [`Scenario`](crate::scenario::Scenario): add
//! sessions with `.session(spec)` (or a whole trace) and call
//! `run_sessions()`, which wraps `AsyncSingleSource` instances; the
//! generic `run_sessions_with` accepts any inner `EventProtocol` whose
//! messages implement the codec traits. Each session comes back as its
//! own [`SessionReport`](crate::scenario::SessionReport) with latency =
//! `completed_at − arrival` on the shared virtual clock.

pub mod mux;
pub mod wire;
pub mod workload;

pub use mux::{SessionBoard, SessionMux, SessionStats};
pub use wire::{SessionId, WireEnvelope};
pub use workload::{SessionSpec, SessionWorkload};
