//! Session multiplexing: many protocol instances behind one node.
//!
//! A [`SessionMux`] is itself an [`EventProtocol`] whose message type is
//! the [`WireEnvelope`]. Each node of the shared network runs one mux;
//! the mux holds one instance of the inner per-session protocol per
//! workload entry and routes by the envelope's [`SessionId`] stamp:
//!
//! * **join** — at a session's arrival time a control timer fires on
//!   every node and the inner instance's `on_start` runs, so the session
//!   begins exactly like a standalone run, just offset on the shared
//!   clock;
//! * **leave** — at the (optional) leave time the instance is dropped;
//!   envelopes and timers addressed to a departed (or never-joined, or
//!   unknown) session are discarded and counted, never dispatched;
//! * **dispatch** — inner handlers run against a sub-context
//!   (`EventCtx::with_inner`) of the inner message type; the sends they
//!   stage are re-staged through the outer context as envelopes **in
//!   staging order, one per destination**, so the engine's per-copy link
//!   planning draws from the seeded RNG stream in exactly the order a
//!   standalone run of that protocol would. This is what makes a
//!   single-session mux run reproduce the standalone engine run (see
//!   `tests/determinism.rs`);
//! * **timers** — inner timer IDs are remapped into the session's slice
//!   of the 64-bit timer-ID space (`idx << 32 | id`, with two high flag
//!   bits reserved for the join/leave control timers), so sessions cannot
//!   observe each other's heartbeats;
//! * **faults** — on recovery the mux re-derives its control schedule
//!   from the workload (crash-orphaned joins re-fire immediately, leaves
//!   that elapsed during the outage are applied) and forwards
//!   `on_recover`/`on_heal` to every live session instance.
//!
//! Cross-session accounting lives in the shared [`SessionBoard`]: per
//! session, the staged envelope count, delivered envelope count, a
//! chain-hashed header digest (a lightweight per-session transcript,
//! byte-identical under replay), per-node completion, and the virtual
//! time at which the *last* node completed — the session's latency
//! numerator.

use std::sync::{Arc, Mutex};

use bincodec::{Decode, Encode};
use dynspread_graph::NodeId;
use dynspread_sim::token::TokenSet;

use crate::byzantine::transcript::fnv1a;
use crate::engine::{EventCtx, EventProtocol, SendOp};
use crate::event::VirtualTime;
use crate::faults::RecoveryMode;

use super::wire::{SessionId, WireEnvelope};
use super::workload::{SessionSpec, SessionWorkload, MAX_SESSIONS};

/// Control-timer flag: this timer is a session join.
const JOIN_FLAG: u64 = 1 << 63;
/// Control-timer flag: this timer is a session leave.
const LEAVE_FLAG: u64 = 1 << 62;
/// Inner timer IDs must fit the low 32 bits of the packed timer ID.
const INNER_TIMER_LIMIT: u64 = 1 << 32;

/// Shared cross-node scoreboard: one row per session.
///
/// The engine is single-threaded, so updates arrive in deterministic
/// event order; the mutex exists only so whole-run outcomes can move
/// across threads (`par_map` fans independent runs out across cores).
#[derive(Debug)]
pub struct SessionBoard {
    n: usize,
    cells: Mutex<Vec<BoardCell>>,
}

#[derive(Clone, Debug)]
struct BoardCell {
    done: Vec<bool>,
    done_count: usize,
    completed_at: Option<VirtualTime>,
    sent: u64,
    delivered: u64,
    digest: u64,
}

/// One session's accounting snapshot, read back after the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionStats {
    /// Envelopes staged onto links for this session (per destination,
    /// before link loss).
    pub sent: u64,
    /// Envelopes delivered and dispatched to this session's instances.
    pub delivered: u64,
    /// Nodes whose instance reached full knowledge of the session's
    /// token universe.
    pub complete_nodes: usize,
    /// Virtual time at which the last node completed, if all did.
    pub completed_at: Option<VirtualTime>,
    /// Chain-hashed digest over this session's send/receive headers —
    /// a lightweight transcript, byte-identical under seeded replay.
    pub digest: u64,
}

impl SessionBoard {
    /// A board for `sessions` sessions over `n` nodes.
    pub fn new(n: usize, sessions: usize) -> Self {
        SessionBoard {
            n,
            cells: Mutex::new(vec![
                BoardCell {
                    done: vec![false; n],
                    done_count: 0,
                    completed_at: None,
                    sent: 0,
                    delivered: 0,
                    digest: 0,
                };
                sessions
            ]),
        }
    }

    /// The node count sessions complete against.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of sessions tracked.
    pub fn session_count(&self) -> usize {
        self.cells.lock().expect("board poisoned").len()
    }

    /// This session's accounting snapshot.
    pub fn stats(&self, session: usize) -> SessionStats {
        let cells = self.cells.lock().expect("board poisoned");
        let cell = &cells[session];
        SessionStats {
            sent: cell.sent,
            delivered: cell.delivered,
            complete_nodes: cell.done_count,
            completed_at: cell.completed_at,
            digest: cell.digest,
        }
    }

    fn chain(digest: u64, tag: u8, t: VirtualTime, from: NodeId, to: NodeId, len: usize) -> u64 {
        let mut buf = [0u8; 29];
        buf[0..8].copy_from_slice(&digest.to_le_bytes());
        buf[8] = tag;
        buf[9..17].copy_from_slice(&t.to_le_bytes());
        buf[17..21].copy_from_slice(&from.value().to_le_bytes());
        buf[21..25].copy_from_slice(&to.value().to_le_bytes());
        buf[25..29].copy_from_slice(&(len as u32).to_le_bytes());
        fnv1a(&buf)
    }

    fn note_send(&self, session: usize, t: VirtualTime, from: NodeId, to: NodeId, len: usize) {
        let mut cells = self.cells.lock().expect("board poisoned");
        let cell = &mut cells[session];
        cell.sent += 1;
        cell.digest = Self::chain(cell.digest, b'S', t, from, to, len);
    }

    fn note_recv(&self, session: usize, t: VirtualTime, from: NodeId, to: NodeId, len: usize) {
        let mut cells = self.cells.lock().expect("board poisoned");
        let cell = &mut cells[session];
        cell.delivered += 1;
        cell.digest = Self::chain(cell.digest, b'R', t, from, to, len);
    }

    fn node_complete(&self, session: usize, v: NodeId, now: VirtualTime) {
        let mut cells = self.cells.lock().expect("board poisoned");
        let cell = &mut cells[session];
        if !cell.done[v.index()] {
            cell.done[v.index()] = true;
            cell.done_count += 1;
            if cell.done_count == self.n {
                cell.completed_at = Some(now);
            }
        }
    }
}

struct Slot<P> {
    arrival: VirtualTime,
    leave: Option<VirtualTime>,
    joined: bool,
    state: Option<P>,
    done_reported: bool,
    initial_known: usize,
}

/// One node's view of every session: the session-multiplexing protocol.
///
/// See the [module docs](self) for semantics. Build the full network
/// with [`SessionMux::nodes`].
pub struct SessionMux<P: EventProtocol> {
    me: NodeId,
    slots: Vec<Slot<P>>,
    board: Arc<SessionBoard>,
    // Scratch buffers reused across dispatches (cleared after each).
    ops: Vec<SendOp<P::Msg>>,
    dests: Vec<NodeId>,
    timers: Vec<(VirtualTime, u64)>,
    decode_errors: u64,
    foreign_drops: u64,
}

impl<P: EventProtocol> SessionMux<P> {
    /// Builds node `v`'s mux: one inner instance per workload session,
    /// created by `factory(v, session_index, spec)`.
    pub fn new(
        me: NodeId,
        workload: &SessionWorkload,
        board: Arc<SessionBoard>,
        factory: &mut impl FnMut(NodeId, usize, &SessionSpec) -> P,
    ) -> Self {
        assert_eq!(board.node_count(), workload.node_count(), "board size");
        assert!(workload.len() <= MAX_SESSIONS, "too many sessions");
        let slots = workload
            .specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let state = factory(me, i, spec);
                let initial_known = state.known_tokens().map_or(0, TokenSet::count);
                Slot {
                    arrival: spec.arrival,
                    leave: spec.leave,
                    joined: false,
                    state: Some(state),
                    done_reported: false,
                    initial_known,
                }
            })
            .collect();
        SessionMux {
            me,
            slots,
            board,
            ops: Vec::new(),
            dests: Vec::new(),
            timers: Vec::new(),
            decode_errors: 0,
            foreign_drops: 0,
        }
    }

    /// Builds the whole network's muxes plus their shared board.
    pub fn nodes(
        workload: &SessionWorkload,
        factory: impl Fn(NodeId, usize, &SessionSpec) -> P,
    ) -> (Vec<Self>, Arc<SessionBoard>) {
        let board = Arc::new(SessionBoard::new(workload.node_count(), workload.len()));
        let mut factory = |v, i, spec: &SessionSpec| factory(v, i, spec);
        let nodes = NodeId::all(workload.node_count())
            .map(|v| SessionMux::new(v, workload, Arc::clone(&board), &mut factory))
            .collect();
        (nodes, board)
    }

    /// This session's inner instance, if it joined and has not left.
    pub fn session_state(&self, session: usize) -> Option<&P> {
        let slot = self.slots.get(session)?;
        if slot.joined {
            slot.state.as_ref()
        } else {
            None
        }
    }

    /// Tokens this node learned for `session` beyond its initial
    /// knowledge (0 for untracked protocols or departed sessions).
    pub fn learned(&self, session: usize) -> u64 {
        let Some(slot) = self.slots.get(session) else {
            return 0;
        };
        let Some(state) = slot.state.as_ref().filter(|_| slot.joined) else {
            return 0;
        };
        state
            .known_tokens()
            .map_or(0, |kn| kn.count().saturating_sub(slot.initial_known) as u64)
    }

    /// Envelopes whose payload failed to decode (always 0 in honest
    /// runs; a nonzero count means payload corruption crossed the wire).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Envelopes addressed to unknown, not-yet-joined, or departed
    /// sessions — dropped at the boundary, never dispatched.
    pub fn foreign_drops(&self) -> u64 {
        self.foreign_drops
    }

    /// Runs one inner handler for `session` through a sub-context, then
    /// re-stages its sends as envelopes and remaps its timers. Order is
    /// load-bearing: envelopes go out one per (op, destination) pair in
    /// staging order, which keeps the engine's link-planning RNG stream
    /// aligned with what a standalone run of the inner protocol draws.
    fn dispatch(
        &mut self,
        session: usize,
        ctx: &mut EventCtx<'_, WireEnvelope>,
        f: impl FnOnce(&mut P, &mut EventCtx<'_, P::Msg>),
    ) where
        P::Msg: Encode,
    {
        let SessionMux {
            me,
            slots,
            board,
            ops,
            dests,
            timers,
            ..
        } = self;
        let slot = &mut slots[session];
        let Some(state) = slot.state.as_mut() else {
            return;
        };
        debug_assert!(ops.is_empty() && dests.is_empty() && timers.is_empty());
        ctx.with_inner(ops, dests, timers, |sub| f(state, sub));
        let sid = SessionId::new(session as u32);
        for op in ops.drain(..) {
            // Encode once per logical send; per-destination copies share
            // the payload bytes through the Arc.
            let env = WireEnvelope::encode_msg(sid, &op.msg);
            for &to in &dests[op.first as usize..(op.first + op.count) as usize] {
                board.note_send(session, ctx.now(), *me, to, env.payload.len());
                ctx.send(to, env.clone());
            }
        }
        dests.clear();
        for &(delay, id) in timers.iter() {
            assert!(
                id < INNER_TIMER_LIMIT,
                "inner timer id {id} exceeds the mux's 32-bit field"
            );
            ctx.set_timer(delay, ((session as u64) << 32) | id);
        }
        timers.clear();
        if !slot.done_reported {
            let complete = slot
                .state
                .as_ref()
                .is_some_and(|s| s.known_tokens().is_some_and(TokenSet::is_full));
            if complete {
                slot.done_reported = true;
                board.node_complete(session, *me, ctx.now());
            }
        }
    }

    fn join(&mut self, session: usize, ctx: &mut EventCtx<'_, WireEnvelope>)
    where
        P::Msg: Encode,
    {
        let Some(slot) = self.slots.get_mut(session) else {
            return;
        };
        if slot.joined || slot.state.is_none() {
            return;
        }
        slot.joined = true;
        self.dispatch(session, ctx, |state, sub| state.on_start(sub));
    }
}

impl<P: EventProtocol> EventProtocol for SessionMux<P>
where
    P::Msg: Encode + Decode,
{
    type Msg = WireEnvelope;

    fn on_start(&mut self, ctx: &mut EventCtx<'_, WireEnvelope>) {
        for (i, slot) in self.slots.iter().enumerate() {
            ctx.set_timer(slot.arrival, JOIN_FLAG | i as u64);
            if let Some(leave) = slot.leave {
                ctx.set_timer(leave, LEAVE_FLAG | i as u64);
            }
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        env: &WireEnvelope,
        ctx: &mut EventCtx<'_, WireEnvelope>,
    ) {
        let session = env.session.index();
        let live = self
            .slots
            .get(session)
            .is_some_and(|s| s.joined && s.state.is_some());
        if !live {
            self.foreign_drops += 1;
            return;
        }
        let msg = match env.decode_msg::<P::Msg>() {
            Ok(msg) => msg,
            Err(_) => {
                self.decode_errors += 1;
                return;
            }
        };
        self.board
            .note_recv(session, ctx.now(), from, self.me, env.payload.len());
        self.dispatch(session, ctx, |state, sub| state.on_message(from, &msg, sub));
    }

    fn on_timer(&mut self, id: u64, ctx: &mut EventCtx<'_, WireEnvelope>) {
        if id & JOIN_FLAG != 0 {
            self.join((id & !JOIN_FLAG) as usize, ctx);
        } else if id & LEAVE_FLAG != 0 {
            if let Some(slot) = self.slots.get_mut((id & !LEAVE_FLAG) as usize) {
                slot.state = None;
            }
        } else {
            let session = (id >> 32) as usize;
            let inner = id & (INNER_TIMER_LIMIT - 1);
            if self.slots.get(session).is_some_and(|s| s.joined) {
                self.dispatch(session, ctx, |state, sub| state.on_timer(inner, sub));
            }
        }
    }

    fn on_recover(&mut self, mode: RecoveryMode, ctx: &mut EventCtx<'_, WireEnvelope>) {
        // Every timer from before the crash — control and inner alike —
        // was orphaned by the engine. Re-derive the control schedule from
        // the workload relative to `now`, then let live sessions run
        // their own recovery.
        let now = ctx.now();
        for i in 0..self.slots.len() {
            let (joined, arrival, leave, has_state) = {
                let s = &self.slots[i];
                (s.joined, s.arrival, s.leave, s.state.is_some())
            };
            if !joined {
                // Future join re-arms at its original time; a join that
                // was due during the outage fires immediately.
                ctx.set_timer(arrival.saturating_sub(now), JOIN_FLAG | i as u64);
                continue;
            }
            if !has_state {
                continue;
            }
            match leave {
                Some(l) if l <= now => {
                    // The leave elapsed while we were down.
                    self.slots[i].state = None;
                }
                other => {
                    if let Some(l) = other {
                        ctx.set_timer(l - now, LEAVE_FLAG | i as u64);
                    }
                    self.dispatch(i, ctx, |state, sub| state.on_recover(mode, sub));
                }
            }
        }
    }

    fn on_heal(&mut self, ctx: &mut EventCtx<'_, WireEnvelope>) {
        for i in 0..self.slots.len() {
            if self.slots[i].joined && self.slots[i].state.is_some() {
                self.dispatch(i, ctx, |state, sub| state.on_heal(sub));
            }
        }
    }

    // Deliberately `None`: the engine-level token tracker models one
    // dissemination job, while the mux runs many. Completion lives on
    // the `SessionBoard`; service runs end at quiescence or `max_time`.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EventSim, StopReason};
    use crate::link::{LinkModelExt, PerfectLink};
    use crate::protocol::{AsyncConfig, AsyncSingleSource};
    use dynspread_graph::generators::Topology;
    use dynspread_graph::oblivious::PeriodicRewiring;

    fn workload(n: usize) -> SessionWorkload {
        let mut w = SessionWorkload::new(n);
        w.push(SessionSpec::single_source("a", 0, n, 3, NodeId::new(0)));
        w.push(SessionSpec::single_source("b", 40, n, 2, NodeId::new(1)));
        w
    }

    fn service(
        _n: usize,
        w: &SessionWorkload,
    ) -> (
        EventSim<SessionMux<AsyncSingleSource>, PeriodicRewiring, impl crate::link::LinkModel>,
        Arc<SessionBoard>,
    ) {
        let (nodes, board) = SessionMux::nodes(w, |v, _i, spec| {
            AsyncSingleSource::new(v, &spec.assignment, AsyncConfig::default())
        });
        let sim = EventSim::new(
            nodes,
            PeriodicRewiring::new(Topology::RandomTree, 3, 5),
            PerfectLink.lossy(0.2).with_jitter(1),
            2,
            9,
        );
        (sim, board)
    }

    #[test]
    fn overlapping_sessions_both_complete() {
        let n = 8;
        let w = workload(n);
        let (mut sim, board) = service(n, &w);
        let report = sim.run(200_000);
        assert_eq!(report.stopped, StopReason::Quiescent, "{report:?}");
        for s in 0..2 {
            let stats = board.stats(s);
            assert_eq!(stats.complete_nodes, n, "session {s}: {stats:?}");
            let done = stats.completed_at.expect("completed");
            assert!(done >= w.specs()[s].arrival);
            assert!(stats.sent > 0 && stats.delivered > 0);
        }
        // The later session cannot complete before it arrives.
        assert!(board.stats(1).completed_at.unwrap() > 40);
        for v in NodeId::all(n) {
            assert_eq!(sim.node(v).decode_errors(), 0);
            assert_eq!(sim.node(v).foreign_drops(), 0);
        }
    }

    #[test]
    fn session_replay_is_byte_identical() {
        let n = 8;
        let w = workload(n);
        let fingerprint = |(mut sim, board): (
            EventSim<SessionMux<AsyncSingleSource>, PeriodicRewiring, _>,
            Arc<SessionBoard>,
        )| {
            let report = sim.run(200_000);
            format!("{report:?} {:?} {:?}", board.stats(0), board.stats(1))
        };
        assert_eq!(fingerprint(service(n, &w)), fingerprint(service(n, &w)));
    }

    #[test]
    fn departed_sessions_drop_traffic_instead_of_dispatching() {
        let n = 6;
        let mut w = SessionWorkload::new(n);
        // Leaves long before the 3-token job can finish under 60% loss.
        w.push(SessionSpec::single_source("gone", 0, n, 3, NodeId::new(0)).leaving_at(4));
        let (nodes, board) = SessionMux::nodes(&w, |v, _i, spec| {
            AsyncSingleSource::new(v, &spec.assignment, AsyncConfig::default())
        });
        let mut sim = EventSim::new(
            nodes,
            PeriodicRewiring::new(Topology::RandomTree, 3, 5),
            PerfectLink.lossy(0.6).with_jitter(3),
            2,
            11,
        );
        let report = sim.run(50_000);
        assert_eq!(report.stopped, StopReason::Quiescent);
        assert_eq!(board.stats(0).completed_at, None);
        let drops: u64 = NodeId::all(n).map(|v| sim.node(v).foreign_drops()).sum();
        assert!(drops > 0, "in-flight envelopes outlive the session");
        for v in NodeId::all(n) {
            assert!(sim.node(v).session_state(0).is_none());
        }
    }
}
